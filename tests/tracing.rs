//! End-to-end checks of the trace subsystem: determinism of the exported
//! artifacts, ring-buffer bounding, and sampling cadence.

use rar::core::Technique;
use rar::sim::{SimConfig, Simulation, TraceSettings};
use rar::trace::{chrome, csv, konata, TraceEvent};

fn traced_cfg(capacity: usize, sample_interval: u64) -> SimConfig {
    SimConfig::builder()
        .workload("mcf")
        .technique(Technique::Rar)
        .warmup(1_000)
        .instructions(6_000)
        .trace(TraceSettings {
            capacity,
            sample_interval,
        })
        .build()
}

#[test]
fn identical_seeds_give_byte_identical_exports() {
    let cfg = traced_cfg(1 << 20, 500);
    let (_, a) = Simulation::run_traced(&cfg);
    let (_, b) = Simulation::run_traced(&cfg);
    let (ea, eb) = (a.to_vec(), b.to_vec());
    assert_eq!(ea.len(), eb.len(), "same seed must capture the same events");
    assert_eq!(chrome::to_chrome_json(&ea), chrome::to_chrome_json(&eb));
    assert_eq!(konata::to_konata(&ea), konata::to_konata(&eb));
    assert_eq!(csv::uops_to_csv(&ea), csv::uops_to_csv(&eb));
    assert_eq!(csv::windows_to_csv(&ea), csv::windows_to_csv(&eb));
}

#[test]
fn small_ring_keeps_only_the_most_recent_events() {
    let full = Simulation::run_traced(&traced_cfg(0, 0)).1;
    let bounded = Simulation::run_traced(&traced_cfg(256, 0)).1;
    assert!(full.len() > 256, "mcf run must emit more than 256 events");
    assert_eq!(bounded.len(), 256);
    assert_eq!(bounded.emitted(), full.emitted());
    assert_eq!(bounded.dropped(), full.emitted() - 256);
    // The bounded ring holds the suffix of the unbounded capture.
    let tail = &full.to_vec()[full.len() - 256..];
    assert_eq!(bounded.to_vec(), tail);
}

#[test]
fn sampler_fires_on_the_configured_cadence() {
    let (result, sink) = Simulation::run_traced(&traced_cfg(0, 250));
    let samples: Vec<u64> = sink
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Sample(row) => Some(row.cycle),
            _ => None,
        })
        .collect();
    assert!(
        !samples.is_empty(),
        "sampling enabled but no samples captured"
    );
    for c in &samples {
        assert_eq!(c % 250, 0, "sample at cycle {c} off-cadence");
    }
    // Cycle counting is monotonic, so one sample per interval boundary.
    let expected = result.stats.cycles / 250;
    let got = samples.len() as u64;
    assert!(
        got >= expected.saturating_sub(1) && got <= expected + 1,
        "expected ~{expected} samples, got {got}"
    );
}
