//! Integration tests for the back-end-scaling and stall-window analyses
//! (Figures 4, 5 and 10).

use rar::ace::StallKind;
use rar::core::{CoreConfig, Technique};
use rar::sim::{SimConfig, SimResult, Simulation};

fn run_with_core(workload: &str, technique: Technique, core: CoreConfig) -> SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .core(core)
            .warmup(4_000)
            .instructions(10_000)
            .build(),
    )
}

/// Soft-error vulnerability grows with back-end structure size (Figure 4:
/// Core-4 exposes ~1.8x the ACE bits of Core-1).
#[test]
fn abc_grows_with_backend_size() {
    let small = run_with_core("gems", Technique::Ooo, CoreConfig::core1());
    let large = run_with_core("gems", Technique::Ooo, CoreConfig::core4());
    let ratio = large.reliability.total_abc() as f64 / small.reliability.total_abc() as f64;
    assert!(ratio > 1.2, "Core-4/Core-1 ABC ratio {ratio}");
}

/// RAR closes the widening reliability gap (Figure 10): its ABC grows far
/// more slowly with core size than the baseline's.
#[test]
fn rar_closes_the_scaling_gap() {
    let ooo1 = run_with_core("gems", Technique::Ooo, CoreConfig::core1());
    let ooo4 = run_with_core("gems", Technique::Ooo, CoreConfig::core4());
    let rar1 = run_with_core("gems", Technique::Rar, CoreConfig::core1());
    let rar4 = run_with_core("gems", Technique::Rar, CoreConfig::core4());
    let ooo_growth = ooo4.reliability.total_abc() as f64 / ooo1.reliability.total_abc() as f64;
    let rar4_vs_ooo4 = rar4.reliability.total_abc() as f64 / ooo4.reliability.total_abc() as f64;
    let rar1_vs_ooo1 = rar1.reliability.total_abc() as f64 / ooo1.reliability.total_abc() as f64;
    assert!(ooo_growth > 1.0);
    assert!(
        rar4_vs_ooo4 <= rar1_vs_ooo1 * 1.25,
        "RAR's relative benefit must not erode with core size: {rar1_vs_ooo1} -> {rar4_vs_ooo4}"
    );
    assert!(
        rar4_vs_ooo4 < 0.5,
        "RAR removes most exposure on the largest core"
    );
}

/// The Figure 5 decomposition: head-blocked windows dominate the exposed
/// state, and strictly contain the full-ROB-stall windows.
#[test]
fn blocked_head_windows_dominate_ace() {
    let r = Simulation::run(
        &SimConfig::builder()
            .workload("fotonik")
            .technique(Technique::Ooo)
            .warmup(4_000)
            .instructions(10_000)
            .build(),
    );
    let total = r.reliability.total_abc();
    let [full, blocked] = r.window_abc;
    assert!(full <= blocked, "full-ROB windows are a subset in time");
    assert!(blocked <= total);
    let share = blocked as f64 / total as f64;
    assert!(
        share > 0.5,
        "most exposure is under blocking misses, got {share}"
    );
}

/// mcf's gap between head-blocked and full-ROB exposure comes from branch
/// mispredictions in the miss shadow (Section II-C).
#[test]
fn mispredictions_open_the_full_rob_gap() {
    let mcf = Simulation::run(
        &SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Ooo)
            .warmup(4_000)
            .instructions(10_000)
            .build(),
    );
    let fotonik = Simulation::run(
        &SimConfig::builder()
            .workload("fotonik")
            .technique(Technique::Ooo)
            .warmup(4_000)
            .instructions(10_000)
            .build(),
    );
    let gap = |r: &SimResult| {
        let [full, blocked] = r.window_abc;
        (blocked - full) as f64 / r.reliability.total_abc() as f64
    };
    assert!(
        gap(&mcf) > gap(&fotonik),
        "branchy mcf gap {} should exceed regular fotonik gap {}",
        gap(&mcf),
        gap(&fotonik)
    );
}

/// Stall windows are tracked by the simulator's ACE counter and are
/// visible through the public API.
#[test]
fn window_counters_exposed() {
    let cfg = SimConfig::builder()
        .workload("lbm")
        .technique(Technique::Ooo)
        .warmup(2_000)
        .instructions(6_000)
        .build();
    let spec = rar::workloads::workload("lbm").unwrap();
    let mut core = rar::core::Core::new(
        cfg.core.clone(),
        cfg.mem.clone(),
        cfg.technique,
        rar::isa::TraceWindow::new(spec.trace(cfg.seed)),
    );
    core.run_until_committed(6_000);
    assert!(core.ace().window_count(StallKind::RobHeadBlocked) > 0);
    assert!(
        core.ace().window_cycles(StallKind::RobHeadBlocked)
            >= core.ace().window_cycles(StallKind::FullRobStall)
    );
}
