//! Reproducibility guarantees: identical configurations produce identical
//! results; seeds and techniques actually change the run.

use rar::core::Technique;
use rar::sim::{SimConfig, SimResult, Simulation};

fn run(workload: &str, technique: Technique, seed: u64) -> SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .seed(seed)
            .warmup(2_000)
            .instructions(6_000)
            .build(),
    )
}

#[test]
fn identical_configs_are_bit_identical() {
    let a = run("soplex", Technique::Rar, 3);
    let b = run("soplex", Technique::Rar, 3);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed, b.stats.committed);
    assert_eq!(a.reliability.total_abc(), b.reliability.total_abc());
    assert_eq!(a.abc_by_structure, b.abc_by_structure);
    assert_eq!(a.mem.llc_misses, b.mem.llc_misses);
    assert_eq!(a.stats.runahead_intervals, b.stats.runahead_intervals);
}

#[test]
fn seeds_change_the_trace_but_not_the_story() {
    let a = run("soplex", Technique::Ooo, 1);
    let b = run("soplex", Technique::Ooo, 2);
    assert_ne!(
        a.stats.cycles, b.stats.cycles,
        "different seeds, different traces"
    );
    // Same workload model: broad characteristics stay in the same regime.
    let ratio = a.mpki() / b.mpki();
    assert!(
        (0.5..2.0).contains(&ratio),
        "MPKI regime stable across seeds: {ratio}"
    );
}

#[test]
fn techniques_change_the_run() {
    let a = run("soplex", Technique::Ooo, 1);
    let b = run("soplex", Technique::Rar, 1);
    assert_ne!(a.stats.cycles, b.stats.cycles);
    assert!(b.stats.runahead_intervals > 0);
    assert_eq!(a.stats.runahead_intervals, 0);
}

#[test]
fn every_benchmark_runs_under_every_technique() {
    // Smoke coverage of the full benchmark x technique matrix at a tiny
    // budget: no panics, nonzero progress everywhere.
    for workload in rar::workloads::all_benchmarks() {
        for technique in [
            Technique::Ooo,
            Technique::Flush,
            Technique::Pre,
            Technique::Rar,
        ] {
            let r = Simulation::run(
                &SimConfig::builder()
                    .workload(workload)
                    .technique(technique)
                    .warmup(300)
                    .instructions(1_200)
                    .build(),
            );
            assert!(r.ipc() > 0.0, "{workload}/{technique} made no progress");
            assert!(
                r.reliability.total_abc() > 0,
                "{workload}/{technique} exposed no state"
            );
        }
    }
}
