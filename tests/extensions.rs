//! Integration tests for the extension features, exercised through the
//! facade crate: the beyond-paper techniques, fault injection, phase
//! analysis, the energy model, and JSON export.

use rar::ace::{FaultCampaign, OccupancyProfile, PhaseSeries};
use rar::core::{Core, CoreConfig, Technique};
use rar::isa::TraceWindow;
use rar::mem::MemConfig;
use rar::sim::{EnergyModel, SimConfig, SimResult, Simulation};

fn run(workload: &str, technique: Technique) -> SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .warmup(4_000)
            .instructions(10_000)
            .build(),
    )
}

#[test]
fn throttle_is_a_reliability_performance_tradeoff() {
    let base = run("gems", Technique::Ooo);
    let throttle = run("gems", Technique::Throttle);
    assert!(throttle.ipc_vs(&base) < 1.0, "throttling costs performance");
    assert!(throttle.abc_vs(&base) < 1.0, "and removes some exposure");
}

#[test]
fn runahead_buffer_performs_like_the_pre_family() {
    let base = run("fotonik", Technique::Ooo);
    let rab = run("fotonik", Technique::Rab);
    assert!(
        rab.ipc_vs(&base) > 1.05,
        "RAB speedup {}",
        rab.ipc_vs(&base)
    );
    assert_eq!(rab.stats.flushes, 0);
}

#[test]
fn continuous_runahead_prefetches_modelessly() {
    // libquantum's two streams leave window MLP low, which is where a
    // background prefetch engine pays off.
    let base = run("libquantum", Technique::Ooo);
    let cre = run("libquantum", Technique::Cre);
    assert_eq!(cre.stats.runahead_intervals, 0, "CRE never enters a mode");
    assert!(cre.stats.runahead_prefetches > 0);
    assert!(
        cre.ipc_vs(&base) > 1.02,
        "CRE speedup {}",
        cre.ipc_vs(&base)
    );
}

#[test]
fn fault_injection_agrees_with_analytic_avf() {
    let spec = rar::workloads::workload("milc").expect("known benchmark");
    let mut core = Core::new(
        CoreConfig::baseline(),
        MemConfig::baseline(),
        Technique::Ooo,
        TraceWindow::new(spec.trace(3)),
    );
    core.enable_ace_logging();
    core.run_until_committed(2_000);
    core.reset_measurement();
    core.run_until_committed(8_000);

    let profile = OccupancyProfile::from_log(core.ace().interval_log());
    assert_eq!(profile.total_abc(), core.ace().total_abc());
    let start = profile.span().start;
    let est = FaultCampaign::new(11).run(
        &profile,
        &CoreConfig::baseline().capacities(),
        start..start + core.stats().cycles,
        60_000,
    );
    let analytic = core.reliability_report().avf();
    assert!(
        (est.avf - analytic).abs() < 4.0 * est.ci95.max(1e-4),
        "injected {} vs analytic {analytic} (ci {})",
        est.avf,
        est.ci95
    );
}

#[test]
fn phase_series_flattens_under_rar() {
    let profile_of = |technique| {
        let spec = rar::workloads::workload("gems").expect("known benchmark");
        let mut core = Core::new(
            CoreConfig::baseline(),
            MemConfig::baseline(),
            technique,
            TraceWindow::new(spec.trace(1)),
        );
        core.enable_ace_logging();
        core.run_until_committed(2_000);
        core.reset_measurement();
        core.run_until_committed(10_000);
        let profile = OccupancyProfile::from_log(core.ace().interval_log());
        let span = profile.span();
        PhaseSeries::from_profile(
            &profile,
            &CoreConfig::baseline().capacities(),
            span.start,
            span.start + core.stats().cycles,
            500,
        )
    };
    let base = profile_of(Technique::Ooo);
    let rar = profile_of(Technique::Rar);
    assert!(
        rar.peak() < base.peak(),
        "RAR must clip the vulnerability peaks"
    );
    assert!(rar.mean() < base.mean());
}

#[test]
fn energy_model_ranks_techniques_sanely() {
    let model = EnergyModel::default_22nm();
    let base = run("fotonik", Technique::Ooo);
    let flush = run("fotonik", Technique::Flush);
    let rar = run("fotonik", Technique::Rar);
    // FLUSH is slower at equal work => more static energy per instruction.
    assert!(model.epi_vs(&flush, &base) > 1.0);
    // RAR's speedup keeps its EPI in a sane band despite speculation.
    let rar_epi = model.epi_vs(&rar, &base);
    assert!((0.6..1.3).contains(&rar_epi), "RAR EPI ratio {rar_epi}");
}

#[test]
fn json_export_roundtrips_key_figures() {
    let r = run("lbm", Technique::Rar);
    let json = rar::sim::json::to_json(&r);
    assert!(json.contains("\"workload\": \"lbm\""));
    assert!(json.contains("\"technique\": \"RAR\""));
    assert!(json.contains(&format!("\"committed\": {}", r.stats.committed)));
    assert!(json.contains(&format!("\"total_abc\": {}", r.reliability.total_abc())));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn m1_class_core_exposes_more_and_rar_recovers_it() {
    let mk = |core: CoreConfig, tech| {
        Simulation::run(
            &SimConfig::builder()
                .workload("gems")
                .technique(tech)
                .core(core)
                .warmup(3_000)
                .instructions(8_000)
                .build(),
        )
    };
    let base2 = mk(CoreConfig::baseline(), Technique::Ooo);
    let base5 = mk(CoreConfig::core5_m1(), Technique::Ooo);
    let rar5 = mk(CoreConfig::core5_m1(), Technique::Rar);
    assert!(
        base5.reliability.total_abc() > base2.reliability.total_abc(),
        "the 600-entry ROB must expose more state"
    );
    assert!(rar5.reliability.total_abc() < base5.reliability.total_abc() / 2);
}
