//! # Reliability-Aware Runahead (RAR)
//!
//! A cycle-level out-of-order core simulator with ACE-bit soft-error
//! accounting, reproducing *"Reliability-Aware Runahead"* (Naithani &
//! Eeckhout, HPCA 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`isa`] — micro-op ISA and instruction streams,
//! - [`workloads`] — synthetic SPEC-like workload generators,
//! - [`frontend`] — TAGE-SC-L branch prediction and front-end model,
//! - [`mem`] — cache hierarchy, MSHRs, stride prefetching, DDR3 DRAM,
//! - [`ace`] — ACE/ABC/AVF/MTTF reliability accounting,
//! - [`core`] — the out-of-order core and every runahead variant,
//! - [`trace`] — cycle-level pipeline tracing sinks and exporters,
//! - [`sim`] — configuration, the simulation driver, and experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use rar::sim::{SimConfig, Simulation};
//! use rar::core::Technique;
//!
//! let cfg = SimConfig::builder()
//!     .workload("libquantum")
//!     .technique(Technique::Rar)
//!     .instructions(5_000)
//!     .build();
//! let result = Simulation::run(&cfg);
//! assert!(result.ipc() > 0.0);
//! ```
//!
//! # Reproducing the paper
//!
//! The `rar-experiments` binary regenerates every table and figure of the
//! evaluation section; `EXPERIMENTS.md` records paper-versus-measured
//! values and `DESIGN.md` documents the calibration decisions and
//! deliberate deviations. Beyond the paper, the workspace implements the
//! related-work design points it compares against (dispatch throttling,
//! runahead buffer, continuous runahead, vector runahead), Monte-Carlo
//! fault injection, phase-resolved AVF, and a first-order energy model.

pub use rar_ace as ace;
pub use rar_core as core;
pub use rar_frontend as frontend;
pub use rar_isa as isa;
pub use rar_mem as mem;
pub use rar_sim as sim;
pub use rar_trace as trace;
pub use rar_workloads as workloads;
