// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for the ACE accounting: window algebra and metric
//! identities.

use proptest::prelude::*;
use rar_ace::{avf, mttf_relative, AceCounter, StallKind, Structure, WindowSet};

/// Generates a sorted list of non-overlapping (start, end) windows.
fn windows_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((1u64..50, 1u64..50), 0..12).prop_map(|gaps| {
        let mut t = 0;
        let mut out = Vec::new();
        for (gap, len) in gaps {
            let start = t + gap;
            let end = start + len;
            out.push((start, end));
            t = end;
        }
        out
    })
}

proptest! {
    /// Overlap is bounded by both the query length and the total window
    /// coverage, and is additive over adjacent query ranges.
    #[test]
    fn overlap_bounds_and_additivity(
        windows in windows_strategy(),
        a in 0u64..800,
        len1 in 0u64..400,
        len2 in 0u64..400,
    ) {
        let mut set = WindowSet::new();
        for &(s, e) in &windows {
            set.open(s);
            set.close(e);
        }
        let b = a + len1;
        let c = b + len2;
        let ab = set.overlap(a, b);
        let bc = set.overlap(b, c);
        let ac = set.overlap(a, c);
        prop_assert_eq!(ab + bc, ac, "additivity over [a,b)+[b,c)");
        prop_assert!(ab <= len1);
        prop_assert!(ac <= set.total_cycles());
    }

    /// A query covering everything returns exactly the total coverage.
    #[test]
    fn full_query_equals_total(windows in windows_strategy()) {
        let mut set = WindowSet::new();
        for &(s, e) in &windows {
            set.open(s);
            set.close(e);
        }
        prop_assert_eq!(set.overlap(0, 10_000), set.total_cycles());
        prop_assert_eq!(set.len(), windows.len());
    }

    /// Window-attributed ABC never exceeds total ABC, regardless of the
    /// interleaving of windows and committed intervals.
    #[test]
    fn attribution_bounded_by_total(
        windows in windows_strategy(),
        intervals in prop::collection::vec((0u64..600, 1u64..200, 1u64..256), 1..20),
    ) {
        let mut ace = AceCounter::new();
        for &(s, e) in &windows {
            ace.open_window(StallKind::RobHeadBlocked, s);
            ace.close_window(StallKind::RobHeadBlocked, e);
        }
        for &(start, len, bits) in &intervals {
            ace.record_committed(Structure::Rob, bits, start, start + len);
        }
        prop_assert!(ace.abc_in_window(StallKind::RobHeadBlocked) <= ace.total_abc());
    }

    /// ABC is additive: recording the same intervals in two counters in
    /// different orders yields identical totals.
    #[test]
    fn abc_order_independent(
        intervals in prop::collection::vec((0u64..600, 1u64..100, 1u64..200), 1..16),
    ) {
        let mut fwd = AceCounter::new();
        let mut rev = AceCounter::new();
        for &(s, l, b) in &intervals {
            fwd.record_committed(Structure::Iq, b, s, s + l);
        }
        for &(s, l, b) in intervals.iter().rev() {
            rev.record_committed(Structure::Iq, b, s, s + l);
        }
        prop_assert_eq!(fwd.total_abc(), rev.total_abc());
    }

    /// AVF is scale-invariant in capacity x time, and MTTF inverts the
    /// AVF ratio.
    #[test]
    fn metric_identities(abc in 1u128..1_000_000, n in 1u64..100_000, t in 1u64..100_000, k in 2u64..10) {
        prop_assume!(abc <= u128::from(n) * u128::from(t));
        let v = avf(abc, n, t);
        prop_assert!((0.0..=1.0).contains(&v));
        // Scaling exposure and capacity together leaves AVF unchanged.
        let v2 = avf(abc * u128::from(k), n * k, t);
        prop_assert!((v - v2).abs() < 1e-9);
        // MTTF ratio identity.
        let m = mttf_relative(v, v / k as f64);
        prop_assert!((m - k as f64).abs() < 1e-6);
    }
}
