//! Reliability metrics: ABC, AVF, FIT, MTTF (Section IV-B, Equations 1-4).
//!
//! The paper reports *normalized* MTTF and ABC relative to the baseline
//! out-of-order core, which cancels the technology- and environment-specific
//! raw error rate:
//!
//! ```text
//! AVF  = ABC / (N × T)            (Equation 2)
//! FIT  = AVF × raw_error_rate     (Equation 4)
//! MTTF = 1 / FIT                  (Equation 3)
//! =>  MTTF_tech / MTTF_base = AVF_base / AVF_tech
//! ```

use crate::bits::EntryBits;
use crate::counter::AceCounter;
use crate::structure::Structure;

/// Total bit capacity (`N` in Equation 2) of the tracked structures for a
/// particular core configuration.
///
/// # Examples
///
/// ```
/// use rar_ace::{EntryBits, StructureCapacities};
/// // The paper's baseline core (Table II).
/// let caps = StructureCapacities::from_entries(
///     &EntryBits::table_iii(),
///     192, 92, 64, 64, 168, 168, 5, 3,
/// );
/// assert!(caps.total_bits() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureCapacities {
    bits: [u64; Structure::COUNT],
}

impl StructureCapacities {
    /// Computes capacities from entry counts and Table III bit widths.
    ///
    /// `int_fus`/`fp_fus` are the number of integer and floating-point
    /// functional units.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_entries(
        entry_bits: &EntryBits,
        rob: u64,
        iq: u64,
        lq: u64,
        sq: u64,
        int_regs: u64,
        fp_regs: u64,
        int_fus: u64,
        fp_fus: u64,
    ) -> Self {
        let mut bits = [0u64; Structure::COUNT];
        bits[Structure::Rob.index()] = rob * entry_bits.per_entry(Structure::Rob);
        bits[Structure::Iq.index()] = iq * entry_bits.per_entry(Structure::Iq);
        bits[Structure::Lq.index()] = lq * entry_bits.per_entry(Structure::Lq);
        bits[Structure::Sq.index()] = sq * entry_bits.per_entry(Structure::Sq);
        bits[Structure::RfInt.index()] = int_regs * entry_bits.per_entry(Structure::RfInt);
        bits[Structure::RfFp.index()] = fp_regs * entry_bits.per_entry(Structure::RfFp);
        bits[Structure::Fu.index()] =
            int_fus * entry_bits.fu_bits(false) + fp_fus * entry_bits.fu_bits(true);
        StructureCapacities { bits }
    }

    /// Capacity in bits of one structure.
    #[must_use]
    pub fn bits(&self, structure: Structure) -> u64 {
        self.bits[structure.index()]
    }

    /// Total capacity `N` across all structures.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().sum()
    }
}

/// Architectural Vulnerability Factor: `ABC / (N × T)` (Equation 2).
///
/// Returns 0 when `capacity_bits` or `cycles` is zero.
#[must_use]
pub fn avf(total_abc: u128, capacity_bits: u64, cycles: u64) -> f64 {
    let denom = u128::from(capacity_bits) * u128::from(cycles);
    if denom == 0 {
        return 0.0;
    }
    total_abc as f64 / denom as f64
}

/// Relative MTTF of a technique versus a baseline: `AVF_base / AVF_tech`
/// (derived from Equations 3-4; the raw error rate cancels).
///
/// Returns `f64::INFINITY` if the technique exposes zero vulnerable state.
#[must_use]
pub fn mttf_relative(baseline_avf: f64, technique_avf: f64) -> f64 {
    if technique_avf == 0.0 {
        return f64::INFINITY;
    }
    baseline_avf / technique_avf
}

/// A complete per-run reliability summary.
///
/// Build one from the run's [`AceCounter`], the core's
/// [`StructureCapacities`], and the run length in cycles; compare against a
/// baseline run with [`ReliabilityReport::mttf_vs`] and
/// [`ReliabilityReport::abc_vs`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    abc: [u128; Structure::COUNT],
    total_abc: u128,
    refined_total_abc: u128,
    bit_refined_total_abc: u128,
    capacity_bits: u64,
    cycles: u64,
    avf: f64,
    refined_avf: f64,
    bit_refined_avf: f64,
}

impl ReliabilityReport {
    /// Summarizes a finished run.
    #[must_use]
    pub fn new(ace: &AceCounter, capacities: &StructureCapacities, cycles: u64) -> Self {
        ReliabilityReport::from_parts(
            ace.abc_by_structure(),
            ace.total_abc(),
            ace.total_refined_abc(),
            ace.total_bit_refined_abc(),
            capacities.total_bits(),
            cycles,
        )
    }

    /// Rebuilds a report from its integer measurements (the derived AVF
    /// fractions are recomputed with the same formula [`ReliabilityReport::new`]
    /// uses, so a round-trip through the integer fields is bit-identical).
    /// This is the rehydration path for on-disk result caches.
    #[must_use]
    pub fn from_parts(
        abc: [u128; Structure::COUNT],
        total_abc: u128,
        refined_total_abc: u128,
        bit_refined_total_abc: u128,
        capacity_bits: u64,
        cycles: u64,
    ) -> Self {
        ReliabilityReport {
            abc,
            total_abc,
            refined_total_abc,
            bit_refined_total_abc,
            capacity_bits,
            cycles,
            avf: avf(total_abc, capacity_bits, cycles),
            refined_avf: avf(refined_total_abc, capacity_bits, cycles),
            bit_refined_avf: avf(bit_refined_total_abc, capacity_bits, cycles),
        }
    }

    /// ACE bit-cycles exposed in one structure.
    #[must_use]
    pub fn abc(&self, structure: Structure) -> u128 {
        self.abc[structure.index()]
    }

    /// Total ACE bit count (Equation 1).
    #[must_use]
    pub fn total_abc(&self) -> u128 {
        self.total_abc
    }

    /// Run length in cycles (`T`).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Structure capacity in bits (`N`).
    #[must_use]
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Architectural vulnerability factor.
    #[must_use]
    pub fn avf(&self) -> f64 {
        self.avf
    }

    /// Total ACE bit count after subtracting statically-proven
    /// dynamically-dead bit-cycles. Equals [`ReliabilityReport::total_abc`]
    /// when the run did not record a refinement; never exceeds it.
    #[must_use]
    pub fn refined_total_abc(&self) -> u128 {
        self.refined_total_abc
    }

    /// AVF computed from the refined ABC (never above
    /// [`ReliabilityReport::avf`]).
    #[must_use]
    pub fn refined_avf(&self) -> f64 {
        self.refined_avf
    }

    /// Total ACE bit count after subtracting the *bit-granular* dead
    /// mass. Never exceeds [`ReliabilityReport::refined_total_abc`]
    /// when both refinements came from the same analysis.
    #[must_use]
    pub fn bit_refined_total_abc(&self) -> u128 {
        self.bit_refined_total_abc
    }

    /// AVF computed from the bit-refined ABC (never above
    /// [`ReliabilityReport::refined_avf`]).
    #[must_use]
    pub fn bit_refined_avf(&self) -> f64 {
        self.bit_refined_avf
    }

    /// Normalized MTTF of `self` relative to `baseline` (higher is better).
    #[must_use]
    pub fn mttf_vs(&self, baseline: &ReliabilityReport) -> f64 {
        mttf_relative(baseline.avf, self.avf)
    }

    /// Normalized ABC of `self` relative to `baseline` (lower is better).
    ///
    /// Returns `f64::NAN` if the baseline exposed zero ACE bits.
    #[must_use]
    pub fn abc_vs(&self, baseline: &ReliabilityReport) -> f64 {
        if baseline.total_abc == 0 {
            return f64::NAN;
        }
        self.total_abc as f64 / baseline.total_abc as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::AceCounter;

    fn caps() -> StructureCapacities {
        StructureCapacities::from_entries(&EntryBits::table_iii(), 192, 92, 64, 64, 168, 168, 5, 3)
    }

    #[test]
    fn capacity_matches_hand_computation() {
        let c = caps();
        assert_eq!(c.bits(Structure::Rob), 192 * 120);
        assert_eq!(c.bits(Structure::Iq), 92 * 80);
        assert_eq!(c.bits(Structure::Lq), 64 * 120);
        assert_eq!(c.bits(Structure::Sq), 64 * 184);
        assert_eq!(c.bits(Structure::RfInt), 168 * 64);
        assert_eq!(c.bits(Structure::RfFp), 168 * 128);
        assert_eq!(c.bits(Structure::Fu), 5 * 64 + 3 * 128);
        assert_eq!(
            c.total_bits(),
            192 * 120 + 92 * 80 + 64 * 120 + 64 * 184 + 168 * 64 + 168 * 128 + 5 * 64 + 3 * 128
        );
    }

    #[test]
    fn avf_is_fraction_of_capacity_time() {
        // Fully-occupied structure for the whole run => AVF == share of capacity.
        let total = 1_000u128;
        assert!((avf(total, 100, 10) - 1.0).abs() < 1e-12);
        assert!((avf(total / 2, 100, 10) - 0.5).abs() < 1e-12);
        assert_eq!(avf(total, 0, 10), 0.0);
        assert_eq!(avf(total, 100, 0), 0.0);
    }

    #[test]
    fn mttf_relative_inverts_avf_ratio() {
        assert!((mttf_relative(0.4, 0.1) - 4.0).abs() < 1e-12);
        assert_eq!(mttf_relative(0.4, 0.0), f64::INFINITY);
    }

    #[test]
    fn report_roundtrip() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::Rob, 120, 0, 100);
        let rep = ReliabilityReport::new(&ace, &caps(), 100);
        assert_eq!(rep.total_abc(), 120 * 100);
        assert_eq!(rep.cycles(), 100);
        assert!(rep.avf() > 0.0);
    }

    #[test]
    fn pre_like_tradeoff_yields_flat_mttf() {
        // PRE in the paper: ~28% lower ABC but ~38% faster => MTTF ~ 1x.
        let caps = caps();
        let mut base_ace = AceCounter::new();
        base_ace.record_committed(Structure::Rob, 1, 0, 1_000_000);
        let base = ReliabilityReport::new(&base_ace, &caps, 1_380_000);

        let mut pre_ace = AceCounter::new();
        pre_ace.record_committed(Structure::Rob, 1, 0, 717_000);
        let pre = ReliabilityReport::new(&pre_ace, &caps, 1_000_000);

        let mttf = pre.mttf_vs(&base);
        assert!((mttf - 1.0).abs() < 0.02, "expected ~1.0, got {mttf}");
    }

    #[test]
    fn refined_avf_never_exceeds_unrefined() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::RfInt, 64, 0, 100);
        ace.record_dead(Structure::RfInt, 64, 0, 40);
        let rep = ReliabilityReport::new(&ace, &caps(), 100);
        assert_eq!(rep.total_abc(), 6400);
        assert_eq!(rep.refined_total_abc(), 6400 - 64 * 40);
        assert!(rep.refined_avf() <= rep.avf());
        assert!(rep.refined_avf() > 0.0);
    }

    #[test]
    fn bit_refined_avf_is_ordered_below_refined() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::RfInt, 64, 0, 100);
        ace.record_dead(Structure::RfInt, 16, 0, 100);
        ace.record_dead_bits(Structure::RfInt, 40, 0, 100);
        let rep = ReliabilityReport::new(&ace, &caps(), 100);
        assert_eq!(rep.bit_refined_total_abc(), 6400 - 40 * 100);
        assert!(rep.bit_refined_avf() <= rep.refined_avf());
        assert!(rep.refined_avf() <= rep.avf());
        assert!(rep.bit_refined_avf() > 0.0);
        // The integer round-trip reproduces the derived fractions.
        let rt = ReliabilityReport::from_parts(
            ace.abc_by_structure(),
            rep.total_abc(),
            rep.refined_total_abc(),
            rep.bit_refined_total_abc(),
            rep.capacity_bits(),
            rep.cycles(),
        );
        assert_eq!(rt, rep);
    }

    #[test]
    fn abc_vs_baseline() {
        let caps = caps();
        let mut a = AceCounter::new();
        a.record_committed(Structure::Iq, 80, 0, 100);
        let ra = ReliabilityReport::new(&a, &caps, 100);
        let mut b = AceCounter::new();
        b.record_committed(Structure::Iq, 80, 0, 50);
        let rb = ReliabilityReport::new(&b, &caps, 100);
        assert!((rb.abc_vs(&ra) - 0.5).abs() < 1e-12);
    }
}
