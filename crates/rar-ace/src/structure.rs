//! Microarchitectural structures tracked by the ACE analysis.

use std::fmt;

/// A back-end structure whose occupancy exposes vulnerable state.
///
/// These are the six categories of the paper's ABC stacks (Figure 3):
/// reorder buffer, issue queue, load queue, store queue, physical register
/// file (split by class since the bit widths differ), and functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Structure {
    /// Reorder buffer: vulnerable from dispatch to commit.
    Rob,
    /// Issue queue: vulnerable from dispatch to issue.
    Iq,
    /// Load queue: vulnerable from execute to commit.
    Lq,
    /// Store queue: vulnerable from execute to commit.
    Sq,
    /// Integer physical registers: vulnerable from execute to commit.
    RfInt,
    /// Floating-point physical registers: vulnerable from execute to commit.
    RfFp,
    /// Functional units: width × execution cycles.
    Fu,
}

impl Structure {
    /// Number of tracked structures.
    pub const COUNT: usize = 7;

    /// All structures, in reporting order (matches the Figure 3 stacks).
    pub const ALL: [Structure; Structure::COUNT] = [
        Structure::Rob,
        Structure::Iq,
        Structure::Lq,
        Structure::Sq,
        Structure::RfInt,
        Structure::RfFp,
        Structure::Fu,
    ];

    /// Dense index for array-backed counters.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Structure::Rob => 0,
            Structure::Iq => 1,
            Structure::Lq => 2,
            Structure::Sq => 3,
            Structure::RfInt => 4,
            Structure::RfFp => 5,
            Structure::Fu => 6,
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Structure::Rob => "ROB",
            Structure::Iq => "IQ",
            Structure::Lq => "LQ",
            Structure::Sq => "SQ",
            Structure::RfInt => "RF(int)",
            Structure::RfFp => "RF(fp)",
            Structure::Fu => "FU",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, s) in Structure::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn display_is_nonempty() {
        for s in Structure::ALL {
            assert!(!s.to_string().is_empty());
        }
    }
}
