//! Append-only stall-window sets for the Figure 5 attribution analysis.
//!
//! The core opens a window when a long-latency load miss blocks commit at
//! the ROB head (or when the ROB additionally fills up) and closes it when
//! the load returns. Windows therefore arrive in increasing time order and
//! never overlap within one [`WindowSet`], which lets overlap queries run in
//! `O(log n)` using prefix sums.

use std::fmt;

/// The two stall-window categories of the Figure 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// The ROB is completely full while an LLC load miss blocks commit.
    FullRobStall,
    /// An LLC load miss blocks commit at the ROB head (superset of
    /// [`StallKind::FullRobStall`] in time).
    RobHeadBlocked,
}

impl StallKind {
    /// Number of categories.
    pub const COUNT: usize = 2;

    /// Dense index for array-backed counters.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            StallKind::FullRobStall => 0,
            StallKind::RobHeadBlocked => 1,
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::FullRobStall => write!(f, "full-ROB stall"),
            StallKind::RobHeadBlocked => write!(f, "ROB head blocked"),
        }
    }
}

/// A set of non-overlapping, time-ordered windows supporting `O(log n)`
/// overlap queries.
///
/// # Examples
///
/// ```
/// use rar_ace::WindowSet;
/// let mut w = WindowSet::new();
/// w.open(10);
/// w.close(20);
/// w.open(30);
/// w.close(40);
/// assert_eq!(w.overlap(0, 100), 20);
/// assert_eq!(w.overlap(15, 35), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WindowSet {
    starts: Vec<u64>,
    ends: Vec<u64>,
    /// `prefix[i]` = total length of windows `0..i`.
    prefix: Vec<u64>,
    open_since: Option<u64>,
    total: u64,
}

impl WindowSet {
    /// Creates an empty window set.
    #[must_use]
    pub fn new() -> Self {
        WindowSet::default()
    }

    /// Opens a window at `cycle`. Opening an already-open set is a no-op
    /// (the earlier open stands), which tolerates re-detection of the same
    /// stall by the core.
    pub fn open(&mut self, cycle: u64) {
        if self.open_since.is_none() {
            debug_assert!(
                self.ends.last().is_none_or(|&e| e <= cycle),
                "windows must open in time order"
            );
            self.open_since = Some(cycle);
        }
    }

    /// True if a window is currently open.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.open_since.is_some()
    }

    /// Closes the open window at `cycle`, returning the recorded
    /// `(start, end)` interval. Closing with no open window is a no-op.
    /// Zero-length windows are discarded (and return `None`).
    pub fn close(&mut self, cycle: u64) -> Option<(u64, u64)> {
        let start = self.open_since.take()?;
        if cycle > start {
            self.starts.push(start);
            self.ends.push(cycle);
            self.prefix.push(self.total);
            self.total += cycle - start;
            Some((start, cycle))
        } else {
            None
        }
    }

    /// Total closed-window cycles (excludes any still-open window).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Number of closed windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True if no window has been closed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total window cycles strictly before time `t` (counting a still-open
    /// window up to `t`).
    fn covered_before(&self, t: u64) -> u64 {
        // Closed windows: binary search for the first window starting >= t.
        let i = self.starts.partition_point(|&s| s < t);
        let mut covered = if i == 0 {
            0
        } else {
            // Windows 0..i-1 fully or partially precede t.
            let full = self.prefix[i - 1];
            let last_end = self.ends[i - 1].min(t);
            full + last_end.saturating_sub(self.starts[i - 1])
        };
        if let Some(open) = self.open_since {
            covered += t.saturating_sub(open);
        }
        covered
    }

    /// Length of the intersection of `[start, end)` with the window set
    /// (including a still-open window, treated as extending to `end`).
    #[must_use]
    pub fn overlap(&self, start: u64, end: u64) -> u64 {
        if end <= start {
            return 0;
        }
        self.covered_before(end) - self.covered_before(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_zero_overlap() {
        let w = WindowSet::new();
        assert_eq!(w.overlap(0, 1_000), 0);
        assert!(w.is_empty());
    }

    #[test]
    fn single_window_overlaps() {
        let mut w = WindowSet::new();
        w.open(100);
        w.close(200);
        assert_eq!(w.overlap(0, 50), 0);
        assert_eq!(w.overlap(0, 150), 50);
        assert_eq!(w.overlap(150, 160), 10);
        assert_eq!(w.overlap(150, 400), 50);
        assert_eq!(w.overlap(300, 400), 0);
        assert_eq!(w.total_cycles(), 100);
    }

    #[test]
    fn multiple_windows() {
        let mut w = WindowSet::new();
        for (s, e) in [(10, 20), (30, 40), (50, 60)] {
            w.open(s);
            w.close(e);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.overlap(0, 100), 30);
        assert_eq!(w.overlap(15, 55), 5 + 10 + 5);
        assert_eq!(w.overlap(20, 30), 0);
    }

    #[test]
    fn open_window_counts_toward_overlap() {
        let mut w = WindowSet::new();
        w.open(100);
        assert!(w.is_open());
        assert_eq!(w.overlap(50, 150), 50);
        w.close(200);
        assert_eq!(w.overlap(50, 150), 50);
    }

    #[test]
    fn double_open_keeps_first() {
        let mut w = WindowSet::new();
        w.open(10);
        w.open(50);
        w.close(100);
        assert_eq!(w.total_cycles(), 90);
    }

    #[test]
    fn close_without_open_is_noop() {
        let mut w = WindowSet::new();
        assert_eq!(w.close(10), None);
        assert!(w.is_empty());
    }

    #[test]
    fn close_returns_recorded_interval() {
        let mut w = WindowSet::new();
        w.open(10);
        assert_eq!(w.close(25), Some((10, 25)));
        w.open(30);
        assert_eq!(w.close(30), None, "zero-length windows are discarded");
    }

    #[test]
    fn zero_length_window_discarded() {
        let mut w = WindowSet::new();
        w.open(10);
        w.close(10);
        assert!(w.is_empty());
        assert!(!w.is_open());
    }

    #[test]
    fn stall_kind_indices() {
        assert_ne!(
            StallKind::FullRobStall.index(),
            StallKind::RobHeadBlocked.index()
        );
        assert!(StallKind::FullRobStall.index() < StallKind::COUNT);
        assert!(StallKind::RobHeadBlocked.index() < StallKind::COUNT);
    }
}
