//! Per-entry bit widths of the tracked structures (Table III of the paper).
//!
//! The paper justifies these budgets in Section IV-A: each ROB entry carries
//! a 12-bit PC-table index, a 72-bit rename mapping (three 24-bit
//! arch/phys/old-phys triples), LQ/SQ indices, and completion/exception/
//! marker bits; the issue queue carries register tags, LQ/SQ indices and a
//! 32-bit micro-op; the load queue carries virtual and physical addresses
//! for memory-ordering checks; the store queue adds 64 bits of data.

use crate::structure::Structure;

/// Bits per reorder-buffer entry.
pub const ROB_ENTRY_BITS: u64 = 120;
/// Bits per issue-queue entry.
pub const IQ_ENTRY_BITS: u64 = 80;
/// Bits per load-queue entry.
pub const LQ_ENTRY_BITS: u64 = 120;
/// Bits per store-queue entry.
pub const SQ_ENTRY_BITS: u64 = 184;
/// Bits per integer physical register (Table II).
pub const INT_REG_BITS: u64 = 64;
/// Bits per floating-point physical register (Table II).
pub const FP_REG_BITS: u64 = 128;
/// Width in bits of an integer functional unit.
pub const INT_FU_BITS: u64 = 64;
/// Width in bits of a floating-point functional unit.
pub const FP_FU_BITS: u64 = 128;

/// Table III as a queryable value: bits per entry for each structure.
///
/// The register-file and FU widths depend on the operand class, so this type
/// exposes the *fixed* per-entry structures directly and leaves RF/FU widths
/// to the constants above.
///
/// # Examples
///
/// ```
/// use rar_ace::{EntryBits, Structure};
/// let bits = EntryBits::table_iii();
/// assert_eq!(bits.per_entry(Structure::Rob), 120);
/// assert_eq!(bits.per_entry(Structure::Sq), 184);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryBits {
    rob: u64,
    iq: u64,
    lq: u64,
    sq: u64,
    rf_int: u64,
    rf_fp: u64,
    fu_int: u64,
    fu_fp: u64,
}

impl EntryBits {
    /// The paper's Table III configuration.
    #[must_use]
    pub const fn table_iii() -> Self {
        EntryBits {
            rob: ROB_ENTRY_BITS,
            iq: IQ_ENTRY_BITS,
            lq: LQ_ENTRY_BITS,
            sq: SQ_ENTRY_BITS,
            rf_int: INT_REG_BITS,
            rf_fp: FP_REG_BITS,
            fu_int: INT_FU_BITS,
            fu_fp: FP_FU_BITS,
        }
    }

    /// Bits per entry of `structure`. For [`Structure::Fu`] this returns the
    /// integer FU width; use [`EntryBits::fu_bits`] for class-specific widths.
    #[must_use]
    pub const fn per_entry(&self, structure: Structure) -> u64 {
        match structure {
            Structure::Rob => self.rob,
            Structure::Iq => self.iq,
            Structure::Lq => self.lq,
            Structure::Sq => self.sq,
            Structure::RfInt => self.rf_int,
            Structure::RfFp => self.rf_fp,
            Structure::Fu => self.fu_int,
        }
    }

    /// Functional-unit width for integer (`false`) or floating-point
    /// (`true`) operations.
    #[must_use]
    pub const fn fu_bits(&self, fp: bool) -> u64 {
        if fp {
            self.fu_fp
        } else {
            self.fu_int
        }
    }
}

impl Default for EntryBits {
    fn default() -> Self {
        EntryBits::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let b = EntryBits::table_iii();
        assert_eq!(b.per_entry(Structure::Rob), 120);
        assert_eq!(b.per_entry(Structure::Iq), 80);
        assert_eq!(b.per_entry(Structure::Lq), 120);
        assert_eq!(b.per_entry(Structure::Sq), 184);
        assert_eq!(b.per_entry(Structure::RfInt), 64);
        assert_eq!(b.per_entry(Structure::RfFp), 128);
        assert_eq!(b.fu_bits(false), 64);
        assert_eq!(b.fu_bits(true), 128);
    }

    #[test]
    fn store_queue_is_load_queue_plus_data() {
        // Table III: "Everything in load queue plus 64-bit data".
        assert_eq!(SQ_ENTRY_BITS, LQ_ENTRY_BITS + 64);
    }

    #[test]
    fn default_is_table_iii() {
        assert_eq!(EntryBits::default(), EntryBits::table_iii());
    }
}
