//! Monte-Carlo fault injection over the ACE interval log.
//!
//! The paper (footnote 1) notes that instead of ACE analysis "an elaborate
//! fault injection campaign might report lower absolute vulnerability
//! numbers, but the overall conclusions and insights would be similar".
//! This module implements the sampling side of that argument: random
//! (cycle, structure, bit) strikes are tested against the recorded
//! committed-occupancy intervals. Because a strike is architecturally
//! harmful exactly when it lands on a bit whose interval later commits,
//! the hit-rate estimator converges to the analytic AVF — a useful
//! cross-check of the accounting, and the substrate for derating studies.
//!
//! # Examples
//!
//! ```
//! use rar_ace::{AceCounter, Structure};
//! use rar_ace::inject::{FaultCampaign, OccupancyProfile};
//!
//! let mut ace = AceCounter::with_logging();
//! ace.record_committed(Structure::Rob, 120, 0, 100);
//! let profile = OccupancyProfile::from_log(ace.interval_log());
//! assert_eq!(profile.ace_bits(Structure::Rob, 50), 120);
//! assert_eq!(profile.ace_bits(Structure::Rob, 100), 0);
//! ```

use crate::counter::AceCounter;
use crate::metrics::StructureCapacities;
use crate::structure::Structure;

/// One committed occupancy interval, as recorded by
/// [`AceCounter::with_logging`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedInterval {
    /// Structure the bits lived in.
    pub structure: Structure,
    /// Vulnerable bits held.
    pub bits: u64,
    /// First vulnerable cycle (inclusive).
    pub start: u64,
    /// Last vulnerable cycle (exclusive).
    pub end: u64,
}

/// A per-structure step function: how many committed-ACE bits each
/// structure held at any cycle. Built once from the interval log;
/// queries are `O(log n)`.
#[derive(Debug, Clone)]
pub struct OccupancyProfile {
    /// Per structure: sorted event times and the ACE-bit level *after*
    /// each event.
    steps: [Vec<(u64, u64)>; Structure::COUNT],
}

impl OccupancyProfile {
    /// Builds the profile from a recorded interval log.
    #[must_use]
    pub fn from_log(log: &[LoggedInterval]) -> Self {
        let mut events: [Vec<(u64, i64)>; Structure::COUNT] = Default::default();
        for iv in log {
            let e = &mut events[iv.structure.index()];
            e.push((iv.start, iv.bits as i64));
            e.push((iv.end, -(iv.bits as i64)));
        }
        let mut steps: [Vec<(u64, u64)>; Structure::COUNT] = Default::default();
        for (s, mut ev) in events.into_iter().enumerate() {
            ev.sort_unstable();
            let mut level: i64 = 0;
            let mut out: Vec<(u64, u64)> = Vec::with_capacity(ev.len());
            for (t, delta) in ev {
                level += delta;
                debug_assert!(level >= 0, "interval accounting went negative");
                match out.last_mut() {
                    Some(last) if last.0 == t => last.1 = level as u64,
                    _ => out.push((t, level as u64)),
                }
            }
            steps[s] = out;
        }
        OccupancyProfile { steps }
    }

    /// Step events of one structure (internal, for phase integration).
    pub(crate) fn steps_of(&self, structure: Structure) -> &[(u64, u64)] {
        &self.steps[structure.index()]
    }

    /// Committed-ACE bits resident in `structure` at `cycle`.
    #[must_use]
    pub fn ace_bits(&self, structure: Structure, cycle: u64) -> u64 {
        let steps = &self.steps[structure.index()];
        match steps.partition_point(|&(t, _)| t <= cycle) {
            0 => 0,
            i => steps[i - 1].1,
        }
    }

    /// The [first, last) event-time span of the recorded intervals.
    /// Useful for choosing the campaign's cycle range when the log was
    /// captured after a measurement reset (interval timestamps are
    /// absolute core cycles).
    #[must_use]
    pub fn span(&self) -> std::ops::Range<u64> {
        let start = self
            .steps
            .iter()
            .filter_map(|s| s.first().map(|&(t, _)| t))
            .min()
            .unwrap_or(0);
        let end = self
            .steps
            .iter()
            .filter_map(|s| s.last().map(|&(t, _)| t))
            .max()
            .unwrap_or(0);
        start..end
    }

    /// Exact ABC recomputed from the profile (validates the log against
    /// the counter's running totals).
    #[must_use]
    pub fn total_abc(&self) -> u128 {
        let mut total: u128 = 0;
        for steps in &self.steps {
            for w in steps.windows(2) {
                total += u128::from(w[0].1) * u128::from(w[1].0 - w[0].0);
            }
        }
        total
    }
}

/// Result of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionEstimate {
    /// Strikes that landed on architecturally-required bits.
    pub hits: u64,
    /// Total strikes injected.
    pub samples: u64,
    /// Estimated AVF (hit fraction, capacity-and-time weighted).
    pub avf: f64,
    /// Half-width of the 95% normal-approximation confidence interval.
    pub ci95: f64,
}

/// A deterministic fault-injection campaign.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    rng: u64,
}

impl FaultCampaign {
    /// Creates a campaign with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultCampaign {
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        // SplitMix64.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Injects `samples` uniform (cycle, bit) strikes over the absolute
    /// cycle range `range` and the capacity of `caps`, and tests each
    /// against the profile. The range should cover the measured window
    /// (e.g. `profile.span().start .. profile.span().start + cycles`).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero, the range is empty, or the capacities
    /// are empty.
    pub fn run(
        &mut self,
        profile: &OccupancyProfile,
        caps: &StructureCapacities,
        range: std::ops::Range<u64>,
        samples: u64,
    ) -> InjectionEstimate {
        assert!(samples > 0, "a campaign needs at least one strike");
        assert!(range.end > range.start, "campaign cycle range is empty");
        let total_bits = caps.total_bits();
        assert!(total_bits > 0, "structures must have capacity");
        let span = range.end - range.start;
        let mut hits = 0u64;
        for _ in 0..samples {
            let cycle = range.start + self.next() % span;
            // Pick a bit uniformly across the whole capacity, then locate
            // the structure it belongs to.
            let mut bit = self.next() % total_bits;
            let mut structure = Structure::Rob;
            for s in Structure::ALL {
                let c = caps.bits(s);
                if bit < c {
                    structure = s;
                    break;
                }
                bit -= c;
            }
            // The strike is harmful if the bit index falls inside the
            // currently-ACE population of that structure. Occupancy is
            // anonymous (we know how many bits are ACE, not which), so the
            // bit index acts as a uniform threshold — exact in
            // expectation.
            if bit < profile.ace_bits(structure, cycle) {
                hits += 1;
            }
        }
        let p = hits as f64 / samples as f64;
        let ci95 = 1.96 * (p * (1.0 - p) / samples as f64).sqrt();
        InjectionEstimate {
            hits,
            samples,
            avf: p,
            ci95,
        }
    }
}

impl AceCounter {
    /// Creates a counter that additionally records every committed
    /// interval for fault injection.
    #[must_use]
    pub fn with_logging() -> Self {
        let mut c = AceCounter::new();
        c.enable_logging();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::EntryBits;

    fn caps() -> StructureCapacities {
        StructureCapacities::from_entries(&EntryBits::table_iii(), 192, 92, 64, 64, 168, 168, 5, 3)
    }

    #[test]
    fn profile_reconstructs_abc() {
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Rob, 120, 10, 200);
        ace.record_committed(Structure::Rob, 120, 50, 120);
        ace.record_committed(Structure::Iq, 80, 0, 40);
        let profile = OccupancyProfile::from_log(ace.interval_log());
        assert_eq!(profile.total_abc(), ace.total_abc());
        assert_eq!(profile.ace_bits(Structure::Rob, 60), 240);
        assert_eq!(profile.ace_bits(Structure::Rob, 150), 120);
        assert_eq!(profile.ace_bits(Structure::Iq, 39), 80);
        assert_eq!(profile.ace_bits(Structure::Iq, 40), 0);
    }

    #[test]
    fn empty_log_means_zero_avf() {
        let profile = OccupancyProfile::from_log(&[]);
        let mut campaign = FaultCampaign::new(1);
        let est = campaign.run(&profile, &caps(), 0..1_000, 10_000);
        assert_eq!(est.hits, 0);
        assert_eq!(est.avf, 0.0);
    }

    #[test]
    fn injection_converges_to_analytic_avf() {
        // Occupy a quarter of the ROB for the whole run; AVF should equal
        // rob_bits/4 / total_bits.
        let caps = caps();
        let cycles = 1_000u64;
        let rob_quarter = caps.bits(Structure::Rob) / 4;
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Rob, rob_quarter, 0, cycles);
        let expect = rob_quarter as f64 / caps.total_bits() as f64;

        let profile = OccupancyProfile::from_log(ace.interval_log());
        let mut campaign = FaultCampaign::new(42);
        let est = campaign.run(&profile, &caps, 0..cycles, 200_000);
        assert!(
            (est.avf - expect).abs() < 3.0 * est.ci95.max(1e-4),
            "estimate {} vs analytic {expect} (ci {})",
            est.avf,
            est.ci95
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Lq, 120, 0, 500);
        let profile = OccupancyProfile::from_log(ace.interval_log());
        let a = FaultCampaign::new(7).run(&profile, &caps(), 0..500, 10_000);
        let b = FaultCampaign::new(7).run(&profile, &caps(), 0..500, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one strike")]
    fn zero_samples_panics() {
        let profile = OccupancyProfile::from_log(&[]);
        let _ = FaultCampaign::new(0).run(&profile, &caps(), 0..10, 0);
    }
}
