//! The per-run ACE accumulator.

use crate::structure::Structure;
use crate::window::{StallKind, WindowSet};

/// Accumulates ACE bit-cycles per structure, with stall-window attribution.
///
/// The core calls [`AceCounter::record_committed`] once per resource
/// interval *at commit time* (squash-terminated intervals are never
/// reported, making them un-ACE by construction), and opens/closes stall
/// windows as long-latency misses block commit.
///
/// # Examples
///
/// ```
/// use rar_ace::{AceCounter, Structure};
/// let mut ace = AceCounter::new();
/// ace.record_committed(Structure::Iq, 80, 10, 15);
/// assert_eq!(ace.abc(Structure::Iq), 400);
/// assert_eq!(ace.total_abc(), 400);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AceCounter {
    abc: [u128; Structure::COUNT],
    /// Statically-proven dynamically-dead bit-cycles, a subset of `abc`.
    /// Populated by [`AceCounter::record_dead`] when the core runs the
    /// `rar-verify` dead-value refinement; stays zero otherwise, so the
    /// unrefined (paper) figures are unchanged by default.
    dead_abc: [u128; Structure::COUNT],
    /// Bit-granular dead bit-cycles, a superset of `dead_abc` and a
    /// subset of `abc`. Populated by [`AceCounter::record_dead_bits`]
    /// when the core runs the bit-level (`rar-verify` bitlive)
    /// refinement; stays zero otherwise.
    bit_dead_abc: [u128; Structure::COUNT],
    windows: [WindowSet; StallKind::COUNT],
    abc_in_window: [u128; StallKind::COUNT],
    /// When `Some`, every committed interval is also recorded for
    /// fault-injection campaigns (see [`crate::inject`]).
    log: Option<Vec<crate::inject::LoggedInterval>>,
}

impl AceCounter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        AceCounter::default()
    }

    /// Records a committed (ACE) resource interval: `bits` vulnerable bits
    /// held from cycle `start` (inclusive) to `end` (exclusive).
    ///
    /// Also attributes the interval's overlap with every currently-known
    /// stall window, for the Figure 5 breakdown.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    pub fn record_committed(&mut self, structure: Structure, bits: u64, start: u64, end: u64) {
        debug_assert!(end >= start, "interval ends before it starts");
        if end <= start {
            return;
        }
        let cycles = end - start;
        self.abc[structure.index()] += u128::from(bits) * u128::from(cycles);
        if let Some(log) = &mut self.log {
            log.push(crate::inject::LoggedInterval {
                structure,
                bits,
                start,
                end,
            });
        }
        for kind in [StallKind::FullRobStall, StallKind::RobHeadBlocked] {
            let ov = self.windows[kind.index()].overlap(start, end);
            self.abc_in_window[kind.index()] += u128::from(bits) * u128::from(ov);
        }
    }

    /// Records that `dead_bits` of an interval previously reported via
    /// [`AceCounter::record_committed`] are dynamically dead (never read
    /// before overwrite), per the static un-ACE refinement. The caller must
    /// pass the same `[start, end)` interval and `dead_bits <= bits`, which
    /// keeps the refined ABC a lower bound of the unrefined one.
    pub fn record_dead(&mut self, structure: Structure, dead_bits: u64, start: u64, end: u64) {
        debug_assert!(end >= start, "interval ends before it starts");
        if end <= start || dead_bits == 0 {
            return;
        }
        let cycles = end - start;
        self.dead_abc[structure.index()] += u128::from(dead_bits) * u128::from(cycles);
        debug_assert!(
            self.dead_abc[structure.index()] <= self.abc[structure.index()],
            "dead bit-cycles exceed recorded ACE bit-cycles"
        );
    }

    /// Records that `dead_bits` of an interval previously reported via
    /// [`AceCounter::record_committed`] are dead under the *bit-level*
    /// refinement. The caller passes the same `[start, end)` interval;
    /// the count must dominate the word-level `record_dead` figure for
    /// the same interval (the per-value masks are constructed that
    /// way), which keeps `bit_refined <= refined <= unrefined`.
    pub fn record_dead_bits(&mut self, structure: Structure, dead_bits: u64, start: u64, end: u64) {
        debug_assert!(end >= start, "interval ends before it starts");
        if end <= start || dead_bits == 0 {
            return;
        }
        let cycles = end - start;
        self.bit_dead_abc[structure.index()] += u128::from(dead_bits) * u128::from(cycles);
        debug_assert!(
            self.bit_dead_abc[structure.index()] <= self.abc[structure.index()],
            "bit-dead bit-cycles exceed recorded ACE bit-cycles"
        );
    }

    /// Opens a stall window of the given kind at `cycle`.
    pub fn open_window(&mut self, kind: StallKind, cycle: u64) {
        self.windows[kind.index()].open(cycle);
    }

    /// Closes the stall window of the given kind at `cycle`, returning the
    /// recorded `(start, end)` interval (if any) so callers can forward the
    /// closed window to observability sinks.
    pub fn close_window(&mut self, kind: StallKind, cycle: u64) -> Option<(u64, u64)> {
        self.windows[kind.index()].close(cycle)
    }

    /// True if a window of `kind` is currently open.
    #[must_use]
    pub fn window_open(&self, kind: StallKind) -> bool {
        self.windows[kind.index()].is_open()
    }

    /// ACE bit-cycles accumulated in `structure`.
    #[must_use]
    pub fn abc(&self, structure: Structure) -> u128 {
        self.abc[structure.index()]
    }

    /// Total ACE bit-cycles across all structures (Equation 1).
    #[must_use]
    pub fn total_abc(&self) -> u128 {
        self.abc.iter().sum()
    }

    /// Dynamically-dead bit-cycles recorded against `structure`.
    #[must_use]
    pub fn dead_abc(&self, structure: Structure) -> u128 {
        self.dead_abc[structure.index()]
    }

    /// Refined ACE bit-cycles in `structure`: unrefined minus
    /// statically-proven dead. Equals the unrefined count when no
    /// refinement was recorded.
    #[must_use]
    pub fn refined_abc(&self, structure: Structure) -> u128 {
        self.abc[structure.index()] - self.dead_abc[structure.index()]
    }

    /// Total refined ACE bit-cycles across all structures.
    #[must_use]
    pub fn total_refined_abc(&self) -> u128 {
        self.total_abc() - self.dead_abc.iter().sum::<u128>()
    }

    /// Per-structure refined ABC snapshot in [`Structure::ALL`] order.
    #[must_use]
    pub fn refined_abc_by_structure(&self) -> [u128; Structure::COUNT] {
        let mut out = self.abc;
        for (o, d) in out.iter_mut().zip(self.dead_abc.iter()) {
            *o -= d;
        }
        out
    }

    /// Bit-granular dead bit-cycles recorded against `structure`.
    #[must_use]
    pub fn bit_dead_abc(&self, structure: Structure) -> u128 {
        self.bit_dead_abc[structure.index()]
    }

    /// Bit-refined ACE bit-cycles in `structure`: unrefined minus the
    /// bit-granular dead mass. Never exceeds [`AceCounter::refined_abc`]
    /// when both refinements were recorded from the same analysis, and
    /// equals the unrefined count when none was.
    #[must_use]
    pub fn bit_refined_abc(&self, structure: Structure) -> u128 {
        self.abc[structure.index()] - self.bit_dead_abc[structure.index()]
    }

    /// Total bit-refined ACE bit-cycles across all structures.
    #[must_use]
    pub fn total_bit_refined_abc(&self) -> u128 {
        self.total_abc() - self.bit_dead_abc.iter().sum::<u128>()
    }

    /// Per-structure bit-refined ABC snapshot in [`Structure::ALL`] order.
    #[must_use]
    pub fn bit_refined_abc_by_structure(&self) -> [u128; Structure::COUNT] {
        let mut out = self.abc;
        for (o, d) in out.iter_mut().zip(self.bit_dead_abc.iter()) {
            *o -= d;
        }
        out
    }

    /// ACE bit-cycles that fell inside windows of `kind`.
    #[must_use]
    pub fn abc_in_window(&self, kind: StallKind) -> u128 {
        self.abc_in_window[kind.index()]
    }

    /// Total cycles spent inside closed windows of `kind`.
    #[must_use]
    pub fn window_cycles(&self, kind: StallKind) -> u64 {
        self.windows[kind.index()].total_cycles()
    }

    /// Number of closed windows of `kind` (e.g. distinct blocking misses).
    #[must_use]
    pub fn window_count(&self, kind: StallKind) -> usize {
        self.windows[kind.index()].len()
    }

    /// Per-structure ABC snapshot in [`Structure::ALL`] order.
    #[must_use]
    pub fn abc_by_structure(&self) -> [u128; Structure::COUNT] {
        self.abc
    }

    /// Starts recording committed intervals for fault injection.
    pub fn enable_logging(&mut self) {
        if self.log.is_none() {
            self.log = Some(Vec::new());
        }
    }

    /// The recorded interval log (empty unless logging was enabled).
    #[must_use]
    pub fn interval_log(&self) -> &[crate::inject::LoggedInterval] {
        self.log.as_deref().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_structure() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::Rob, 120, 0, 10);
        ace.record_committed(Structure::Rob, 120, 10, 20);
        ace.record_committed(Structure::Sq, 184, 5, 6);
        assert_eq!(ace.abc(Structure::Rob), 120 * 20);
        assert_eq!(ace.abc(Structure::Sq), 184);
        assert_eq!(ace.total_abc(), 120 * 20 + 184);
    }

    #[test]
    fn empty_interval_is_ignored() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::Iq, 80, 7, 7);
        assert_eq!(ace.total_abc(), 0);
    }

    #[test]
    fn window_attribution_partial_overlap() {
        let mut ace = AceCounter::new();
        ace.open_window(StallKind::RobHeadBlocked, 100);
        ace.close_window(StallKind::RobHeadBlocked, 200);
        ace.record_committed(Structure::Rob, 120, 150, 250);
        assert_eq!(ace.abc_in_window(StallKind::RobHeadBlocked), 120 * 50);
        assert_eq!(ace.abc_in_window(StallKind::FullRobStall), 0);
    }

    #[test]
    fn attribution_sees_open_window() {
        let mut ace = AceCounter::new();
        ace.open_window(StallKind::FullRobStall, 10);
        // Interval committed while the window is still open: for attribution
        // purposes the window covers everything up to the interval end.
        ace.record_committed(Structure::Lq, 120, 20, 30);
        assert_eq!(ace.abc_in_window(StallKind::FullRobStall), 120 * 10);
    }

    #[test]
    fn window_bookkeeping() {
        let mut ace = AceCounter::new();
        ace.open_window(StallKind::RobHeadBlocked, 0);
        assert!(ace.window_open(StallKind::RobHeadBlocked));
        ace.close_window(StallKind::RobHeadBlocked, 40);
        ace.open_window(StallKind::RobHeadBlocked, 50);
        ace.close_window(StallKind::RobHeadBlocked, 60);
        assert_eq!(ace.window_count(StallKind::RobHeadBlocked), 2);
        assert_eq!(ace.window_cycles(StallKind::RobHeadBlocked), 50);
    }

    #[test]
    fn refined_abc_subtracts_dead_bits() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::RfInt, 64, 0, 10);
        ace.record_dead(Structure::RfInt, 16, 0, 10);
        assert_eq!(ace.abc(Structure::RfInt), 640);
        assert_eq!(ace.dead_abc(Structure::RfInt), 160);
        assert_eq!(ace.refined_abc(Structure::RfInt), 480);
        assert_eq!(ace.total_refined_abc(), 480);
        // Untouched structures are identical in both views.
        assert_eq!(ace.refined_abc(Structure::Rob), ace.abc(Structure::Rob));
    }

    #[test]
    fn refinement_defaults_to_unrefined() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::Rob, 120, 0, 10);
        assert_eq!(ace.total_refined_abc(), ace.total_abc());
        assert_eq!(ace.refined_abc_by_structure(), ace.abc_by_structure());
        assert_eq!(ace.total_bit_refined_abc(), ace.total_abc());
        assert_eq!(ace.bit_refined_abc_by_structure(), ace.abc_by_structure());
    }

    #[test]
    fn bit_refined_abc_is_ordered_below_refined() {
        let mut ace = AceCounter::new();
        ace.record_committed(Structure::RfInt, 64, 0, 10);
        // Word level proves 16 dead bits; the bit level proves 40.
        ace.record_dead(Structure::RfInt, 16, 0, 10);
        ace.record_dead_bits(Structure::RfInt, 40, 0, 10);
        assert_eq!(ace.bit_dead_abc(Structure::RfInt), 400);
        assert_eq!(ace.bit_refined_abc(Structure::RfInt), 240);
        assert!(ace.bit_refined_abc(Structure::RfInt) <= ace.refined_abc(Structure::RfInt));
        assert!(ace.refined_abc(Structure::RfInt) <= ace.abc(Structure::RfInt));
        assert_eq!(ace.total_bit_refined_abc(), 240);
        assert_eq!(
            ace.bit_refined_abc_by_structure()[Structure::RfInt.index()],
            240
        );
    }

    #[test]
    fn attribution_never_exceeds_total() {
        let mut ace = AceCounter::new();
        ace.open_window(StallKind::RobHeadBlocked, 0);
        ace.close_window(StallKind::RobHeadBlocked, 1_000);
        ace.record_committed(Structure::Rob, 120, 100, 300);
        ace.record_committed(Structure::Iq, 80, 50, 120);
        assert!(ace.abc_in_window(StallKind::RobHeadBlocked) <= ace.total_abc());
    }
}
