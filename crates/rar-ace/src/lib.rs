//! ACE-bit soft-error accounting.
//!
//! Implements the reliability methodology of Section IV-B of the paper
//! (Mukherjee et al.'s *Architecturally Correct Execution* analysis):
//!
//! - **ABC** (ACE Bit Count): total vulnerable bit-cycles exposed by
//!   correct-path instructions, broken down per microarchitectural
//!   structure ([`Structure`]) with the per-entry bit widths of Table III
//!   ([`bits`]).
//! - **AVF** (Architectural Vulnerability Factor): `ABC / (N × T)`.
//! - **FIT / MTTF**: derated failure rates; we report MTTF *relative to a
//!   baseline*, which cancels the technology-dependent raw error rate.
//!
//! The accounting is *squash-aware by construction*: the core reports a
//! resource interval only when the occupying instruction **commits**. Any
//! interval terminated by a squash — branch-misprediction recovery, a
//! runahead-exit flush (RAR/TR), or a FLUSH-style pipeline flush — is simply
//! never reported, making wrong-path, NOP, and runahead-speculative state
//! un-ACE exactly as the paper prescribes.
//!
//! For the Figure 5 analysis, [`AceCounter`] additionally attributes ACE
//! bit-cycles to *stall windows*: the core opens a [`StallKind`] window when
//! a long-latency load blocks commit (or when the ROB fills), closes it when
//! the load returns, and every committed interval is intersected against
//! those windows.
//!
//! # Examples
//!
//! ```
//! use rar_ace::{AceCounter, Structure, StallKind};
//!
//! let mut ace = AceCounter::new();
//! ace.open_window(StallKind::RobHeadBlocked, 100);
//! ace.close_window(StallKind::RobHeadBlocked, 250);
//! // A ROB entry (120 bits) occupied from cycle 50 to 300:
//! ace.record_committed(Structure::Rob, 120, 50, 300);
//! assert_eq!(ace.abc(Structure::Rob), 120 * 250);
//! // 150 of those 250 cycles fell inside the blocked window:
//! assert_eq!(ace.abc_in_window(StallKind::RobHeadBlocked), 120 * 150);
//! ```

pub mod bits;
pub mod counter;
pub mod inject;
pub mod metrics;
pub mod phase;
pub mod structure;
pub mod window;

pub use bits::EntryBits;
pub use counter::AceCounter;
pub use inject::{FaultCampaign, InjectionEstimate, OccupancyProfile};
pub use metrics::{avf, mttf_relative, ReliabilityReport, StructureCapacities};
pub use phase::PhaseSeries;
pub use structure::Structure;
pub use window::{StallKind, WindowSet};
