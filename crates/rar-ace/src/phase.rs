//! Phase-resolved vulnerability: AVF as a time series.
//!
//! Soft-error vulnerability is strongly phase-dependent (the paper's
//! motivation, and [Fu et al., MASCOTS 2006] in its related work): AVF
//! spikes while long-latency misses block commit and collapses during
//! compute phases. This module turns a recorded interval log into a
//! windowed AVF series, which the `vulnerability_phases` example plots as
//! a terminal sparkline and which downstream users can feed into
//! phase-aware scheduling studies (the authors' own HPCA 2017 work).

use crate::inject::OccupancyProfile;
use crate::metrics::StructureCapacities;

/// AVF sampled over fixed-width cycle windows.
#[derive(Debug, Clone)]
pub struct PhaseSeries {
    window: u64,
    start: u64,
    values: Vec<f64>,
}

impl PhaseSeries {
    /// Integrates the profile into `window`-cycle buckets over
    /// `[start, end)` and normalizes each bucket by capacity × window
    /// (i.e. per-window AVF).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or the range is empty.
    #[must_use]
    pub fn from_profile(
        profile: &OccupancyProfile,
        caps: &StructureCapacities,
        start: u64,
        end: u64,
        window: u64,
    ) -> Self {
        assert!(window > 0, "window must be nonzero");
        assert!(end > start, "range must be nonempty");
        let denom = caps.total_bits() as f64 * window as f64;
        let mut values = Vec::new();
        let mut t = start;
        while t < end {
            let hi = (t + window).min(end);
            let abc = profile.abc_between(t, hi);
            // Normalize partial windows by their actual width.
            let w = (hi - t) as f64 / window as f64;
            values.push(abc as f64 / (denom * w.max(f64::MIN_POSITIVE)));
            t = hi;
        }
        PhaseSeries {
            window,
            start,
            values,
        }
    }

    /// Window width in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// First cycle of the series.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Per-window AVF values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean AVF across windows (equals the run AVF for full windows).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Peak window AVF.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of windows whose AVF exceeds `threshold` — the knob a
    /// phase-aware scheduler would steer on.
    #[must_use]
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v > threshold).count() as f64 / self.values.len() as f64
    }

    /// Renders a unicode sparkline of the series (for terminal reports).
    #[must_use]
    pub fn sparkline(&self, columns: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.values.is_empty() || columns == 0 {
            return String::new();
        }
        let peak = self.peak().max(f64::MIN_POSITIVE);
        let chunk = self.values.len().div_ceil(columns);
        let mut out = String::new();
        for group in self.values.chunks(chunk) {
            let avg = group.iter().sum::<f64>() / group.len() as f64;
            let idx = ((avg / peak) * 7.0).round() as usize;
            out.push(BARS[idx.min(7)]);
        }
        out
    }
}

impl OccupancyProfile {
    /// Exact ACE bit-cycles accumulated in `[start, end)`.
    #[must_use]
    pub fn abc_between(&self, start: u64, end: u64) -> u128 {
        if end <= start {
            return 0;
        }
        let mut total: u128 = 0;
        for s in crate::structure::Structure::ALL {
            total += self.structure_abc_between(s, start, end);
        }
        total
    }

    fn structure_abc_between(
        &self,
        structure: crate::structure::Structure,
        start: u64,
        end: u64,
    ) -> u128 {
        let steps = self.steps_of(structure);
        if steps.is_empty() {
            return 0;
        }
        let mut total: u128 = 0;
        // Level before the first step is 0; walk the step segments that
        // intersect [start, end).
        let mut idx = steps.partition_point(|&(t, _)| t <= start);
        let mut t = start;
        let mut level = if idx == 0 { 0 } else { steps[idx - 1].1 };
        while t < end {
            let next_t = if idx < steps.len() {
                steps[idx].0.min(end)
            } else {
                end
            };
            total += u128::from(level) * u128::from(next_t - t);
            t = next_t;
            if idx < steps.len() && steps[idx].0 <= t {
                level = steps[idx].1;
                idx += 1;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::EntryBits;
    use crate::counter::AceCounter;
    use crate::structure::Structure;

    fn caps() -> StructureCapacities {
        StructureCapacities::from_entries(&EntryBits::table_iii(), 192, 92, 64, 64, 168, 168, 5, 3)
    }

    #[test]
    fn abc_between_partitions_total() {
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Rob, 120, 13, 177);
        ace.record_committed(Structure::Iq, 80, 50, 250);
        let p = OccupancyProfile::from_log(ace.interval_log());
        let total = p.abc_between(0, 300);
        assert_eq!(total, ace.total_abc());
        let split = p.abc_between(0, 100) + p.abc_between(100, 300);
        assert_eq!(split, total);
    }

    #[test]
    fn series_mean_matches_run_avf() {
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Rob, 120, 0, 1_000);
        let p = OccupancyProfile::from_log(ace.interval_log());
        let caps = caps();
        let series = PhaseSeries::from_profile(&p, &caps, 0, 1_000, 100);
        assert_eq!(series.values().len(), 10);
        let expect = 120.0 / caps.total_bits() as f64;
        assert!((series.mean() - expect).abs() < 1e-12);
        assert!((series.peak() - expect).abs() < 1e-12);
    }

    #[test]
    fn phases_are_visible() {
        // Busy first half, idle second half.
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Rob, 23_040, 0, 500);
        let p = OccupancyProfile::from_log(ace.interval_log());
        let series = PhaseSeries::from_profile(&p, &caps(), 0, 1_000, 100);
        assert!(series.values()[0] > 0.0);
        assert_eq!(series.values()[9], 0.0);
        assert!((series.fraction_above(0.0) - 0.5).abs() < 1e-12);
        let spark = series.sparkline(10);
        assert_eq!(spark.chars().count(), 10);
        assert!(spark.starts_with('█'));
        assert!(spark.ends_with('▁'));
    }

    #[test]
    fn partial_last_window_normalized() {
        let mut ace = AceCounter::with_logging();
        ace.record_committed(Structure::Rob, 120, 0, 150);
        let p = OccupancyProfile::from_log(ace.interval_log());
        let caps = caps();
        let series = PhaseSeries::from_profile(&p, &caps, 0, 150, 100);
        assert_eq!(series.values().len(), 2);
        // Both windows are fully occupied, so both report the same AVF.
        assert!((series.values()[0] - series.values()[1]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_panics() {
        let p = OccupancyProfile::from_log(&[]);
        let _ = PhaseSeries::from_profile(&p, &caps(), 0, 10, 0);
    }
}
