//! One Criterion benchmark per paper table/figure.
//!
//! Each benchmark executes the same experiment pipeline as the
//! corresponding `rar-experiments` subcommand, at a reduced instruction
//! budget so `cargo bench` completes quickly. The *numbers* the paper
//! reports are regenerated at full scale by the binary; these benches
//! pin down the harness's wall-clock cost and catch simulator
//! throughput regressions per experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use rar_sim::experiment::{self, ExperimentOptions, Suite};
use std::hint::black_box;
use std::time::Duration;

fn bench_opts() -> ExperimentOptions {
    ExperimentOptions {
        instructions: 1_500,
        warmup: 300,
        seed: 1,
        suite: Suite::Memory,
    }
}

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    g.bench_function("fig1_tradeoff", |b| {
        b.iter(|| black_box(experiment::fig1(&bench_opts())))
    });
    g.bench_function("fig3_abc_stacks", |b| {
        b.iter(|| black_box(experiment::fig3(&bench_opts())))
    });
    g.bench_function("fig4_scaling", |b| {
        b.iter(|| black_box(experiment::fig4(&bench_opts())))
    });
    g.bench_function("fig5_attribution", |b| {
        b.iter(|| black_box(experiment::fig5(&bench_opts())))
    });
    g.bench_function("fig7_fig8_reliability_performance", |b| {
        b.iter(|| black_box(experiment::fig7_fig8(&bench_opts())))
    });
    g.bench_function("fig9_variants", |b| {
        b.iter(|| black_box(experiment::fig9(&bench_opts())))
    });
    g.bench_function("fig10_sensitivity", |b| {
        b.iter(|| black_box(experiment::fig10(&bench_opts())))
    });
    g.bench_function("fig11_prefetch", |b| {
        b.iter(|| black_box(experiment::fig11(&bench_opts())))
    });
    g.bench_function("table4_matrix", |b| {
        b.iter(|| black_box(experiment::table4()))
    });
    g.bench_function("table_mpki_classification", |b| {
        b.iter(|| black_box(experiment::mpki_check(&bench_opts())))
    });
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
