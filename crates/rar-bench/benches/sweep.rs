//! Sweep-engine benchmarks: cold grids (artifact memoization only),
//! warm grids (on-disk cache replay), and the memoized single-cell path.
//! The warm/cold ratio here is the acceptance number behind
//! `BENCH_sweep.json` — warm replays must be far faster than simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use rar_bench::{run_sweep, sweep_grid};
use rar_sim::SweepSession;
use std::hint::black_box;
use std::time::Duration;

fn sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.measurement_time(Duration::from_secs(10));
    g.sample_size(10);

    let grid = sweep_grid(2_000);

    g.bench_function("cold_grid_memoized", |b| {
        b.iter(|| {
            let session = SweepSession::new();
            black_box(run_sweep(&session, &grid))
        });
    });

    g.bench_function("warm_grid_from_disk_cache", |b| {
        let dir = std::env::temp_dir().join(format!("rar-bench-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Populate once; every iteration then replays from disk.
        let _ = run_sweep(&SweepSession::with_disk_cache(&dir), &grid);
        b.iter(|| {
            let session = SweepSession::with_disk_cache(&dir);
            black_box(run_sweep(&session, &grid))
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.bench_function("single_cell_memoized", |b| {
        let session = SweepSession::new();
        let cfg = &grid[0];
        b.iter(|| black_box(session.run(cfg).expect("valid bench config")));
    });

    g.finish();
}

criterion_group!(benches, sweep);
criterion_main!(benches);
