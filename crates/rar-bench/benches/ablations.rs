//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Each bench runs the simulator with one design knob varied and reports
//! the resulting throughput; the printed summary lines (via
//! `--nocapture`-style criterion output) let the ablation's *effect* be
//! inspected with `cargo bench -- ablation --verbose`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rar_core::{CoreConfig, Technique};
use rar_isa::TraceWindow;
use rar_mem::{DramConfig, MemConfig, PrefetchPlacement, StridePrefetcherConfig};
use rar_sim::{SimConfig, Simulation};
use std::hint::black_box;
use std::time::Duration;

const BUDGET: u64 = 3_000;

fn run(cfg: &SimConfig) -> f64 {
    Simulation::run(cfg).ipc()
}

fn base_cfg(technique: Technique) -> SimConfig {
    SimConfig::builder()
        .workload("milc")
        .technique(technique)
        .warmup(600)
        .instructions(BUDGET)
        .build()
}

/// Ablation: RAR's countdown-timer threshold (the paper's 4-bit timer
/// fires at 15 cycles).
fn trigger_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_trigger_threshold");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for threshold in [3u64, 15, 63] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| {
                let mut cfg = base_cfg(Technique::Rar);
                cfg.core = CoreConfig {
                    runahead_timer: t,
                    ..CoreConfig::baseline()
                };
                b.iter(|| black_box(run(&cfg)));
            },
        );
    }
    g.finish();
}

/// Ablation: lean (PRE-style slice) versus full traditional runahead
/// execution, holding trigger and exit policy fixed.
fn lean_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lean_runahead");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    // RAR (lean) versus TR-EARLY (full execution): both early + flush.
    for (name, tech) in [("lean", Technique::Rar), ("full", Technique::TrEarly)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &tech, |b, &t| {
            let cfg = base_cfg(t);
            b.iter(|| black_box(run(&cfg)));
        });
    }
    g.finish();
}

/// Ablation: DRAM-model fidelity — banked row-buffer model versus a
/// controller-free device (controller latency zeroed).
fn dram_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dram_model");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for (name, controller) in [("with_controller", 20u64), ("device_only", 0)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &controller, |b, &ctl| {
            let mut cfg = base_cfg(Technique::Ooo);
            cfg.mem = MemConfig {
                dram: DramConfig {
                    controller: ctl,
                    ..DramConfig::ddr3_1600()
                },
                ..MemConfig::baseline()
            };
            b.iter(|| black_box(run(&cfg)));
        });
    }
    g.finish();
}

/// Ablation: the flush/refill penalty (front-end depth) that makes
/// RAR-LATE slightly slower than PRE.
fn flush_penalty(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flush_penalty");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for depth in [2u64, 8, 24] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let mut cfg = base_cfg(Technique::RarLate);
            cfg.core = CoreConfig {
                frontend_depth: d,
                ..CoreConfig::baseline()
            };
            b.iter(|| black_box(run(&cfg)));
        });
    }
    g.finish();
}

/// Ablation: stride-prefetcher degree at the LLC (Figure 11's knob).
fn prefetch_degree(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prefetch_degree");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for degree in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, &deg| {
            let mut cfg = base_cfg(Technique::Ooo);
            cfg.mem = MemConfig {
                prefetch: PrefetchPlacement::L3,
                prefetcher: StridePrefetcherConfig {
                    degree: deg,
                    ..StridePrefetcherConfig::aggressive()
                },
                ..MemConfig::baseline()
            };
            b.iter(|| black_box(run(&cfg)));
        });
    }
    g.finish();
}

/// Ablation: interval accounting versus an end-of-run occupancy
/// approximation — quantifies what precise squash-aware ACE accounting
/// costs in simulation time (the approximation is emulated by running
/// the same simulation and summing per-structure capacity-cycles).
fn ace_accounting(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ace_accounting");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    g.bench_function("interval_accounting", |b| {
        let cfg = base_cfg(Technique::Ooo);
        b.iter(|| black_box(Simulation::run(&cfg).reliability.total_abc()));
    });
    g.bench_function("capacity_upper_bound", |b| {
        let cfg = base_cfg(Technique::Ooo);
        b.iter(|| {
            let r = Simulation::run(&cfg);
            // Naive alternative: every structure fully vulnerable every
            // cycle (what a counter-free model would report).
            black_box(u128::from(cfg.core.capacities().total_bits()) * u128::from(r.stats.cycles))
        });
    });
    g.finish();
}

/// Ablation: wrong-path modelling — fetch bubbles (the calibrated
/// default) versus dispatching synthetic wrong-path micro-ops that
/// contend for the back-end and pollute caches before being squashed.
fn wrong_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_wrong_path");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for (name, wp) in [("bubbles", false), ("modelled", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &wp, |b, &wp| {
            let mut cfg = base_cfg(Technique::Ooo);
            cfg.workload = "mcf".into();
            cfg.core = CoreConfig {
                model_wrong_path: wp,
                ..CoreConfig::baseline()
            };
            b.iter(|| black_box(run(&cfg)));
        });
    }
    g.finish();
}

/// End-to-end simulator throughput per technique, the headline "is the
/// simulator fast enough" number (committed instructions per second can
/// be derived from the reported time per iteration and BUDGET).
fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for tech in [Technique::Ooo, Technique::Pre, Technique::Rar] {
        g.bench_with_input(BenchmarkId::from_parameter(tech), &tech, |b, &t| {
            let spec = rar_workloads::workload("milc").expect("milc exists");
            b.iter(|| {
                let mut core = rar_core::Core::new(
                    CoreConfig::baseline(),
                    MemConfig::baseline(),
                    t,
                    TraceWindow::new(spec.trace(1)),
                );
                core.run_until_committed(BUDGET);
                black_box(core.stats().cycles)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    trigger_threshold,
    lean_execution,
    dram_model,
    flush_penalty,
    prefetch_degree,
    ace_accounting,
    wrong_path,
    simulator_throughput
);
criterion_main!(benches);
