//! Microbenchmarks of the individual substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use rar_frontend::BranchPredictor;
use rar_isa::UopKind;
use rar_mem::{AccessKind, Cache, CacheConfig, Dram, DramConfig, MemConfig, MemoryHierarchy};
use rar_workloads::workload;
use std::hint::black_box;
use std::time::Duration;

fn cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    g.measurement_time(Duration::from_secs(5));

    g.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 4,
        });
        for i in 0..512u64 {
            cache.insert(i * 64, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.access(i * 64))
        });
    });

    g.bench_function("dram_access", |b| {
        let mut dram = Dram::new(DramConfig::ddr3_1600());
        let mut now = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            now = dram.access(addr, now);
            black_box(now)
        });
    });

    g.bench_function("hierarchy_streaming_load", |b| {
        let mut mem = MemoryHierarchy::new(MemConfig::baseline());
        let mut now = 0u64;
        let mut addr = 0x1000_0000u64;
        b.iter(|| {
            addr += 8;
            let out = mem.access(AccessKind::Load, addr, 0x400, now).unwrap();
            now = now.max(out.complete_at.saturating_sub(200)) + 1;
            black_box(out.complete_at)
        });
    });

    g.bench_function("tage_predict_update", |b| {
        let mut bp = BranchPredictor::tage_sc_l_8kb();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = 0x400 + (i % 64) * 4;
            let taken = !(i / 7).is_multiple_of(3);
            let _ = bp.predict(pc);
            black_box(bp.update(pc, taken, pc + 0x40))
        });
    });

    g.bench_function("trace_generation", |b| {
        let spec = workload("mcf").expect("mcf exists");
        let mut gen = spec.trace(1);
        b.iter(|| black_box(gen.next().map(|u| u.kind() == UopKind::Load)));
    });

    g.finish();
}

criterion_group!(benches, cache_access);
criterion_main!(benches);
