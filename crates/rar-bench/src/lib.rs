//! Benchmark support for the RAR workspace.
//!
//! The measured benchmarks live in `benches/`:
//!
//! - `figures` — one Criterion benchmark per paper table/figure, running
//!   the same experiment pipelines as the `rar-experiments` binary at a
//!   reduced instruction budget (the binary regenerates the full-scale
//!   numbers; the bench tracks the harness's runtime and guards against
//!   regressions in simulation throughput).
//! - `ablations` — design-choice ablations called out in DESIGN.md:
//!   countdown-timer threshold, lean versus full runahead execution,
//!   DRAM-model fidelity, front-end flush penalty, prefetcher degree.
//! - `components` — microbenchmarks of the substrates (cache, DRAM,
//!   TAGE, trace generation, end-to-end core cycles).
//! - `sweep` — the sweep engine itself: cold memoized grids, warm
//!   disk-cache replays, and the single-cell session path.
//!
//! This library crate only exposes small helpers shared by those
//! benches.

use rar_core::Technique;
use rar_sim::{SimConfig, SimResult, Simulation, SweepSession, SweepStats};

/// Runs one benchmark/technique pair at a small, bench-friendly budget.
#[must_use]
pub fn quick_run(workload: &str, technique: Technique, instructions: u64) -> SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .warmup(instructions / 4)
            .instructions(instructions)
            .build(),
    )
}

/// A small benchmarks × techniques grid at the given budget — the
/// standard workload for sweep-engine benchmarks (`benches/sweep.rs`)
/// and throughput smoke tests.
#[must_use]
pub fn sweep_grid(instructions: u64) -> Vec<SimConfig> {
    let mut grid = Vec::new();
    for w in ["mcf", "libquantum", "milc", "lbm"] {
        for t in [
            Technique::Ooo,
            Technique::Flush,
            Technique::Pre,
            Technique::Rar,
        ] {
            grid.push(
                SimConfig::builder()
                    .workload(w)
                    .technique(t)
                    .warmup(instructions / 4)
                    .instructions(instructions)
                    .build(),
            );
        }
    }
    grid
}

/// Runs `grid` through `session` and returns the session's counters —
/// the bench-friendly wrapper over [`SweepSession::run_all`].
///
/// # Panics
///
/// Panics if any cell fails: bench grids are known-good configurations.
#[must_use]
pub fn run_sweep(session: &SweepSession, grid: &[SimConfig]) -> SweepStats {
    let results = session.run_all(grid);
    assert!(
        results.iter().all(Option::is_some),
        "bench sweep cells must all succeed"
    );
    session.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_runs() {
        let r = quick_run("milc", Technique::Rar, 1_500);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn sweep_grid_runs_and_memoizes() {
        let session = SweepSession::new();
        let stats = run_sweep(&session, &sweep_grid(800));
        assert_eq!(stats.simulated, 16);
        // Four workloads, one seed: four generations, twelve reuses.
        assert_eq!(stats.trace_memo_misses, 4);
        assert_eq!(stats.trace_memo_hits, 12);
    }
}
