//! Benchmark support for the RAR workspace.
//!
//! The measured benchmarks live in `benches/`:
//!
//! - `figures` — one Criterion benchmark per paper table/figure, running
//!   the same experiment pipelines as the `rar-experiments` binary at a
//!   reduced instruction budget (the binary regenerates the full-scale
//!   numbers; the bench tracks the harness's runtime and guards against
//!   regressions in simulation throughput).
//! - `ablations` — design-choice ablations called out in DESIGN.md:
//!   countdown-timer threshold, lean versus full runahead execution,
//!   DRAM-model fidelity, front-end flush penalty, prefetcher degree.
//! - `components` — microbenchmarks of the substrates (cache, DRAM,
//!   TAGE, trace generation, end-to-end core cycles).
//!
//! This library crate only exposes small helpers shared by those
//! benches.

use rar_core::Technique;
use rar_sim::{SimConfig, SimResult, Simulation};

/// Runs one benchmark/technique pair at a small, bench-friendly budget.
#[must_use]
pub fn quick_run(workload: &str, technique: Technique, instructions: u64) -> SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .warmup(instructions / 4)
            .instructions(instructions)
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_runs() {
        let r = quick_run("milc", Technique::Rar, 1_500);
        assert!(r.ipc() > 0.0);
    }
}
