//! Konata / Kanata 0004 pipeline-viewer exporter.
//!
//! Kanata logs are line-oriented, tab-separated commands replayed against a
//! cycle cursor: `C=` sets the absolute start cycle, `C` advances it, `I`
//! declares an instruction, `L` labels it, `S`/`E` open and close a stage,
//! and `R` retires (`type 0`) or flushes (`type 1`) it. Stages used here:
//! `Ds` (dispatched, waiting in the window), `Ex` (issued, executing), `Cm`
//! (complete, waiting to commit).

use crate::event::TraceEvent;

struct Rec {
    seq: u64,
    pc: u64,
    dispatch: u64,
    issue: Option<u64>,
    complete: Option<u64>,
    /// Commit cycle for retired uops, squash cycle for squashed ones.
    end: u64,
    squashed: bool,
    runahead: bool,
}

/// Render the uop-lifecycle portion of an event stream as a Kanata 0004 log.
pub fn to_konata(events: &[TraceEvent]) -> String {
    // Runahead dispatch flags come from the per-stage stamps; consolidated
    // retire/squash records carry the rest of the lifecycle.
    let mut recs: Vec<Rec> = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::UopRetired {
                seq,
                pc,
                dispatch,
                issue,
                complete,
                commit,
            } => {
                recs.push(Rec {
                    seq: *seq,
                    pc: *pc,
                    dispatch: *dispatch,
                    issue: Some(*issue),
                    complete: Some(*complete),
                    end: *commit,
                    squashed: false,
                    runahead: false,
                });
            }
            TraceEvent::UopSquashed {
                seq,
                pc,
                dispatch,
                cycle,
            } => {
                recs.push(Rec {
                    seq: *seq,
                    pc: *pc,
                    dispatch: *dispatch,
                    issue: None,
                    complete: None,
                    end: *cycle,
                    squashed: true,
                    runahead: false,
                });
            }
            _ => {}
        }
    }
    for ev in events {
        if let TraceEvent::UopDispatched {
            seq,
            runahead: true,
            ..
        } = ev
        {
            for rec in recs.iter_mut().filter(|r| r.seq == *seq) {
                rec.runahead = true;
            }
        }
    }
    recs.sort_by_key(|r| (r.dispatch, r.seq));

    // (cycle, insertion order, command) — sorted so the log replays forward.
    let mut cmds: Vec<(u64, usize, String)> = Vec::new();
    let mut ord = 0usize;
    let mut push = |cmds: &mut Vec<(u64, usize, String)>, cycle: u64, text: String| {
        cmds.push((cycle, ord, text));
        ord += 1;
    };

    for (id, rec) in recs.iter().enumerate() {
        let tag = if rec.runahead { " [runahead]" } else { "" };
        push(&mut cmds, rec.dispatch, format!("I\t{id}\t{}\t0", rec.seq));
        push(
            &mut cmds,
            rec.dispatch,
            format!("L\t{id}\t0\t{:#x} seq={}{tag}", rec.pc, rec.seq),
        );
        push(&mut cmds, rec.dispatch, format!("S\t{id}\t0\tDs"));
        let mut open = "Ds";
        if let Some(issue) = rec.issue {
            push(&mut cmds, issue, format!("E\t{id}\t0\tDs"));
            push(&mut cmds, issue, format!("S\t{id}\t0\tEx"));
            open = "Ex";
        }
        if let Some(complete) = rec.complete {
            push(&mut cmds, complete, format!("E\t{id}\t0\tEx"));
            push(&mut cmds, complete, format!("S\t{id}\t0\tCm"));
            open = "Cm";
        }
        push(&mut cmds, rec.end, format!("E\t{id}\t0\t{open}"));
    }

    // Retire ids are assigned in end-cycle order, as Konata expects a
    // monotone retirement sequence.
    let mut ends: Vec<(u64, usize)> = recs.iter().enumerate().map(|(id, r)| (r.end, id)).collect();
    ends.sort_by_key(|(end, id)| (*end, *id));
    for (retire_id, (end, id)) in ends.iter().enumerate() {
        let kind = if recs[*id].squashed { 1 } else { 0 };
        push(&mut cmds, *end, format!("R\t{id}\t{retire_id}\t{kind}"));
    }

    cmds.sort_by_key(|(cycle, ord, _)| (*cycle, *ord));

    let mut out = String::with_capacity(cmds.len() * 16 + 32);
    out.push_str("Kanata\t0004\n");
    let mut cursor = cmds.first().map_or(0, |(c, _, _)| *c);
    out.push_str(&format!("C=\t{cursor}\n"));
    for (cycle, _, text) in &cmds {
        if *cycle > cursor {
            out.push_str(&format!("C\t{}\n", cycle - cursor));
            cursor = *cycle;
        }
        out.push_str(text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retired(seq: u64, dispatch: u64) -> TraceEvent {
        TraceEvent::UopRetired {
            seq,
            pc: 0x400 + seq * 4,
            dispatch,
            issue: dispatch + 1,
            complete: dispatch + 3,
            commit: dispatch + 5,
        }
    }

    #[test]
    fn header_and_cursor() {
        let log = to_konata(&[retired(0, 10)]);
        let mut lines = log.lines();
        assert_eq!(lines.next(), Some("Kanata\t0004"));
        assert_eq!(lines.next(), Some("C=\t10"));
    }

    #[test]
    fn retired_uop_walks_all_stages_and_retires() {
        let log = to_konata(&[retired(3, 10)]);
        for needle in [
            "I\t0\t3\t0",
            "S\t0\t0\tDs",
            "S\t0\t0\tEx",
            "S\t0\t0\tCm",
            "R\t0\t0\t0",
        ] {
            assert!(log.contains(needle), "missing {needle:?} in:\n{log}");
        }
    }

    #[test]
    fn squashed_uop_is_flushed() {
        let ev = TraceEvent::UopSquashed {
            seq: 9,
            pc: 0x80,
            dispatch: 4,
            cycle: 6,
        };
        let log = to_konata(&[ev]);
        assert!(
            log.contains("R\t0\t0\t1"),
            "flush record missing in:\n{log}"
        );
        assert!(log.contains("E\t0\t0\tDs"));
    }

    #[test]
    fn cycle_deltas_are_relative() {
        let log = to_konata(&[retired(0, 10), retired(1, 12)]);
        assert!(
            log.contains("\nC\t1\n") || log.contains("\nC\t2\n"),
            "log:\n{log}"
        );
        // Cursor never moves backwards: deltas are strictly positive.
        for line in log.lines().filter(|l| l.starts_with("C\t")) {
            let delta: u64 = line[2..].parse().expect("numeric delta");
            assert!(delta > 0);
        }
    }
}
