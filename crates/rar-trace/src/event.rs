//! The typed event vocabulary shared by the core, the memory hierarchy and
//! the exporters.
//!
//! Every timestamp is a simulated cycle (`u64`). Events are self-contained:
//! exporters never need simulator state, only the event stream.

/// Why the core entered runahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunaheadTrigger {
    /// The ROB-head-blocked timer fired before the ROB filled (early
    /// triggers, RAR/RAR-LATE style).
    Timer,
    /// The ROB filled up behind a blocking load (classic full-window
    /// trigger).
    FullRob,
}

impl RunaheadTrigger {
    pub fn label(self) -> &'static str {
        match self {
            RunaheadTrigger::Timer => "timer",
            RunaheadTrigger::FullRob => "full-rob",
        }
    }
}

/// Kind of stall window attributed by the ACE accounting, mirrored here so
/// the trace crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedKind {
    /// A long-latency load is blocking the ROB head.
    RobHeadBlocked,
    /// The ROB is completely full behind the blocking head.
    FullRob,
}

impl BlockedKind {
    pub fn label(self) -> &'static str {
        match self {
            BlockedKind::RobHeadBlocked => "rob-head-blocked",
            BlockedKind::FullRob => "full-rob",
        }
    }
}

/// Which level of the hierarchy ultimately served a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    L2,
    L3,
    Memory,
}

impl ServedBy {
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::L2 => "L2",
            ServedBy::L3 => "L3",
            ServedBy::Memory => "DRAM",
        }
    }
}

/// One interval-sampler snapshot: structure occupancies and ACE-bit-cycle
/// counters at a fixed cycle cadence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRow {
    pub cycle: u64,
    pub rob: usize,
    pub iq: usize,
    pub lq: usize,
    pub sq: usize,
    /// Whether the core was in runahead mode when the sample was taken.
    pub in_runahead: bool,
    /// Instructions committed so far in the measurement window.
    pub committed: u64,
    /// Outstanding MSHR entries (in-flight misses).
    pub outstanding_misses: usize,
    /// ACE bit-cycles per tracked structure, in the order reported by the
    /// ACE counter (`AceCounter::abc_by_structure`).
    pub abc_by_structure: Vec<u128>,
}

impl SampleRow {
    /// Total ACE bit-cycles across all structures.
    pub fn total_abc(&self) -> u128 {
        self.abc_by_structure.iter().sum()
    }
}

/// A single trace record. Events arrive roughly in cycle order; exporters
/// sort where the output format requires it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A uop entered the backend (rename + dispatch into the ROB).
    UopDispatched {
        seq: u64,
        pc: u64,
        cycle: u64,
        /// Dispatched while the core was in runahead (speculative pre-exec).
        runahead: bool,
    },
    /// A uop was selected for execution.
    UopIssued {
        seq: u64,
        cycle: u64,
        complete_at: u64,
    },
    /// A uop retired; carries its full lifecycle so the record is
    /// self-contained even when earlier stamps were dropped by the ring.
    UopRetired {
        seq: u64,
        pc: u64,
        dispatch: u64,
        issue: u64,
        complete: u64,
        commit: u64,
    },
    /// A uop was squashed (wrong-path resolution or runahead flush).
    UopSquashed {
        seq: u64,
        pc: u64,
        dispatch: u64,
        cycle: u64,
    },
    /// The core entered runahead mode.
    RunaheadEnter {
        cycle: u64,
        /// Sequence number of the blocking load at the ROB head.
        blocking_seq: u64,
        trigger: RunaheadTrigger,
        /// Cycle at which the blocking miss is due back.
        expected_exit: u64,
    },
    /// The core left runahead mode.
    RunaheadExit {
        cycle: u64,
        entered_at: u64,
        /// Whether the pipeline was flushed on exit (TR/RAR) as opposed to
        /// retained (PRE-style).
        flushed: bool,
    },
    /// A closed ROB-head-blocked / full-ROB attribution window.
    StallWindow {
        kind: BlockedKind,
        start: u64,
        end: u64,
    },
    /// A demand access missed the L1 and was served further out.
    CacheMiss {
        cycle: u64,
        pc: u64,
        line: u64,
        served_by: ServedBy,
        complete_at: u64,
    },
    /// An MSHR entry was allocated for a primary miss.
    MshrAlloc {
        cycle: u64,
        line: u64,
        complete_at: u64,
        /// Entries in flight immediately after the allocation.
        outstanding: usize,
    },
    /// A miss could not allocate an MSHR entry (structural stall).
    MshrStall { cycle: u64, line: u64 },
    /// A DRAM transaction: issue, completion, and row-buffer outcome.
    DramAccess {
        issued_at: u64,
        line: u64,
        complete_at: u64,
        row_hit: bool,
        bank: usize,
        /// Demand miss (true) or prefetch fill (false).
        demand: bool,
    },
    /// Interval-sampler snapshot.
    Sample(SampleRow),
}

impl TraceEvent {
    /// Short kind tag used by the CSV exporter and debugging output.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::UopDispatched { .. } => "dispatch",
            TraceEvent::UopIssued { .. } => "issue",
            TraceEvent::UopRetired { .. } => "retire",
            TraceEvent::UopSquashed { .. } => "squash",
            TraceEvent::RunaheadEnter { .. } => "ra-enter",
            TraceEvent::RunaheadExit { .. } => "ra-exit",
            TraceEvent::StallWindow { .. } => "stall-window",
            TraceEvent::CacheMiss { .. } => "cache-miss",
            TraceEvent::MshrAlloc { .. } => "mshr-alloc",
            TraceEvent::MshrStall { .. } => "mshr-stall",
            TraceEvent::DramAccess { .. } => "dram",
            TraceEvent::Sample(_) => "sample",
        }
    }

    /// The primary timestamp of the event (start of interval for windows).
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::UopDispatched { cycle, .. }
            | TraceEvent::UopIssued { cycle, .. }
            | TraceEvent::UopSquashed { cycle, .. }
            | TraceEvent::RunaheadEnter { cycle, .. }
            | TraceEvent::RunaheadExit { cycle, .. }
            | TraceEvent::CacheMiss { cycle, .. }
            | TraceEvent::MshrAlloc { cycle, .. }
            | TraceEvent::MshrStall { cycle, .. } => *cycle,
            TraceEvent::UopRetired { dispatch, .. } => *dispatch,
            TraceEvent::StallWindow { start, .. } => *start,
            TraceEvent::DramAccess { issued_at, .. } => *issued_at,
            TraceEvent::Sample(row) => row.cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_total_abc_sums_structures() {
        let row = SampleRow {
            cycle: 10,
            rob: 1,
            iq: 2,
            lq: 3,
            sq: 4,
            in_runahead: false,
            committed: 5,
            outstanding_misses: 0,
            abc_by_structure: vec![10, 20, 12],
        };
        assert_eq!(row.total_abc(), 42);
    }

    #[test]
    fn cycle_accessor_matches_primary_timestamp() {
        let ev = TraceEvent::StallWindow {
            kind: BlockedKind::FullRob,
            start: 7,
            end: 9,
        };
        assert_eq!(ev.cycle(), 7);
        let ev = TraceEvent::UopRetired {
            seq: 1,
            pc: 0,
            dispatch: 3,
            issue: 4,
            complete: 5,
            commit: 6,
        };
        assert_eq!(ev.cycle(), 3);
        assert_eq!(ev.kind(), "retire");
    }
}
