//! Chrome Trace Event JSON exporter.
//!
//! Produces the `{"traceEvents":[...]}` object format understood by
//! `chrome://tracing` and Perfetto. Timestamps are simulated cycles written
//! into the `ts`/`dur` microsecond fields, so one "microsecond" on screen is
//! one core cycle. The JSON is hand-rolled like the rest of the workspace
//! (`rar-sim/src/json.rs`); all strings are simulator-generated identifiers,
//! so no escaping is required.

use crate::event::TraceEvent;

/// Virtual thread ids used to lay the slices out in lanes.
const TID_UOPS: u32 = 0;
const TID_RUNAHEAD: u32 = 1;
const TID_STALLS: u32 = 2;
const TID_DRAM: u32 = 3;
const TID_CACHE: u32 = 4;
const TID_COUNTERS: u32 = 5;

/// Render an event stream as a complete Chrome Trace Event JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    // (sort key, rendered record) — stable sort keeps emission order within
    // a cycle so output is deterministic.
    let mut records: Vec<(u64, String)> = Vec::new();
    // Pair RunaheadExit with the matching Enter so the slice carries the
    // trigger reason in its args.
    let mut pending_enter: Option<(u64, &'static str, u64)> = None;

    for ev in events {
        match ev {
            TraceEvent::UopRetired {
                seq,
                pc,
                dispatch,
                issue,
                complete,
                commit,
            } => {
                let dur = commit.saturating_sub(*dispatch).max(1);
                records.push((
                    *dispatch,
                    format!(
                        "{{\"name\":\"{pc:#x}\",\"cat\":\"uop\",\"ph\":\"X\",\"ts\":{dispatch},\"dur\":{dur},\"pid\":0,\"tid\":{TID_UOPS},\"args\":{{\"seq\":{seq},\"issue\":{issue},\"complete\":{complete},\"squashed\":false}}}}"
                    ),
                ));
            }
            TraceEvent::UopSquashed {
                seq,
                pc,
                dispatch,
                cycle,
            } => {
                let dur = cycle.saturating_sub(*dispatch).max(1);
                records.push((
                    *dispatch,
                    format!(
                        "{{\"name\":\"{pc:#x}\",\"cat\":\"uop\",\"ph\":\"X\",\"ts\":{dispatch},\"dur\":{dur},\"pid\":0,\"tid\":{TID_UOPS},\"args\":{{\"seq\":{seq},\"squashed\":true}}}}"
                    ),
                ));
            }
            TraceEvent::RunaheadEnter {
                cycle,
                blocking_seq,
                trigger,
                ..
            } => {
                pending_enter = Some((*cycle, trigger.label(), *blocking_seq));
            }
            TraceEvent::RunaheadExit {
                cycle,
                entered_at,
                flushed,
            } => {
                let (start, trigger, blocking_seq) =
                    pending_enter.take().unwrap_or((*entered_at, "unknown", 0));
                let dur = cycle.saturating_sub(start).max(1);
                records.push((
                    start,
                    format!(
                        "{{\"name\":\"runahead\",\"cat\":\"mode\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\"pid\":0,\"tid\":{TID_RUNAHEAD},\"args\":{{\"trigger\":\"{trigger}\",\"blocking_seq\":{blocking_seq},\"flushed\":{flushed}}}}}"
                    ),
                ));
            }
            TraceEvent::StallWindow { kind, start, end } => {
                let dur = end.saturating_sub(*start).max(1);
                records.push((
                    *start,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\"pid\":0,\"tid\":{TID_STALLS},\"args\":{{}}}}",
                        kind.label()
                    ),
                ));
            }
            TraceEvent::DramAccess {
                issued_at,
                line,
                complete_at,
                row_hit,
                bank,
                demand,
            } => {
                let dur = complete_at.saturating_sub(*issued_at).max(1);
                records.push((
                    *issued_at,
                    format!(
                        "{{\"name\":\"dram\",\"cat\":\"mem\",\"ph\":\"X\",\"ts\":{issued_at},\"dur\":{dur},\"pid\":0,\"tid\":{TID_DRAM},\"args\":{{\"line\":{line},\"row_hit\":{row_hit},\"bank\":{bank},\"demand\":{demand}}}}}"
                    ),
                ));
            }
            TraceEvent::CacheMiss {
                cycle,
                pc,
                line,
                served_by,
                complete_at,
            } => {
                records.push((
                    *cycle,
                    format!(
                        "{{\"name\":\"miss {}\",\"cat\":\"mem\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{cycle},\"pid\":0,\"tid\":{TID_CACHE},\"args\":{{\"pc\":{pc},\"line\":{line},\"complete_at\":{complete_at}}}}}",
                        served_by.label()
                    ),
                ));
            }
            TraceEvent::MshrStall { cycle, line } => {
                records.push((
                    *cycle,
                    format!(
                        "{{\"name\":\"mshr stall\",\"cat\":\"mem\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{cycle},\"pid\":0,\"tid\":{TID_CACHE},\"args\":{{\"line\":{line}}}}}"
                    ),
                ));
            }
            TraceEvent::MshrAlloc {
                cycle, outstanding, ..
            } => {
                records.push((
                    *cycle,
                    format!(
                        "{{\"name\":\"mshr\",\"ph\":\"C\",\"ts\":{cycle},\"pid\":0,\"tid\":{TID_COUNTERS},\"args\":{{\"outstanding\":{outstanding}}}}}"
                    ),
                ));
            }
            TraceEvent::Sample(row) => {
                records.push((
                    row.cycle,
                    format!(
                        "{{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{TID_COUNTERS},\"args\":{{\"rob\":{},\"iq\":{},\"lq\":{},\"sq\":{}}}}}",
                        row.cycle, row.rob, row.iq, row.lq, row.sq
                    ),
                ));
                records.push((
                    row.cycle,
                    format!(
                        "{{\"name\":\"abc\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{TID_COUNTERS},\"args\":{{\"total\":{}}}}}",
                        row.cycle,
                        row.total_abc()
                    ),
                ));
            }
            // Per-stage stamps are subsumed by the consolidated retire /
            // squash records above.
            TraceEvent::UopDispatched { .. } | TraceEvent::UopIssued { .. } => {}
        }
    }

    records.sort_by_key(|(ts, _)| *ts);

    let mut out = String::with_capacity(records.len() * 96 + 1024);
    out.push_str("{\"traceEvents\":[");
    for (name, tid) in [
        ("uops", TID_UOPS),
        ("runahead", TID_RUNAHEAD),
        ("stall-windows", TID_STALLS),
        ("dram", TID_DRAM),
        ("cache", TID_CACHE),
        ("counters", TID_COUNTERS),
    ] {
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}},"
        ));
    }
    let mut first = true;
    for (_, record) in &records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(record);
    }
    // A trailing comma after the metadata block is only legal if at least
    // one record followed; drop it otherwise.
    if first {
        out.pop();
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// One causal span, flattened for export. `rar-trace` is dependency-free
/// by design, so the span log (which lives in `rar-telemetry`) is handed
/// over as plain data: callers convert their span type into this struct.
#[derive(Debug, Clone)]
pub struct SpanSlice {
    /// Positional span id (non-zero).
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Registered span name (identifier-safe; no escaping needed).
    pub name: String,
    /// Start time in nanoseconds on the span log's monotonic clock.
    pub start_nanos: u64,
    /// Duration in nanoseconds (open spans are clamped by the caller).
    pub dur_nanos: u64,
}

/// Virtual thread id for causal span lanes.
const TID_SPANS: u32 = 0;

/// Render causal spans as a complete Chrome Trace Event JSON document.
///
/// Spans become `"ph":"X"` complete events on one lane; viewers nest them
/// by `ts`/`dur` containment, so a well-formed span tree (children within
/// their parent's interval) renders as the request → job → cell → phase
/// flame graph. `ts`/`dur` are microseconds with fractional nanoseconds.
/// Each event's `args` carries the span and parent ids so the causal
/// edges survive even when intervals tie.
pub fn spans_to_chrome_json(spans: &[SpanSlice]) -> String {
    let mut ordered: Vec<&SpanSlice> = spans.iter().collect();
    // Parents start no later than their children; break ties by id (ids
    // are allocated in start order) so nesting survives equal timestamps.
    ordered.sort_by_key(|s| (s.start_nanos, s.id));

    let mut out = String::with_capacity(ordered.len() * 112 + 256);
    out.push_str("{\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{TID_SPANS},\"args\":{{\"name\":\"spans\"}}}}"
    ));
    for s in &ordered {
        out.push_str(&format!(
            ",{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{TID_SPANS},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            s.name,
            micros(s.start_nanos),
            micros(s.dur_nanos.max(1)),
            s.id,
            s.parent
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Nanoseconds rendered as a microsecond decimal with full precision.
fn micros(nanos: u64) -> String {
    let whole = nanos / 1_000;
    let frac = nanos % 1_000;
    if frac == 0 {
        whole.to_string()
    } else {
        // Trailing zeros trimmed so output stays byte-stable and minimal.
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BlockedKind, RunaheadTrigger};
    use crate::jsonv;

    #[test]
    fn empty_stream_is_valid_json() {
        let doc = to_chrome_json(&[]);
        jsonv::validate(&doc).expect("valid json");
    }

    #[test]
    fn runahead_pairing_carries_trigger() {
        let events = vec![
            TraceEvent::RunaheadEnter {
                cycle: 100,
                blocking_seq: 7,
                trigger: RunaheadTrigger::Timer,
                expected_exit: 300,
            },
            TraceEvent::RunaheadExit {
                cycle: 290,
                entered_at: 100,
                flushed: true,
            },
            TraceEvent::StallWindow {
                kind: BlockedKind::RobHeadBlocked,
                start: 90,
                end: 290,
            },
        ];
        let doc = to_chrome_json(&events);
        jsonv::validate(&doc).expect("valid json");
        assert!(doc.contains("\"trigger\":\"timer\""));
        assert!(doc.contains("\"dur\":190"));
        assert!(doc.contains("rob-head-blocked"));
    }

    #[test]
    fn span_export_nests_by_containment_and_validates() {
        let spans = [
            SpanSlice {
                id: 1,
                parent: 0,
                name: "request".to_owned(),
                start_nanos: 0,
                dur_nanos: 10_000,
            },
            SpanSlice {
                id: 2,
                parent: 1,
                name: "job".to_owned(),
                start_nanos: 1_500,
                dur_nanos: 8_000,
            },
            SpanSlice {
                id: 3,
                parent: 2,
                name: "cell".to_owned(),
                start_nanos: 2_000,
                dur_nanos: 4_321,
            },
        ];
        let doc = spans_to_chrome_json(&spans);
        jsonv::validate(&doc).expect("valid json");
        // All three spans present, with causal ids in args.
        assert!(doc.contains("\"name\":\"request\""));
        assert!(doc.contains("\"id\":2,\"parent\":1"));
        assert!(doc.contains("\"id\":3,\"parent\":2"));
        // Nanosecond fractions render as microsecond decimals.
        assert!(doc.contains("\"ts\":1.5,"));
        assert!(doc.contains("\"dur\":4.321,"));
        // Parents are emitted before children so viewers nest correctly.
        let req = doc.find("\"name\":\"request\"").expect("request span");
        let job = doc.find("\"name\":\"job\"").expect("job span");
        assert!(req < job);
    }

    #[test]
    fn empty_span_set_is_valid_json() {
        let doc = spans_to_chrome_json(&[]);
        jsonv::validate(&doc).expect("valid json");
        assert!(doc.contains("thread_name"));
    }

    #[test]
    fn zero_length_windows_get_unit_duration() {
        let events = vec![TraceEvent::StallWindow {
            kind: BlockedKind::FullRob,
            start: 5,
            end: 5,
        }];
        let doc = to_chrome_json(&events);
        assert!(doc.contains("\"dur\":1"));
    }
}
