//! Sinks consume [`TraceEvent`]s emitted by the instrumented pipeline.
//!
//! The core is generic over the sink type, and every emission site is
//! guarded by `if T::ENABLED`. For [`NullSink`] that constant is `false`, so
//! the guard — and the event construction inside it — compiles to nothing.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// Destination for trace events.
pub trait TraceSink {
    /// Whether this sink observes events at all. Emission sites check this
    /// constant so disabled tracing costs nothing at runtime.
    const ENABLED: bool = true;

    fn emit(&mut self, event: TraceEvent);

    /// Discards everything recorded so far. The simulation driver calls
    /// this at the warm-up/measurement boundary so captured traces line
    /// up with the measured statistics; stateless sinks keep the default
    /// no-op.
    fn scrub(&mut self) {}
}

/// The zero-overhead default sink: drops everything, `ENABLED == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: TraceEvent) {}
}

/// A bounded ring buffer of events. When full, the oldest events are dropped
/// (and counted), so a long run keeps the most recent window of activity.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events. Zero means "effectively
    /// unbounded" and is normalized to `usize::MAX`.
    pub fn new(capacity: usize) -> Self {
        let capacity = if capacity == 0 { usize::MAX } else { capacity };
        RingSink {
            buf: VecDeque::new(),
            capacity,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Total events ever emitted into this sink, including dropped ones.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Copy the retained events out, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Discard retained events and counters (used to scrub warmup activity).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.emitted = 0;
        self.dropped = 0;
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        self.emitted += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn scrub(&mut self) {
        self.clear();
    }
}

/// Forward events through a mutable reference, so a borrowed sink can be
/// handed to a helper without giving up ownership.
impl<T: TraceSink> TraceSink for &mut T {
    const ENABLED: bool = T::ENABLED;

    fn emit(&mut self, event: TraceEvent) {
        (**self).emit(event);
    }

    fn scrub(&mut self) {
        (**self).scrub();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::MshrStall { cycle, line: cycle }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        NullSink.emit(ev(1));
    }

    #[test]
    fn ring_keeps_most_recent_on_overflow() {
        let mut ring = RingSink::new(3);
        for c in 0..5 {
            ring.emit(ev(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.emitted(), 5);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<u64> = ring
            .iter()
            .map(super::super::event::TraceEvent::cycle)
            .collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let mut ring = RingSink::new(0);
        for c in 0..10_000 {
            ring.emit(ev(c));
        }
        assert_eq!(ring.len(), 10_000);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn clear_resets_counters() {
        let mut ring = RingSink::new(2);
        for c in 0..4 {
            ring.emit(ev(c));
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.emitted(), 0);
        assert_eq!(ring.dropped(), 0);
    }
}
