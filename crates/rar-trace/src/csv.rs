//! Flat CSV tables derived from an event stream, for ad-hoc plotting.
//!
//! Three views cover the common analyses: per-uop lifecycles (latency
//! breakdowns), windows (Figure-5-style head-blocked / runahead timelines)
//! and interval samples (occupancy and ACE over time).

use crate::event::TraceEvent;

/// One row per retired or squashed uop:
/// `seq,pc,dispatch,issue,complete,commit,squashed`.
/// Squashed uops leave issue/complete/commit empty and report the squash
/// cycle in a trailing `squash_cycle` column.
pub fn uops_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("seq,pc,dispatch,issue,complete,commit,squashed,squash_cycle\n");
    for ev in events {
        match ev {
            TraceEvent::UopRetired {
                seq,
                pc,
                dispatch,
                issue,
                complete,
                commit,
            } => {
                out.push_str(&format!(
                    "{seq},{pc:#x},{dispatch},{issue},{complete},{commit},false,\n"
                ));
            }
            TraceEvent::UopSquashed {
                seq,
                pc,
                dispatch,
                cycle,
            } => {
                out.push_str(&format!("{seq},{pc:#x},{dispatch},,,,true,{cycle}\n"));
            }
            _ => {}
        }
    }
    out
}

/// One row per closed interval: `kind,start,end,duration,detail`.
/// Covers stall-attribution windows, runahead intervals and DRAM
/// transactions — everything needed to regenerate a head-blocked timeline.
pub fn windows_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("kind,start,end,duration,detail\n");
    let mut pending_trigger = "unknown";
    for ev in events {
        match ev {
            TraceEvent::StallWindow { kind, start, end } => {
                out.push_str(&format!(
                    "{},{start},{end},{},\n",
                    kind.label(),
                    end.saturating_sub(*start)
                ));
            }
            TraceEvent::RunaheadEnter { trigger, .. } => {
                pending_trigger = trigger.label();
            }
            TraceEvent::RunaheadExit {
                cycle, entered_at, ..
            } => {
                out.push_str(&format!(
                    "runahead,{entered_at},{cycle},{},{pending_trigger}\n",
                    cycle.saturating_sub(*entered_at)
                ));
                pending_trigger = "unknown";
            }
            TraceEvent::DramAccess {
                issued_at,
                complete_at,
                row_hit,
                ..
            } => {
                out.push_str(&format!(
                    "dram,{issued_at},{complete_at},{},{}\n",
                    complete_at.saturating_sub(*issued_at),
                    if *row_hit { "row-hit" } else { "row-miss" }
                ));
            }
            _ => {}
        }
    }
    out
}

/// One row per interval-sampler snapshot. `structure_names` labels the
/// per-structure ABC columns and must match the sampler's ordering.
pub fn samples_to_csv(events: &[TraceEvent], structure_names: &[&str]) -> String {
    let mut out =
        String::from("cycle,rob,iq,lq,sq,in_runahead,committed,outstanding_misses,total_abc");
    for name in structure_names {
        out.push_str(&format!(",abc_{name}"));
    }
    out.push('\n');
    for ev in events {
        if let TraceEvent::Sample(row) = ev {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}",
                row.cycle,
                row.rob,
                row.iq,
                row.lq,
                row.sq,
                row.in_runahead,
                row.committed,
                row.outstanding_misses,
                row.total_abc()
            ));
            for i in 0..structure_names.len() {
                let abc = row.abc_by_structure.get(i).copied().unwrap_or(0);
                out.push_str(&format!(",{abc}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RunaheadTrigger, SampleRow};

    #[test]
    fn uop_rows_have_constant_column_count() {
        let events = vec![
            TraceEvent::UopRetired {
                seq: 1,
                pc: 0x40,
                dispatch: 2,
                issue: 3,
                complete: 5,
                commit: 8,
            },
            TraceEvent::UopSquashed {
                seq: 2,
                pc: 0x44,
                dispatch: 3,
                cycle: 9,
            },
        ];
        let csv = uops_to_csv(&events);
        let cols: Vec<usize> = csv.lines().map(|l| l.split(',').count()).collect();
        assert!(cols.iter().all(|&c| c == cols[0]), "ragged csv:\n{csv}");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn windows_include_runahead_with_trigger() {
        let events = vec![
            TraceEvent::RunaheadEnter {
                cycle: 10,
                blocking_seq: 1,
                trigger: RunaheadTrigger::FullRob,
                expected_exit: 60,
            },
            TraceEvent::RunaheadExit {
                cycle: 55,
                entered_at: 10,
                flushed: true,
            },
        ];
        let csv = windows_to_csv(&events);
        assert!(csv.contains("runahead,10,55,45,full-rob"), "csv:\n{csv}");
    }

    #[test]
    fn sample_rows_line_up_with_structure_names() {
        let row = SampleRow {
            cycle: 100,
            rob: 10,
            iq: 4,
            lq: 2,
            sq: 1,
            in_runahead: true,
            committed: 50,
            outstanding_misses: 3,
            abc_by_structure: vec![7, 8],
        };
        let csv = samples_to_csv(&[TraceEvent::Sample(row)], &["rob", "iq"]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cycle,rob,iq,lq,sq,in_runahead,committed,outstanding_misses,total_abc,abc_rob,abc_iq"
        );
        assert_eq!(lines.next().unwrap(), "100,10,4,2,1,true,50,3,15,7,8");
    }
}
