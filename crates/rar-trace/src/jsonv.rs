//! A minimal recursive-descent JSON validator.
//!
//! The workspace deliberately carries no external dependencies, so the
//! Chrome-trace tests can't pull in serde to check their output parses.
//! This validator accepts exactly RFC 8259 JSON and reports the byte offset
//! of the first error. It validates structure only — no value tree is built.

/// Validate that `input` is a single well-formed JSON document.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(b) => Err(format!("unexpected byte {b:#x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => {
                return Err(format!(
                    "raw control char in string at byte {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {pos}", pos = *pos)),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("bad fraction at byte {pos}", pos = *pos));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("bad exponent at byte {pos}", pos = *pos));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" string\\u00e9\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"k\": null}]]",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"dur\":1}]}",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("rejected {doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "truefalse",
            "[1] []",
        ] {
            assert!(validate(doc).is_err(), "accepted {doc:?}");
        }
    }
}
