//! Cycle-level pipeline tracing and interval sampling for the RAR simulator.
//!
//! The simulator core is generic over a [`TraceSink`]. The default
//! [`NullSink`] has `ENABLED == false`, so every emission site — written as
//! `if T::ENABLED { sink.emit(..) }` — monomorphizes to nothing and the hot
//! loop stays allocation-free. Opting in is a matter of constructing the core
//! with a [`RingSink`] (a bounded ring buffer that drops the oldest events
//! once full) and post-processing the captured [`TraceEvent`] stream with one
//! of the exporters:
//!
//! * [`chrome`] — Chrome Trace Event JSON (`chrome://tracing`, Perfetto)
//! * [`konata`] — Konata / Kanata 0004 pipeline-viewer text log
//! * [`csv`] — flat tables (uop lifecycles, stall/runahead windows, samples)
//!
//! Events carry simulated cycles, never wall-clock time, so two runs with the
//! same seed produce byte-identical exports.

pub mod chrome;
pub mod csv;
pub mod event;
pub mod jsonv;
pub mod konata;
pub mod sink;

pub use event::{BlockedKind, RunaheadTrigger, SampleRow, ServedBy, TraceEvent};
pub use sink::{NullSink, RingSink, TraceSink};
