//! Regenerates the paper's tables and figures.
//!
//! ```text
//! rar-experiments <fig1|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|table4|mpki|protection|seeds|energy|extensions|structures|refinement|all>
//!                 [--instructions N] [--warmup N] [--seed N]
//!                 [--suite memory|compute|all] [--csv DIR] [--seeds N]
//!                 [--cache DIR] [--no-cache] [--bench-out PATH]
//!                 [--manifest-out PATH] [--profile] [--stalls]
//! rar-experiments trace --workload W --technique T
//!                 [--instructions N] [--warmup N] [--seed N]
//!                 [--out DIR] [--capacity N] [--sample N]
//! rar-experiments report [--dir DIR] [--out PATH] [--check]
//!                 [--bench PATH] [--baseline PATH]
//!                 [--min-hit-rate F] [--max-slowdown F]
//! rar-experiments inject [--workload W] [--samples N] [--inject-seed N]
//!                 [--instructions N] [--warmup N] [--seed N]
//!                 [--threads N] [--journal PATH] [--tally-out PATH]
//!                 [--flight-out PATH] [--max N] [--validate-bitlive]
//! rar-experiments serve [--addr A] [--data-dir DIR] [--workers N]
//!                 [--conn-threads N] [--no-cache] [--fsync-every N]
//! rar-experiments submit --server ADDR (--spec JSON | --spec-file PATH)
//!                 [--wait] [--timeout SECS] [--out PATH] [--result N]
//! rar-experiments status|cancel|events --server ADDR --id N
//! rar-experiments metrics|shutdown --server ADDR
//! ```
//!
//! Each figure subcommand prints the paper-shaped table to stdout; `--csv
//! DIR` additionally writes `<name>.csv` files into `DIR`. Finished runs
//! are memoized on disk under `--cache` (default `results/cache`; disable
//! with `--no-cache`), so rerunning a figure — or another figure sharing
//! cells with it — replays cached results bit-identically instead of
//! resimulating. Each invocation also writes a throughput/cache report to
//! `--bench-out` (default `BENCH_sweep.json`) and a run manifest to
//! `--manifest-out` (default `manifest.json`); `--profile` additionally
//! attributes host wall-clock time per phase (trace generation, core
//! simulation, liveness, cache probe/store, serialization) into the
//! manifest. Profiling never changes results — only the manifest grows.
//! `--stalls` turns on the guest-side cycle-loop stall profiler: every
//! simulated cycle is attributed to one stall-taxonomy bucket, the bench
//! report gains the `stall_*` keys and the manifest the quiescent-cycle
//! fraction. Results stay bit-identical, but stall-profiled sessions
//! bypass the disk cache so cached artifacts remain byte-stable.
//!
//! The `inject` subcommand runs a statistical fault-injection campaign
//! (baseline OoO and RAR back to back) and prints per-structure measured
//! vulnerability with 95% confidence intervals next to the ACE-estimated
//! AVF (unrefined and liveness-refined) from the same golden runs — the
//! cross-validation experiment. `--journal PATH` makes the campaign
//! crash-tolerant: progress is checkpointed per injection (one journal
//! per technique, suffixed `.ooo`/`.rar`) and an interrupted campaign
//! resumes exactly; `--max N` stops after N fresh injections (useful with
//! a journal to split a long campaign across invocations); `--tally-out`
//! writes the byte-stable integer tally JSON the CI smoke job diffs;
//! `--flight-out` records every DUE outcome (sample index, target, kind)
//! into a bounded flight ring and writes the `rar-flight-v1` post-mortem
//! dump there after the campaign.
//! `--validate-bitlive` switches to the bit-liveness soundness audit:
//! strikes restricted to the register files, every outcome stratified by
//! the static per-bit dead prediction, and a hard gate — the
//! predicted-dead stratum's measured vulnerability must be statistically
//! consistent with zero at 95% confidence or the command exits non-zero.
//! In this mode `--tally-out` writes the stratified
//! `rar-bitlive-validation-v1` JSON (the `bitlive_golden.json` CI diff).
//!
//! The `trace` subcommand runs one traced simulation and writes a Chrome
//! trace, a Konata log and CSV tables into `--out` (default
//! `results/traces`). The `report` subcommand renders the self-contained
//! HTML dashboard from the manifests and `BENCH_*.json` files under
//! `--dir`, and with `--check` exits non-zero when a manifest fails
//! schema validation, the gated bench misses the `--min-hit-rate` floor,
//! or throughput regressed more than `--max-slowdown` versus
//! `--baseline` — the CI perf gate.
//!
//! The `serve` subcommand runs the long-lived campaign daemon (see the
//! `rar-serve` crate): a persistent priority job queue, a shared worker
//! pool over one sweep session (so the result cache and single-flight
//! dedup span clients), and live telemetry endpoints. The remaining
//! subcommands are the thin client: `submit` posts a job spec (add
//! `--wait` to poll to completion and `--out` to save one raw result
//! document), `status`/`cancel`/`events` address a job by `--id`
//! (`events` tails the chunked progress stream to stdout), and
//! `metrics`/`shutdown` address the daemon itself.

use rar_serve::{CampaignServer, ServeClient, ServeOptions};
use rar_sim::dashboard::{check_bench, render_dashboard, DEFAULT_MAX_SLOWDOWN};
use rar_sim::experiment::{self, ExperimentOptions, Suite};
use rar_sim::sweep::SweepSession;
use rar_sim::{SimConfig, Simulation, Table, TraceSettings};
use rar_telemetry::{Phase, Profiler};
use rar_trace::TraceEvent;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rar-experiments <fig1|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|table4|mpki|protection|seeds|energy|extensions|structures|refinement|all> \
         [--instructions N] [--warmup N] [--seed N] [--suite memory|compute|all] [--csv DIR] [--seeds N] \
         [--cache DIR] [--no-cache] [--bench-out PATH] [--manifest-out PATH] [--profile] [--stalls]\n\
       rar-experiments trace --workload W --technique T [--instructions N] [--warmup N] [--seed N] \
         [--out DIR] [--capacity N] [--sample N]\n\
       rar-experiments report [--dir DIR] [--out PATH] [--check] [--bench PATH] [--baseline PATH] \
         [--min-hit-rate F] [--max-slowdown F]\n\
       rar-experiments inject [--workload W] [--samples N] [--inject-seed N] [--instructions N] \
         [--warmup N] [--seed N] [--threads N] [--journal PATH] [--tally-out PATH] [--max N] \
         [--flight-out PATH] [--validate-bitlive]\n\
       rar-experiments serve [--addr A] [--data-dir DIR] [--workers N] [--conn-threads N] \
                             [--max-queued N] [--request-timeout SECS] [--worker-restarts N] \
         [--no-cache] [--fsync-every N]\n\
       rar-experiments submit --server ADDR (--spec JSON | --spec-file PATH) [--wait] \
         [--timeout SECS] [--out PATH] [--result N]\n\
       rar-experiments status|cancel|events --server ADDR --id N [--timeout SECS]\n\
       rar-experiments metrics|shutdown --server ADDR [--drain]"
    );
    ExitCode::from(2)
}

/// A report file as `(file name, contents)`.
type NamedReport = (String, String);

/// Reads every `manifest*.json` / `BENCH_*.json` under `dir`, sorted by
/// name so the dashboard is deterministic.
fn collect_reports(dir: &str) -> (Vec<NamedReport>, Vec<NamedReport>) {
    let mut manifests = Vec::new();
    let mut benches = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("[rar-sim] cannot read {dir}: {e}");
            return (manifests, benches);
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_manifest = name.starts_with("manifest") && name.ends_with(".json");
        let is_bench = name.starts_with("BENCH_") && name.ends_with(".json");
        if !is_manifest && !is_bench {
            continue;
        }
        match std::fs::read_to_string(entry.path()) {
            Ok(text) if is_manifest => manifests.push((name, text)),
            Ok(text) => benches.push((name, text)),
            Err(e) => eprintln!("[rar-sim] skipping unreadable {name}: {e}"),
        }
    }
    manifests.sort();
    benches.sort();
    (manifests, benches)
}

/// The `report` subcommand: dashboard rendering plus the CI perf gate.
fn report_cmd(args: &[String]) -> ExitCode {
    let mut dir = ".".to_owned();
    let mut out = "dashboard.html".to_owned();
    let mut check = false;
    let mut bench_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut min_hit_rate: Option<f64> = None;
    let mut max_slowdown = DEFAULT_MAX_SLOWDOWN;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--check" {
            check = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag {
            "--dir" => dir = value.clone(),
            "--out" => out = value.clone(),
            "--bench" => bench_path = Some(value.clone()),
            "--baseline" => baseline_path = Some(value.clone()),
            "--min-hit-rate" => match value.parse() {
                Ok(f) => min_hit_rate = Some(f),
                Err(_) => return usage(),
            },
            "--max-slowdown" => match value.parse() {
                Ok(f) => max_slowdown = f,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    let (manifests, benches) = collect_reports(&dir);
    let html = render_dashboard(&manifests, &benches);
    if let Err(e) = std::fs::write(&out, html) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out} ({} manifests, {} bench reports)",
        manifests.len(),
        benches.len()
    );
    if !check {
        return ExitCode::SUCCESS;
    }

    // The gated bench: --bench, or the conventional BENCH_sweep.json.
    let default_bench = format!("{dir}/BENCH_sweep.json");
    let gated = bench_path.unwrap_or(default_bench);
    let bench_text = std::fs::read_to_string(&gated).ok();
    if bench_text.is_none() && (min_hit_rate.is_some() || baseline_path.is_some()) {
        eprintln!("[rar-sim] report check: cannot read gated bench {gated}");
        return ExitCode::FAILURE;
    }
    let baseline_text = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("[rar-sim] report check: cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let problems = check_bench(
        &manifests,
        bench_text.as_deref(),
        baseline_text.as_deref(),
        min_hit_rate,
        max_slowdown,
    );
    if problems.is_empty() {
        println!(
            "report check passed ({} manifests validated)",
            manifests.len()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("[rar-sim] report check: {p}");
        }
        ExitCode::FAILURE
    }
}

/// The `inject` subcommand: statistical fault-injection campaigns that
/// cross-validate the ACE-estimated AVF, baseline vs RAR.
fn inject_cmd(args: &[String]) -> ExitCode {
    use rar_core::{FaultTarget, Technique};
    use rar_inject::{CampaignSpec, Stratum};
    use rar_sim::inject::{run_bitlive_validation, run_injection_campaign, InjectionHarness};

    let mut workload = "mcf".to_owned();
    let mut warmup: u64 = 300;
    let mut instructions: u64 = 2_000;
    let mut sim_seed: Option<u64> = None;
    let mut samples: u64 = 1_000;
    let mut inject_seed: u64 = 1;
    let mut threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut journal: Option<String> = None;
    let mut tally_out: Option<String> = None;
    let mut flight_out: Option<String> = None;
    let mut limit: Option<u64> = None;
    let mut validate_bitlive = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--validate-bitlive" {
            validate_bitlive = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag {
            "--workload" => workload = value.clone(),
            "--warmup" => match value.parse() {
                Ok(n) => warmup = n,
                Err(_) => return usage(),
            },
            "--instructions" => match value.parse() {
                Ok(n) => instructions = n,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(n) => sim_seed = Some(n),
                Err(_) => return usage(),
            },
            "--samples" => match value.parse() {
                Ok(n) => samples = n,
                Err(_) => return usage(),
            },
            "--inject-seed" => match value.parse() {
                Ok(n) => inject_seed = n,
                Err(_) => return usage(),
            },
            "--threads" => match value.parse::<usize>() {
                Ok(n) => threads = n.max(1),
                Err(_) => return usage(),
            },
            "--journal" => journal = Some(value.clone()),
            "--tally-out" => tally_out = Some(value.clone()),
            "--flight-out" => flight_out = Some(value.clone()),
            "--max" => match value.parse() {
                Ok(n) => limit = Some(n),
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    // The bit-liveness validation mode: strikes restricted to the
    // register files, outcomes stratified by the static per-bit dead
    // prediction, and a hard soundness gate — predicted-dead bits must
    // show vulnerability statistically consistent with zero at 95%
    // confidence, otherwise exit non-zero.
    if validate_bitlive {
        if journal.is_some() {
            eprintln!(
                "inject: --journal is not supported with --validate-bitlive \
                 (journal replay cannot restore prediction strata)"
            );
            return ExitCode::from(2);
        }
        let mut validations = Vec::new();
        for technique in [Technique::Ooo, Technique::Rar] {
            let mut b = SimConfig::builder();
            b.workload(&workload)
                .technique(technique)
                .warmup(warmup)
                .instructions(instructions);
            if let Some(s) = sim_seed {
                b.seed(s);
            }
            let cfg = b.build();
            let harness = match InjectionHarness::prepare(&cfg) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let spec = CampaignSpec {
                samples,
                threads,
                limit,
                ..CampaignSpec::default()
            };
            let v = match run_bitlive_validation(&harness, &spec, inject_seed, None, None) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("inject: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{workload}/{technique}: {}/{} register-file injections stratified by \
                 bit-liveness prediction",
                v.result.completed, samples
            );
            validations.push((technique, v));
        }

        let header = vec![
            "technique".to_owned(),
            "stratum".to_owned(),
            "n".to_owned(),
            "vacant".to_owned(),
            "masked".to_owned(),
            "sdc".to_owned(),
            "due".to_owned(),
            "vuln".to_owned(),
            "±95%".to_owned(),
        ];
        let mut table = Table::new(header);
        for (technique, v) in &validations {
            for s in Stratum::ALL {
                let tt = v.strata.get(s);
                table.row(vec![
                    technique.to_string(),
                    s.name().to_owned(),
                    tt.attempts().to_string(),
                    tt.vacant.to_string(),
                    tt.masked.to_string(),
                    tt.sdc.to_string(),
                    (tt.due_hang + tt.due_panic).to_string(),
                    format!("{:.4}", tt.vulnerability()),
                    format!("{:.4}", tt.ci95()),
                ]);
            }
        }
        println!("{}", table.render());

        if let Some(path) = tally_out {
            let json = format!(
                "{{\"schema\":\"rar-bitlive-validation-v1\",\"workload\":\"{workload}\",\
                 \"inject_seed\":{inject_seed},\"samples\":{samples},\"ooo\":{},\"rar\":{}}}\n",
                validations[0].1.strata.to_json(),
                validations[1].1.strata.to_json()
            );
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }

        let mut failed = false;
        for (technique, v) in &validations {
            let dead = v.strata.get(Stratum::PredictedDead);
            if v.gate_passes() {
                println!(
                    "{technique}: gate PASS — {} predicted-dead strikes, vulnerability \
                     {:.4} ± {:.4} consistent with zero",
                    dead.attempts(),
                    dead.vulnerability(),
                    dead.ci95()
                );
            } else {
                eprintln!(
                    "{technique}: gate FAIL — predicted-dead stratum {} (n={}, vulnerability \
                     {:.4} ± {:.4}) is not consistent with zero",
                    if dead.attempts() == 0 {
                        "is empty"
                    } else {
                        "shows unmasked outcomes"
                    },
                    dead.attempts(),
                    dead.vulnerability(),
                    dead.ci95()
                );
                failed = true;
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let flight = flight_out.as_ref().map(|_| {
        std::sync::Arc::new(rar_telemetry::FlightRecorder::new(
            rar_telemetry::DEFAULT_FLIGHT_CAPACITY,
        ))
    });
    let mut campaigns = Vec::new();
    for technique in [Technique::Ooo, Technique::Rar] {
        let mut b = SimConfig::builder();
        b.workload(&workload)
            .technique(technique)
            .warmup(warmup)
            .instructions(instructions);
        if let Some(s) = sim_seed {
            b.seed(s);
        }
        let cfg = b.build();
        let harness = match InjectionHarness::prepare(&cfg) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("{e}");
                return usage();
            }
        };
        let journal_path = journal.as_ref().map(|p| {
            std::path::PathBuf::from(format!(
                "{p}.{}",
                technique.to_string().to_ascii_lowercase()
            ))
        });
        // Fail up front with a typed diagnostic (directory, unwritable
        // parent, ...) instead of panicking mid-campaign.
        if let Some(path) = &journal_path {
            if let Err(e) = rar_inject::validate_journal_path(path) {
                eprintln!("inject: {e}");
                return ExitCode::from(2);
            }
        }
        let spec = CampaignSpec {
            samples,
            threads,
            journal: journal_path,
            limit,
            flight: flight.clone(),
            ..CampaignSpec::default()
        };
        let result = match run_injection_campaign(&harness, &spec, inject_seed, None, None) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("inject: journal error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{workload}/{technique}: {}/{} injections ({} resumed, {} failed, {:.0}% complete)",
            result.completed,
            samples,
            result.resumed,
            result.failed,
            result.completed_fraction() * 100.0
        );
        if result.completed < samples {
            println!(
                "  partial campaign: confidence intervals below reflect the \
                 completed fraction only"
            );
        }
        campaigns.push((harness, result));
    }

    // The cross-validation table: measured vulnerability (with its 95% CI
    // half-width) next to the ACE-estimated AVF from the same golden run,
    // per structure, baseline vs RAR.
    let header = vec![
        "structure".to_owned(),
        "ooo vuln".to_owned(),
        "ooo ±95%".to_owned(),
        "ooo AVF".to_owned(),
        "ooo rAVF".to_owned(),
        "rar vuln".to_owned(),
        "rar ±95%".to_owned(),
        "rar AVF".to_owned(),
        "rar rAVF".to_owned(),
    ];
    let mut table = Table::new(header);
    for t in FaultTarget::ACE {
        let mut row = vec![t.name().to_owned()];
        for (harness, result) in &campaigns {
            let tt = result.tally.get(t);
            let (avf, ravf) = harness.ace_avf(t).unwrap_or((0.0, 0.0));
            row.push(format!("{:.4}", tt.vulnerability()));
            row.push(format!("{:.4}", tt.ci95()));
            row.push(format!("{avf:.4}"));
            row.push(format!("{ravf:.4}"));
        }
        table.row(row);
    }
    println!("{}", table.render());

    if let Some(path) = tally_out {
        let json = format!(
            "{{\"schema\":\"rar-inject-tally-v1\",\"workload\":\"{workload}\",\
             \"inject_seed\":{inject_seed},\"ooo\":{},\"rar\":{}}}\n",
            campaigns[0].1.tally.to_json(),
            campaigns[1].1.tally.to_json()
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let (Some(path), Some(flight)) = (flight_out, flight) {
        let reason = if flight.is_empty() {
            "campaign_done"
        } else {
            "inject_due"
        };
        if let Err(e) = std::fs::write(&path, flight.dump_json(reason)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} DUE events)", flight.len());
    }
    ExitCode::SUCCESS
}

/// Runs one traced simulation and exports every format.
fn trace_cmd(args: &[String]) -> ExitCode {
    let mut builder = SimConfig::builder();
    let mut trace = TraceSettings::default();
    let mut out_dir = "results/traces".to_owned();
    let mut technique = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag {
            "--workload" => {
                builder.workload(value);
            }
            "--technique" => match rar_core::Technique::parse(value) {
                Some(t) => technique = Some(t),
                None => {
                    eprintln!("unknown technique '{value}'");
                    return usage();
                }
            },
            "--instructions" => match value.parse() {
                Ok(n) => {
                    builder.instructions(n);
                }
                Err(_) => return usage(),
            },
            "--warmup" => match value.parse() {
                Ok(n) => {
                    builder.warmup(n);
                }
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(n) => {
                    builder.seed(n);
                }
                Err(_) => return usage(),
            },
            "--out" => out_dir = value.clone(),
            "--capacity" => match value.parse() {
                Ok(n) => trace.capacity = n,
                Err(_) => return usage(),
            },
            "--sample" => match value.parse() {
                Ok(n) => trace.sample_interval = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let Some(technique) = technique else {
        eprintln!("trace requires --technique");
        return usage();
    };
    builder.technique(technique).trace(trace);
    let cfg = builder.build();
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        return usage();
    }

    let (result, sink) = Simulation::run_traced(&cfg);
    let events = sink.to_vec();

    let enters = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RunaheadEnter { .. }))
        .count() as u64;
    let stalls = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::StallWindow { .. }))
        .count();
    println!(
        "{} / {}: {} cycles, IPC {:.3}, {} events captured ({} dropped)",
        cfg.workload,
        technique,
        result.stats.cycles,
        result.ipc(),
        sink.len(),
        sink.dropped()
    );
    println!(
        "runahead intervals: {} reported, {} enter events; {} stall windows",
        result.stats.runahead_intervals, enters, stalls
    );
    if sink.dropped() == 0 && enters != result.stats.runahead_intervals {
        eprintln!("warning: trace/statistics runahead mismatch");
    }

    let stem = format!(
        "{out_dir}/{}-{}",
        cfg.workload,
        technique.to_string().to_ascii_lowercase()
    );
    let names: Vec<String> = rar_ace::Structure::ALL
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let structure_names: Vec<&str> = names.iter().map(String::as_str).collect();
    let outputs = [
        (
            format!("{stem}.trace.json"),
            rar_trace::chrome::to_chrome_json(&events),
        ),
        (
            format!("{stem}.kanata"),
            rar_trace::konata::to_konata(&events),
        ),
        (
            format!("{stem}.uops.csv"),
            rar_trace::csv::uops_to_csv(&events),
        ),
        (
            format!("{stem}.windows.csv"),
            rar_trace::csv::windows_to_csv(&events),
        ),
        (
            format!("{stem}.samples.csv"),
            rar_trace::csv::samples_to_csv(&events, &structure_names),
        ),
    ];
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("failed to create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for (path, contents) in &outputs {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// Runs the figure command(s) through `session` and writes the bench
/// report and run manifest. Generic over the session's [`Profiler`]: the
/// profiled and unprofiled paths share every line of figure logic.
fn run_figures<P: Profiler>(
    cmd: &str,
    base: &ExperimentOptions,
    session: Arc<SweepSession<P>>,
    csv_dir: Option<&String>,
    seeds: u64,
    bench_out: &str,
    manifest_out: &str,
) -> ExitCode {
    let opts = ExperimentOptions {
        instructions: base.instructions,
        warmup: base.warmup,
        seed: base.seed,
        suite: base.suite,
        session,
    };

    let emit = |name: &str, table: &Table| {
        println!("{}", table.render());
        if let Some(dir) = csv_dir {
            let path = format!("{dir}/{name}.csv");
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, table.to_csv()))
            {
                eprintln!("failed to write {path}: {e}");
            }
        }
    };

    let run = |cmd: &str, opts: &ExperimentOptions<P>| match cmd {
        "fig1" => emit("fig1", &experiment::fig1(opts)),
        "fig3" => emit("fig3", &experiment::fig3(opts)),
        "fig4" => emit("fig4", &experiment::fig4(opts)),
        "fig5" => emit("fig5", &experiment::fig5(opts)),
        "fig7" | "fig8" => {
            let [mttf, abc, ipc, mlp] = experiment::fig7_fig8(opts);
            if cmd == "fig7" {
                emit("fig7a_mttf", &mttf);
                emit("fig7b_abc", &abc);
            } else {
                emit("fig8a_ipc", &ipc);
                emit("fig8b_mlp", &mlp);
            }
        }
        "fig9" => emit("fig9", &experiment::fig9(opts)),
        "fig10" => emit("fig10", &experiment::fig10(opts)),
        "fig11" => emit("fig11", &experiment::fig11(opts)),
        "table4" => emit("table4", &experiment::table4()),
        "protection" => emit(
            "protection",
            &rar_sim::protection::protection_comparison(opts),
        ),
        "seeds" => emit("seeds", &experiment::seed_sweep(opts, seeds)),
        "energy" => emit("energy", &experiment::energy(opts)),
        "extensions" => emit("extensions", &experiment::extensions(opts)),
        "structures" => emit("structures", &experiment::structures(opts)),
        "refinement" => emit("refinement", &experiment::refinement(opts)),
        "mpki" => emit("mpki", &experiment::mpki_check(opts)),
        _ => unreachable!("validated below"),
    };

    let known = [
        "fig1",
        "fig3",
        "fig4",
        "fig5",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "table4",
        "mpki",
        "protection",
        "seeds",
        "energy",
        "extensions",
        "structures",
        "refinement",
    ];
    match cmd {
        "all" => {
            run("table4", &opts);
            run("mpki", &opts);
            run("fig3", &opts);
            run("fig4", &opts);
            run("fig5", &opts);
            run("fig1", &opts);
            // Figures 7/8 over both suites, as in the paper.
            let mut both = opts.clone();
            both.suite = Suite::All;
            let [mttf, abc, ipc, mlp] = experiment::fig7_fig8(&both);
            emit("fig7a_mttf", &mttf);
            emit("fig7b_abc", &abc);
            emit("fig8a_ipc", &ipc);
            emit("fig8b_mlp", &mlp);
            run("fig9", &opts);
            run("fig10", &opts);
            run("fig11", &opts);
            run("protection", &opts);
        }
        c if known.contains(&c) => run(c, &opts),
        _ => return usage(),
    }

    let stats = opts.session.stats();
    eprintln!(
        "[rar-sim] sweep: {} cells ({} simulated, {} from cache, {:.0}% hit rate) \
         in {:.1}s ({:.1} runs/s, {} threads)",
        stats.completed(),
        stats.simulated,
        stats.cache_hits,
        stats.cache_hit_rate() * 100.0,
        stats.wall_seconds,
        stats.runs_per_second(),
        stats.threads,
    );
    if let Err(e) = std::fs::write(bench_out, opts.session.bench_json()) {
        eprintln!("failed to write {bench_out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {bench_out}");
    let manifest = opts
        .session
        .manifest_json("rar-experiments", env!("CARGO_PKG_VERSION"));
    if let Err(e) = std::fs::write(manifest_out, manifest) {
        eprintln!("failed to write {manifest_out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {manifest_out}");
    if opts.session.profiling_enabled() {
        // One phase-attribution line per phase, largest first (the
        // manifest carries the same numbers for machines).
        let registry = opts.session.registry();
        let mut phases: Vec<(&str, u64)> = Phase::ALL
            .iter()
            .map(|p| {
                let name = p.name();
                let nanos = registry
                    .counter(&format!("rar_profile_{name}_nanos_total"))
                    .get();
                (name, nanos)
            })
            .collect();
        phases.sort_by_key(|&(_, nanos)| std::cmp::Reverse(nanos));
        let total: u64 = phases.iter().map(|(_, n)| n).sum();
        for (name, nanos) in phases {
            let share = if total == 0 {
                0.0
            } else {
                nanos as f64 / total as f64 * 100.0
            };
            eprintln!(
                "[rar-sim] profile: {name:<12} {:.3}s ({share:.1}%)",
                nanos as f64 / 1e9
            );
        }
    }
    if let Some(p) = opts.session.stall_profile() {
        // One guest-side cycle-accounting line per stall bucket, largest
        // first (the bench report carries the same numbers for machines).
        let mut buckets: Vec<_> = rar_core::StallBucket::ALL
            .iter()
            .map(|&b| (b.name(), p.count(b)))
            .collect();
        buckets.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles));
        let total = p.total().max(1);
        for (name, cycles) in buckets {
            eprintln!(
                "[rar-sim] stalls: {name:<12} {cycles:>12} cycles ({:.1}%)",
                cycles as f64 / total as f64 * 100.0
            );
        }
        eprintln!(
            "[rar-sim] stalls: quiescent fraction {:.4} (event-skippable upper bound)",
            p.quiescent_fraction()
        );
    }
    ExitCode::SUCCESS
}

/// The `serve` subcommand: run the campaign daemon until shutdown.
fn serve_cmd(args: &[String]) -> ExitCode {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServeOptions::default()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--no-cache" {
            opts.cache = false;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag {
            "--addr" => opts.addr = value.clone(),
            "--data-dir" => opts.data_dir = std::path::PathBuf::from(value),
            "--workers" => match value.parse::<usize>() {
                Ok(n) => opts.workers = n.max(1),
                Err(_) => return usage(),
            },
            "--conn-threads" => match value.parse::<usize>() {
                Ok(n) => opts.conn_threads = n.max(1),
                Err(_) => return usage(),
            },
            "--fsync-every" => match value.parse::<usize>() {
                Ok(n) => opts.fsync_every = n.max(1),
                Err(_) => return usage(),
            },
            "--max-queued" => match value.parse::<usize>() {
                Ok(n) => opts.max_queued = n.max(1),
                Err(_) => return usage(),
            },
            "--request-timeout" => match value.parse::<u64>() {
                Ok(n) => opts.request_timeout = std::time::Duration::from_secs(n.max(1)),
                Err(_) => return usage(),
            },
            "--worker-restarts" => match value.parse::<u32>() {
                Ok(n) => opts.worker_restarts = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    // Chaos plans cross process boundaries through the environment (the
    // CI kill-then-restart smoke re-arms the restarted daemon this way).
    match rar_chaos::install_from_env() {
        Ok(Some(plan)) => println!(
            "[rar-serve] chaos plan installed: {} site(s), seed {}",
            plan.sites.len(),
            plan.seed
        ),
        Ok(None) => {
            let spec_set = std::env::var(rar_chaos::ENV_VAR).is_ok_and(|v| !v.trim().is_empty());
            if spec_set && !rar_chaos::COMPILED {
                eprintln!(
                    "[rar-serve] warning: {} is set but the chaos fabric is not compiled in \
                     (build with --features rar-serve/chaos)",
                    rar_chaos::ENV_VAR
                );
            }
        }
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    }
    let server = match CampaignServer::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The address line is machine-readable on purpose: the CI smoke job
    // (and any script) parses it to find the ephemeral port.
    println!("[rar-serve] listening on {}", server.addr());
    server.wait();
    println!("[rar-serve] shut down");
    ExitCode::SUCCESS
}

/// The thin-client subcommands (`submit`, `status`, `cancel`, `events`,
/// `metrics`, `shutdown`): one HTTP exchange each, plus optional
/// poll-to-completion for `submit --wait`.
fn client_cmd(cmd: &str, args: &[String]) -> ExitCode {
    let mut server: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut spec: Option<String> = None;
    let mut wait = false;
    let mut drain = false;
    let mut timeout_secs: u64 = 600;
    let mut out: Option<String> = None;
    let mut result_index: usize = 0;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--wait" {
            wait = true;
            i += 1;
            continue;
        }
        if flag == "--drain" {
            drain = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag {
            "--server" => server = Some(value.clone()),
            "--id" => match value.parse() {
                Ok(n) => id = Some(n),
                Err(_) => return usage(),
            },
            "--spec" => spec = Some(value.clone()),
            "--spec-file" => match std::fs::read_to_string(value) {
                Ok(text) => spec = Some(text),
                Err(e) => {
                    eprintln!("cannot read {value}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--timeout" => match value.parse() {
                Ok(n) => timeout_secs = n,
                Err(_) => return usage(),
            },
            "--out" => out = Some(value.clone()),
            "--result" => match value.parse() {
                Ok(n) => result_index = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let Some(server) = server else {
        eprintln!("{cmd}: --server ADDR is required");
        return usage();
    };
    let client = ServeClient::new(server);
    let need_id = || {
        id.ok_or_else(|| {
            eprintln!("{cmd}: --id N is required");
        })
    };
    let outcome = match cmd {
        "submit" => {
            let Some(spec) = spec else {
                eprintln!("submit: --spec JSON or --spec-file PATH is required");
                return usage();
            };
            client.request("POST", "/v1/jobs", &spec).and_then(|resp| {
                print!("{}", resp.body);
                if !resp.ok() {
                    return Err(std::io::Error::other(format!("HTTP {}", resp.status)));
                }
                if !wait {
                    return Ok(resp);
                }
                let id = rar_serve::jobs::u64_field(&resp.body, "id")
                    .ok()
                    .flatten()
                    .ok_or_else(|| std::io::Error::other("submit response had no id"))?;
                let done = client.wait_for_job(id, std::time::Duration::from_secs(timeout_secs))?;
                print!("{}", done.body);
                if !done.body.contains("\"status\":\"completed\"") {
                    return Err(std::io::Error::other("job did not complete"));
                }
                if let Some(path) = &out {
                    let doc = client.request(
                        "GET",
                        &format!("/v1/jobs/{id}/results/{result_index}"),
                        "",
                    )?;
                    if !doc.ok() {
                        return Err(std::io::Error::other(format!(
                            "result {result_index}: HTTP {}",
                            doc.status
                        )));
                    }
                    std::fs::write(path, &doc.body)?;
                    eprintln!("wrote {path}");
                }
                Ok(done)
            })
        }
        "status" => {
            let Ok(id) = need_id() else { return usage() };
            client
                .request("GET", &format!("/v1/jobs/{id}"), "")
                .inspect(|resp| {
                    // The queue-wait satellite line: human-readable next
                    // to the raw JSON (which stays on stdout untouched).
                    if let Some(field) = rar_serve::jobs::field(&resp.body, "queue_wait_seconds") {
                        eprintln!("queue wait: {field}s");
                    }
                })
        }
        "cancel" => {
            let Ok(id) = need_id() else { return usage() };
            client.request("DELETE", &format!("/v1/jobs/{id}"), "")
        }
        "events" => {
            let Ok(id) = need_id() else { return usage() };
            // follow_events reattaches when the stream is dropped (a
            // restarting or chaos-injected daemon) instead of hanging
            // or dying mid-tail.
            client
                .follow_events(
                    id,
                    std::time::Duration::from_secs(timeout_secs),
                    &mut |chunk| {
                        print!("{chunk}");
                    },
                )
                .inspect(|_| println!())
        }
        "metrics" => client.request("GET", "/metrics", ""),
        "shutdown" => {
            let body = if drain { "{\"mode\":\"drain\"}" } else { "" };
            client.request("POST", "/v1/shutdown", body)
        }
        _ => return usage(),
    };
    match outcome {
        Ok(resp) => {
            if !matches!(cmd, "submit" | "events") {
                print!("{}", resp.body);
            }
            if resp.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    if cmd == "trace" {
        return trace_cmd(&args[1..]);
    }
    if cmd == "report" {
        return report_cmd(&args[1..]);
    }
    if cmd == "inject" {
        return inject_cmd(&args[1..]);
    }
    if cmd == "serve" {
        return serve_cmd(&args[1..]);
    }
    if matches!(
        cmd.as_str(),
        "submit" | "status" | "cancel" | "events" | "metrics" | "shutdown"
    ) {
        return client_cmd(&cmd, &args[1..]);
    }
    let mut opts = ExperimentOptions::default();
    let mut csv_dir: Option<String> = None;
    let mut seeds: u64 = 3;
    let mut cache_dir: Option<String> = Some("results/cache".to_owned());
    let mut bench_out = "BENCH_sweep.json".to_owned();
    let mut manifest_out = "manifest.json".to_owned();
    let mut profile = false;
    let mut stalls = false;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--no-cache" {
            cache_dir = None;
            i += 1;
            continue;
        }
        if flag == "--profile" {
            profile = true;
            i += 1;
            continue;
        }
        if flag == "--stalls" {
            stalls = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag {
            "--instructions" => match value.parse() {
                Ok(n) => opts.instructions = n,
                Err(_) => return usage(),
            },
            "--warmup" => match value.parse() {
                Ok(n) => opts.warmup = n,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(n) => opts.seed = n,
                Err(_) => return usage(),
            },
            "--suite" => {
                opts.suite = match value.as_str() {
                    "memory" => Suite::Memory,
                    "compute" => Suite::Compute,
                    "all" => Suite::All,
                    _ => return usage(),
                }
            }
            "--csv" => csv_dir = Some(value.clone()),
            "--seeds" => match value.parse() {
                Ok(n) => seeds = n,
                Err(_) => return usage(),
            },
            "--cache" => cache_dir = Some(value.clone()),
            "--bench-out" => bench_out = value.clone(),
            "--manifest-out" => manifest_out = value.clone(),
            _ => return usage(),
        }
        i += 2;
    }
    let session = match &cache_dir {
        Some(dir) => SweepSession::with_disk_cache(dir),
        None => SweepSession::new(),
    }
    .stall_profiling(stalls);
    if profile {
        run_figures(
            &cmd,
            &opts,
            Arc::new(session.into_profiled()),
            csv_dir.as_ref(),
            seeds,
            &bench_out,
            &manifest_out,
        )
    } else {
        run_figures(
            &cmd,
            &opts,
            Arc::new(session),
            csv_dir.as_ref(),
            seeds,
            &bench_out,
            &manifest_out,
        )
    }
}
