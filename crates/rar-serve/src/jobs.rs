//! Job specifications: what a client may ask the daemon to run.
//!
//! Three request kinds map onto two internal shapes: a `sweep` (the cross
//! product of workloads × techniques × seeds), an `inject` campaign (the
//! same paired OoO/RAR cross-validation experiment the `inject` CLI
//! subcommand runs, so daemon output diffs byte-identically against CLI
//! goldens), and `single` — sugar for a one-cell sweep. Specs parse from
//! and render to flat JSON with the same hand-rolled discipline as the
//! `rar-inject` journal: we control both producer and consumer, so a
//! fixed schema beats a general parser.
//!
//! Rendering and parsing round-trip exactly — the queue journal persists
//! specs through [`JobSpec::to_json`], and a restarted daemon re-parses
//! them with [`JobSpec::parse`].

use rar_core::Technique;
use rar_sim::SimConfig;

/// A job's lifecycle phase, as reported by `GET /v1/jobs/{id}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, journaled, waiting for a worker.
    Queued,
    /// Claimed by a pool worker.
    Running,
    /// Every unit of work finished and its result is available.
    Completed,
    /// Cooperatively canceled; finished units keep their results.
    Canceled,
    /// Finished with at least one failed unit of work.
    Failed,
}

impl JobPhase {
    /// The wire name (`"queued"`, `"running"`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Canceled => "canceled",
            JobPhase::Failed => "failed",
        }
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Completed | JobPhase::Canceled | JobPhase::Failed
        )
    }
}

/// A sweep job: the cross product of its axes, run cell by cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// Workload names (validated per cell by [`SimConfig::validate`]).
    pub workloads: Vec<String>,
    /// Techniques to run each workload under.
    pub techniques: Vec<Technique>,
    /// Workload seeds; empty means the config-default seed.
    pub seeds: Vec<u64>,
    /// Instructions per run.
    pub instructions: u64,
    /// Warmup instructions per run.
    pub warmup: u64,
}

impl SweepJob {
    /// Expands the axes into one [`SimConfig`] per cell, in a stable
    /// workload-major order.
    #[must_use]
    pub fn configs(&self) -> Vec<SimConfig> {
        let mut out = Vec::new();
        let seeds: Vec<Option<u64>> = if self.seeds.is_empty() {
            vec![None]
        } else {
            self.seeds.iter().copied().map(Some).collect()
        };
        for w in &self.workloads {
            for &t in &self.techniques {
                for &seed in &seeds {
                    let mut b = SimConfig::builder();
                    b.workload(w)
                        .technique(t)
                        .instructions(self.instructions)
                        .warmup(self.warmup);
                    if let Some(s) = seed {
                        b.seed(s);
                    }
                    out.push(b.build());
                }
            }
        }
        out
    }
}

/// An injection-campaign job: `samples` injections under OoO and under
/// RAR, exactly like `rar-experiments inject`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectJob {
    /// Workload under injection.
    pub workload: String,
    /// Total sample indices per technique.
    pub samples: u64,
    /// Fault-site planning seed.
    pub inject_seed: u64,
    /// Instructions per run.
    pub instructions: u64,
    /// Warmup instructions per run.
    pub warmup: u64,
    /// Campaign worker threads (results are thread-count invariant).
    pub threads: usize,
}

/// What a job does, behind the shared priority/identity envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// A grid of simulations.
    Sweep(SweepJob),
    /// A paired fault-injection campaign.
    Inject(InjectJob),
}

/// One submitted job: scheduling priority plus the work itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Higher runs first; ties claim in submission order.
    pub priority: i64,
    /// The work.
    pub kind: JobKind,
}

impl JobSpec {
    /// Units of work the job covers (sweep cells, or injections across
    /// both techniques) — the denominator for progress reporting.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        match &self.kind {
            JobKind::Sweep(s) => {
                let seeds = s.seeds.len().max(1);
                (s.workloads.len() * s.techniques.len() * seeds) as u64
            }
            JobKind::Inject(i) => i.samples * 2,
        }
    }

    /// Renders the spec as one flat JSON object (round-trips through
    /// [`JobSpec::parse`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        match &self.kind {
            JobKind::Sweep(s) => {
                let workloads: Vec<String> =
                    s.workloads.iter().map(|w| format!("\"{w}\"")).collect();
                let techniques: Vec<String> = s
                    .techniques
                    .iter()
                    .map(|t| format!("\"{}\"", t.to_string().to_ascii_lowercase()))
                    .collect();
                let seeds: Vec<String> = s.seeds.iter().map(u64::to_string).collect();
                format!(
                    "{{\"kind\":\"sweep\",\"priority\":{},\"workloads\":[{}],\
                     \"techniques\":[{}],\"seeds\":[{}],\"instructions\":{},\"warmup\":{}}}",
                    self.priority,
                    workloads.join(","),
                    techniques.join(","),
                    seeds.join(","),
                    s.instructions,
                    s.warmup
                )
            }
            JobKind::Inject(i) => format!(
                "{{\"kind\":\"inject\",\"priority\":{},\"workload\":\"{}\",\
                 \"samples\":{},\"inject_seed\":{},\"instructions\":{},\"warmup\":{},\"threads\":{}}}",
                self.priority, i.workload, i.samples, i.inject_seed, i.instructions, i.warmup, i.threads
            ),
        }
    }

    /// Parses a spec from a request body or a journaled line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found (unknown
    /// kind, missing field, empty axis, unknown technique).
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let text = text.trim();
        if !text.starts_with('{') || !text.ends_with('}') {
            return Err("job spec must be a JSON object".to_owned());
        }
        let priority = field(text, "priority")
            .map(|v| v.parse().map_err(|_| format!("bad priority {v:?}")))
            .transpose()?
            .unwrap_or(0);
        let instructions = u64_field(text, "instructions")?.unwrap_or(2_000);
        let warmup = u64_field(text, "warmup")?.unwrap_or(300);
        match field(text, "kind") {
            Some("sweep") => {
                let workloads =
                    str_list(text, "workloads").ok_or("sweep requires \"workloads\": [..]")?;
                let technique_names =
                    str_list(text, "techniques").ok_or("sweep requires \"techniques\": [..]")?;
                if workloads.is_empty() || technique_names.is_empty() {
                    return Err("sweep axes must be non-empty".to_owned());
                }
                let techniques = parse_techniques(&technique_names)?;
                let seeds = u64_list(text, "seeds")?.unwrap_or_default();
                Ok(JobSpec {
                    priority,
                    kind: JobKind::Sweep(SweepJob {
                        workloads,
                        techniques,
                        seeds,
                        instructions,
                        warmup,
                    }),
                })
            }
            Some("single") => {
                let workload = field(text, "workload")
                    .ok_or("single requires \"workload\"")?
                    .to_owned();
                let technique_name = field(text, "technique").unwrap_or("rar");
                let techniques = parse_techniques(&[technique_name.to_owned()])?;
                let seeds = match u64_field(text, "seed")? {
                    Some(s) => vec![s],
                    None => Vec::new(),
                };
                Ok(JobSpec {
                    priority,
                    kind: JobKind::Sweep(SweepJob {
                        workloads: vec![workload],
                        techniques,
                        seeds,
                        instructions,
                        warmup,
                    }),
                })
            }
            Some("inject") => Ok(JobSpec {
                priority,
                kind: JobKind::Inject(InjectJob {
                    workload: field(text, "workload")
                        .ok_or("inject requires \"workload\"")?
                        .to_owned(),
                    samples: u64_field(text, "samples")?.unwrap_or(1_000),
                    inject_seed: u64_field(text, "inject_seed")?.unwrap_or(1),
                    instructions,
                    warmup,
                    threads: usize::try_from(u64_field(text, "threads")?.unwrap_or(1))
                        .map_err(|_| "bad threads".to_owned())?
                        .max(1),
                }),
            }),
            Some(other) => Err(format!("unknown job kind {other:?}")),
            None => Err("job spec requires \"kind\"".to_owned()),
        }
    }
}

fn parse_techniques(names: &[String]) -> Result<Vec<Technique>, String> {
    names
        .iter()
        .map(|n| Technique::parse(n).ok_or_else(|| format!("unknown technique {n:?}")))
        .collect()
}

/// Extracts the raw value of `"key":` from a flat JSON object, quotes
/// stripped. Skips occurrences inside arrays by requiring the match at
/// the top nesting level of the object.
#[must_use]
pub fn field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest.find([',', '}'])?;
    let value = rest[..end].trim().trim_matches('"');
    Some(value)
}

/// [`field`] parsed as `u64`; distinguishes absent (`Ok(None)`) from
/// malformed (`Err`).
///
/// # Errors
///
/// The key is present but its value does not parse as `u64`.
pub fn u64_field(text: &str, key: &str) -> Result<Option<u64>, String> {
    field(text, key)
        .map(|v| v.parse().map_err(|_| format!("bad {key} {v:?}")))
        .transpose()
}

/// Extracts `"key": [...]` and returns the raw bracket contents.
fn list<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":[");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest.find(']')?;
    Some(&rest[..end])
}

fn str_list(text: &str, key: &str) -> Option<Vec<String>> {
    let raw = list(text, key)?;
    Some(
        raw.split(',')
            .map(|s| s.trim().trim_matches('"').to_owned())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

fn u64_list(text: &str, key: &str) -> Result<Option<Vec<u64>>, String> {
    let Some(raw) = list(text, key) else {
        return Ok(None);
    };
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad {key} entry {s:?}")))
        .collect::<Result<Vec<u64>, String>>()
        .map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> JobSpec {
        JobSpec {
            priority: 5,
            kind: JobKind::Sweep(SweepJob {
                workloads: vec!["mcf".to_owned(), "milc".to_owned()],
                techniques: vec![Technique::Ooo, Technique::Rar],
                seeds: vec![1, 2],
                instructions: 2_000,
                warmup: 300,
            }),
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let inject = JobSpec {
            priority: -1,
            kind: JobKind::Inject(InjectJob {
                workload: "mcf".to_owned(),
                samples: 50,
                inject_seed: 7,
                instructions: 2_000,
                warmup: 300,
                threads: 2,
            }),
        };
        for spec in [sweep_spec(), inject] {
            let json = spec.to_json();
            assert_eq!(JobSpec::parse(&json), Ok(spec), "{json}");
        }
    }

    #[test]
    fn sweep_configs_are_the_cross_product() {
        let spec = sweep_spec();
        assert_eq!(spec.total_units(), 8);
        let JobKind::Sweep(s) = &spec.kind else {
            unreachable!()
        };
        let configs = s.configs();
        assert_eq!(configs.len(), 8);
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // Stable order: workload-major, then technique, then seed.
        assert_eq!(configs[0].workload, "mcf");
        assert_eq!(configs[7].workload, "milc");
    }

    #[test]
    fn single_is_sugar_for_a_one_cell_sweep() {
        let spec =
            JobSpec::parse("{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"rar\"}")
                .expect("parse");
        assert_eq!(spec.total_units(), 1);
        let JobKind::Sweep(s) = &spec.kind else {
            panic!("single must become a sweep")
        };
        assert_eq!(s.configs()[0].technique, Technique::Rar);
    }

    #[test]
    fn malformed_specs_are_descriptive_errors() {
        for (body, needle) in [
            ("not json", "JSON object"),
            ("{\"kind\":\"dance\"}", "unknown job kind"),
            ("{\"priority\":0}", "requires \"kind\""),
            (
                "{\"kind\":\"sweep\",\"workloads\":[],\"techniques\":[]}",
                "non-empty",
            ),
            (
                "{\"kind\":\"sweep\",\"workloads\":[\"mcf\"],\"techniques\":[\"warp\"]}",
                "unknown technique",
            ),
            ("{\"kind\":\"inject\"}", "requires \"workload\""),
        ] {
            let err = JobSpec::parse(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn phases_name_and_terminate_consistently() {
        for (phase, name, terminal) in [
            (JobPhase::Queued, "queued", false),
            (JobPhase::Running, "running", false),
            (JobPhase::Completed, "completed", true),
            (JobPhase::Canceled, "canceled", true),
            (JobPhase::Failed, "failed", true),
        ] {
            assert_eq!(phase.name(), name);
            assert_eq!(phase.is_terminal(), terminal);
        }
    }
}
