//! A thin blocking HTTP client for the daemon.
//!
//! Used by the `rar-experiments` client subcommands and the CI smoke
//! job; hand-rolled like the server so the workspace stays
//! dependency-free. Understands exactly what the daemon emits:
//! `Content-Length` bodies and chunked streams, `Connection: close`
//! semantics.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One response: status code plus the (fully drained) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Decoded body (de-chunked when the server streamed).
    pub body: String,
}

impl Response {
    /// True for any 2xx status.
    #[must_use]
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A client bound to one server address (`host:port`).
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
}

impl ServeClient {
    /// A client for `addr` (e.g. `127.0.0.1:7878`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> ServeClient {
        ServeClient { addr: addr.into() }
    }

    /// Sends one request and drains the whole response.
    ///
    /// # Errors
    ///
    /// Connection failures, or a response the daemon would never send
    /// (missing status line, bad chunk framing).
    pub fn request(&self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        self.stream(method, path, body, &mut |_| {})
    }

    /// Like [`ServeClient::request`], but invokes `on_chunk` with each
    /// decoded fragment as it arrives — for following the live
    /// `/v1/jobs/{id}/events` stream. The full body is still returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeClient::request`].
    pub fn stream(
        &self,
        method: &str,
        path: &str,
        body: &str,
        on_chunk: &mut dyn FnMut(&str),
    ) -> io::Result<Response> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        )?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {:?}", line.trim()),
                )
            })?;

        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated response headers",
                ));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().ok();
                } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                    chunked = true;
                }
            }
        }

        let mut out = String::new();
        if chunked {
            loop {
                let mut size_line = String::new();
                if reader.read_line(&mut size_line)? == 0 {
                    // Stream cut mid-flight (server shutdown): return what
                    // arrived rather than failing a live tail.
                    break;
                }
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad chunk size {:?}", size_line.trim()),
                    )
                })?;
                if size == 0 {
                    break;
                }
                let mut chunk = vec![0u8; size];
                reader.read_exact(&mut chunk)?;
                let mut crlf = [0u8; 2];
                reader.read_exact(&mut crlf)?;
                let text = String::from_utf8_lossy(&chunk).into_owned();
                on_chunk(&text);
                out.push_str(&text);
            }
        } else if let Some(n) = content_length {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            out = String::from_utf8_lossy(&buf).into_owned();
        } else {
            reader.read_to_string(&mut out)?;
        }
        Ok(Response { status, body: out })
    }

    /// Polls `GET /v1/jobs/{id}` until the job reaches a terminal phase
    /// (or `timeout` elapses), returning the final status document.
    ///
    /// # Errors
    ///
    /// Request failures, a non-2xx status, or timeout.
    pub fn wait_for_job(&self, id: u64, timeout: Duration) -> io::Result<Response> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let resp = self.request("GET", &format!("/v1/jobs/{id}"), "")?;
            if !resp.ok() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("job {id}: HTTP {}: {}", resp.status, resp.body.trim()),
                ));
            }
            if let Some(status) = crate::jobs::field(&resp.body, "status") {
                if matches!(status, "completed" | "canceled" | "failed") {
                    return Ok(resp);
                }
            }
            if std::time::Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still not terminal after {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
