//! A thin blocking HTTP client for the daemon.
//!
//! Used by the `rar-experiments` client subcommands and the CI smoke
//! job; hand-rolled like the server so the workspace stays
//! dependency-free. Understands exactly what the daemon emits:
//! `Content-Length` bodies and chunked streams, `Connection: close`
//! semantics.
//!
//! Hardened against an unreliable daemon: every socket carries connect
//! and read/write deadlines (no call hangs forever), idempotent requests
//! can be retried under the shared `rar-chaos` backoff helper, and
//! [`ServeClient::follow_events`] reattaches a dropped progress stream
//! instead of failing a live tail.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rar_chaos::{retry_with_backoff, RetryPolicy};
use rar_telemetry::Counter;

/// One response: status code, response headers, and the (fully drained)
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (de-chunked when the server streamed).
    pub body: String,
}

impl Response {
    /// True for any 2xx status.
    #[must_use]
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// First value of the named header (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Failures worth retrying: the connection-shaped errors a restarting
/// daemon, a chaos connection drop, or a stalled-past-deadline socket
/// produce. Anything else (bad framing, refused routes) is a real error.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// A client bound to one server address (`host:port`).
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    connect_timeout: Duration,
    read_timeout: Duration,
    /// Transient transport failures absorbed by retry or reconnect.
    retries: Counter,
}

impl ServeClient {
    /// A client for `addr` (e.g. `127.0.0.1:7878`) with default
    /// deadlines: 5 s to connect, 30 s per socket read/write.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> ServeClient {
        ServeClient {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            retries: Counter::default(),
        }
    }

    /// Overrides the connect and read/write deadlines.
    #[must_use]
    pub fn with_timeouts(mut self, connect: Duration, read: Duration) -> ServeClient {
        self.connect_timeout = connect;
        self.read_timeout = read;
        self
    }

    /// Transient transport failures this client has absorbed so far
    /// (retried requests, reconnected event streams).
    #[must_use]
    pub fn transport_retries(&self) -> u64 {
        self.retries.get()
    }

    /// Connects with the configured deadline, trying each resolved
    /// address in turn.
    fn connect(&self) -> io::Result<TcpStream> {
        let mut last: Option<io::Error> = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no addresses for {}", self.addr),
            )
        }))
    }

    /// Sends one request and drains the whole response.
    ///
    /// # Errors
    ///
    /// Connection failures, a deadline expiring, or a response the
    /// daemon would never send (missing status line, bad chunk framing).
    pub fn request(&self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        self.stream(method, path, body, &mut |_| {})
    }

    /// [`ServeClient::request`] retried under the shared backoff helper
    /// when the failure is connection-shaped (daemon restarting, chaos
    /// connection drop). Meant for requests that are safe to repeat —
    /// all the daemon's GETs are; job submission is repeat-safe too
    /// because jobs are deterministic and idempotent by content, at
    /// worst costing a duplicate id.
    ///
    /// # Errors
    ///
    /// The final transient failure once retries are exhausted, or the
    /// first non-transient failure (those never retry).
    pub fn request_with_retry(&self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        // Jitter seed: client backoff never influences daemon state.
        const CLIENT_RETRY_SEED: u64 = 0xc11e_2775;
        retry_with_backoff(
            RetryPolicy::new(5, 25, 800),
            CLIENT_RETRY_SEED,
            Some(&self.retries),
            |_| match self.request(method, path, body) {
                Err(e) if is_transient(&e) => Err(e),
                other => Ok(other),
            },
        )?
    }

    /// Like [`ServeClient::request`], but invokes `on_chunk` with each
    /// decoded fragment as it arrives — for following the live
    /// `/v1/jobs/{id}/events` stream. The full body is still returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeClient::request`].
    pub fn stream(
        &self,
        method: &str,
        path: &str,
        body: &str,
        on_chunk: &mut dyn FnMut(&str),
    ) -> io::Result<Response> {
        let mut stream = self.connect()?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_write_timeout(Some(self.read_timeout))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        )?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            // Closed before a single status byte (server drop): transient,
            // unlike a garbled status line, which is a protocol error.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {:?}", line.trim()),
                )
            })?;

        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated response headers",
                ));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().ok();
                } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                    chunked = true;
                }
                headers.push((name, value.to_owned()));
            }
        }

        let mut out = String::new();
        if chunked {
            loop {
                let mut size_line = String::new();
                if reader.read_line(&mut size_line)? == 0 {
                    // Stream cut mid-flight (server shutdown): return what
                    // arrived rather than failing a live tail.
                    break;
                }
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad chunk size {:?}", size_line.trim()),
                    )
                })?;
                if size == 0 {
                    break;
                }
                let mut chunk = vec![0u8; size];
                reader.read_exact(&mut chunk)?;
                let mut crlf = [0u8; 2];
                reader.read_exact(&mut crlf)?;
                let text = String::from_utf8_lossy(&chunk).into_owned();
                on_chunk(&text);
                out.push_str(&text);
            }
        } else if let Some(n) = content_length {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            out = String::from_utf8_lossy(&buf).into_owned();
        } else {
            reader.read_to_string(&mut out)?;
        }
        Ok(Response {
            status,
            headers,
            body: out,
        })
    }

    /// Follows the job's `/events` stream until the job reaches a
    /// terminal phase or `timeout` elapses, reconnecting with backoff
    /// when the stream is dropped or cut mid-flight. Heartbeats are
    /// stateless snapshots, so "resume" is simply reattaching to the
    /// job's current state — no events are buffered server-side.
    ///
    /// # Errors
    ///
    /// Non-transient transport failures, or `timeout` elapsing before
    /// the job goes terminal.
    pub fn follow_events(
        &self,
        id: u64,
        timeout: Duration,
        on_chunk: &mut dyn FnMut(&str),
    ) -> io::Result<Response> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.stream("GET", &format!("/v1/jobs/{id}/events"), "", on_chunk) {
                Ok(resp) if !resp.ok() => return Ok(resp),
                Ok(resp) => {
                    // A clean end usually means terminal — but a server
                    // drain also ends streams early, so confirm.
                    let status = self.request_with_retry("GET", &format!("/v1/jobs/{id}"), "")?;
                    match crate::jobs::field(&status.body, "status") {
                        Some(phase) if !matches!(phase, "completed" | "canceled" | "failed") => {
                            // Still live: fall through and reattach.
                        }
                        _ => return Ok(resp),
                    }
                }
                Err(e) if is_transient(&e) => self.retries.inc(),
                Err(e) => return Err(e),
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id}: events stream not terminal after {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Polls `GET /v1/jobs/{id}` until the job reaches a terminal phase
    /// (or `timeout` elapses), returning the final status document.
    /// Transient transport failures — a daemon mid-restart, a chaos
    /// connection drop — are absorbed and polling continues.
    ///
    /// # Errors
    ///
    /// Non-transient request failures, a non-2xx status, or timeout.
    pub fn wait_for_job(&self, id: u64, timeout: Duration) -> io::Result<Response> {
        let deadline = Instant::now() + timeout;
        loop {
            let resp = match self.request("GET", &format!("/v1/jobs/{id}"), "") {
                Ok(resp) => resp,
                Err(e) if is_transient(&e) && Instant::now() < deadline => {
                    self.retries.inc();
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if !resp.ok() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("job {id}: HTTP {}: {}", resp.status, resp.body.trim()),
                ));
            }
            if let Some(status) = crate::jobs::field(&resp.body, "status") {
                if matches!(status, "completed" | "canceled" | "failed") {
                    return Ok(resp);
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still not terminal after {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
