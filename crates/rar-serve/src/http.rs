//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The daemon speaks just enough HTTP for its five routes: request line,
//! headers (only `Content-Length` is interpreted), an optional body, and
//! either a fixed-length response or a chunked stream (for the live
//! progress endpoint). No external dependencies, matching the rest of
//! the workspace; no keep-alive — every response closes the connection,
//! which keeps the bounded connection pool honest and the parser tiny.
//!
//! Limits are enforced up front: oversized request lines, header blocks
//! and bodies are rejected with typed results before any allocation
//! proportional to attacker-controlled sizes.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Most accepted header bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body (job specs are tiny).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// Request target as sent (no query parsing; routes don't use one).
    pub path: String,
    /// Request body, empty unless `Content-Length` said otherwise.
    pub body: String,
}

/// Why a request could not be parsed; each maps to a 4xx.
#[derive(Debug)]
pub enum RequestError {
    /// Connection closed or undecodable before a full request arrived.
    Malformed(String),
    /// A limit above was exceeded.
    TooLarge(String),
    /// Underlying socket failure.
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Malformed(what) => write!(f, "malformed request: {what}"),
            RequestError::TooLarge(what) => write!(f, "request too large: {what}"),
            RequestError::Io(e) => write!(f, "request I/O error: {e}"),
        }
    }
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `stream` (which stays usable for the response).
pub fn read_request(stream: &TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader
        .by_ref()
        .take(MAX_REQUEST_LINE as u64 + 1)
        .read_line(&mut line)?;
    if line.len() > MAX_REQUEST_LINE {
        return Err(RequestError::TooLarge("request line".to_owned()));
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(RequestError::Malformed(format!(
            "request line {:?}",
            line.trim()
        )));
    };
    let method = method.to_owned();
    let path = path.to_owned();

    let mut content_length: usize = 0;
    let mut header_bytes = 0;
    loop {
        let mut header = String::new();
        let n = reader
            .by_ref()
            .take(MAX_HEADER_BYTES as u64 + 1)
            .read_line(&mut header)?;
        if n == 0 {
            return Err(RequestError::Malformed("truncated headers".to_owned()));
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge("headers".to_owned()));
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    RequestError::Malformed(format!("content-length {:?}", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!("body of {content_length}")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::Malformed("non-UTF-8 body".to_owned()))?;
    Ok(Request { method, path, body })
}

/// A typed request-handling failure inside the daemon — the server-side
/// counterpart of [`RequestError`]. Handlers return these instead of
/// panicking, so a wedged shared-state lock degrades one request to a
/// 500 response rather than killing its connection thread (and poisoning
/// every lock that thread held).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// A shared-state mutex was poisoned by a panicking thread; the
    /// payload names the lock for the error body and the daemon log.
    LockPoisoned(&'static str),
}

impl HttpError {
    /// The response status this error maps to.
    #[must_use]
    pub const fn status(self) -> u16 {
        match self {
            HttpError::LockPoisoned(_) => 500,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::LockPoisoned(what) => write!(f, "internal error: {what} lock poisoned"),
        }
    }
}

/// Locks `m`, mapping a poisoned lock to a typed [`HttpError`] instead
/// of propagating the panic. Every lock acquisition on a daemon request
/// or job path goes through this, which is what keeps panicking lock
/// acquisitions out of those paths (enforced by the `serve-panic-paths`
/// repo lint).
///
/// # Errors
///
/// [`HttpError::LockPoisoned`] if a thread panicked while holding `m`.
pub fn lock<'a, T>(
    m: &'a std::sync::Mutex<T>,
    what: &'static str,
) -> Result<std::sync::MutexGuard<'a, T>, HttpError> {
    m.lock().map_err(|_| HttpError::LockPoisoned(what))
}

/// Writes the error response `e` maps to (plain text, `Connection:
/// close` like every other response).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn respond_error(stream: &mut TcpStream, e: HttpError) -> io::Result<()> {
    respond(stream, e.status(), "text/plain", &format!("{e}\n"))
}

/// The standard reason phrase for the handful of statuses the daemon uses.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete fixed-length response and flushes it.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    respond_with_headers(stream, status, content_type, &[], body)
}

/// [`respond`] with extra response headers (e.g. the `Retry-After` the
/// backpressure path sends with its 429).
pub fn respond_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut extra = String::new();
    for (name, value) in headers {
        extra.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

/// Starts a chunked (streaming) response; follow with [`write_chunk`]
/// calls and one [`end_chunks`].
pub fn start_chunked(stream: &mut TcpStream, status: u16, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status),
    )?;
    stream.flush()
}

/// Writes one chunk (skipped when empty: an empty chunk would terminate
/// the stream).
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n{data}\r\n", data.len())?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn end_chunks(stream: &mut TcpStream) -> io::Result<()> {
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &str) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_owned();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(raw.as_bytes()).expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let got = read_request(&stream);
        writer.join().expect("writer");
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"k\":\"v\"}",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, "{\"k\":\"v\"}");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = round_trip("GET /metrics HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.body, "");
    }

    #[test]
    fn lock_helper_maps_poisoned_locks_to_typed_500s() {
        let m = std::sync::Mutex::new(0u32);
        assert!(lock(&m, "demo").is_ok());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let _ = std::panic::catch_unwind(|| {
            let _guard = m.lock().expect("fresh lock");
            panic!("poison the lock");
        });
        std::panic::set_hook(hook);
        let err = lock(&m, "demo").expect_err("lock must be poisoned");
        assert_eq!(err, HttpError::LockPoisoned("demo"));
        assert_eq!(err.status(), 500);
        assert_eq!(err.to_string(), "internal error: demo lock poisoned");
    }

    #[test]
    fn rejects_garbage_and_oversized_requests() {
        assert!(matches!(
            round_trip("\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        let huge = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(round_trip(&huge), Err(RequestError::TooLarge(_))));
    }
}
