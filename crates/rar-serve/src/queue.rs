//! The persistent priority job queue.
//!
//! Jobs are ordered by priority (higher first; ties in submission
//! order) and journaled to disk in the same batch-fsync JSONL style as
//! the `rar-inject` campaign journal: one `submitted` event carrying the
//! full spec inline, and one terminal event (`completed`, `canceled`,
//! `failed`) when the job stops mattering. A restarted daemon replays
//! the journal and re-enqueues every job without a terminal event —
//! which covers both jobs that were still queued and jobs that were
//! *running* when the process died (their work-unit progress is
//! recovered separately: sweep cells from the result cache, injections
//! from their per-job campaign journals).
//!
//! Torn tails are tolerated exactly like the campaign journal: a
//! malformed *final* line is a crash artifact and is skipped; malformed
//! lines anywhere else are corruption and refuse to load.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Condvar, Mutex};

use crate::jobs::{field, JobPhase, JobSpec};

/// One queued job: identity plus spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// Daemon-assigned id, dense from 1, stable across restarts.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
}

/// Heap entry: max-heap on priority, then FIFO on id.
#[derive(Debug)]
struct Entry {
    priority: i64,
    job: QueuedJob,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.job.id.cmp(&self.job.id))
    }
}

/// Append-only queue journal with batched fsync.
#[derive(Debug)]
struct EventLog {
    file: File,
    pending: usize,
    fsync_every: usize,
}

impl EventLog {
    fn append(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.pending += 1;
        if self.pending >= self.fsync_every {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Inner {
    heap: BinaryHeap<Entry>,
    log: Option<EventLog>,
    next_id: u64,
    closed: bool,
}

/// The shared, journaled priority queue.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl JobQueue {
    /// Opens a queue, replaying `journal` when given. Returns the queue
    /// plus the jobs re-enqueued from the journal (submitted but never
    /// terminal), in priority order, so the server can rebuild handles.
    ///
    /// # Errors
    ///
    /// Journal I/O failures, or corruption before the final line.
    pub fn open(
        journal: Option<&Path>,
        fsync_every: usize,
    ) -> io::Result<(JobQueue, Vec<QueuedJob>)> {
        let mut resumed: Vec<QueuedJob> = Vec::new();
        let mut next_id = 1;
        if let Some(path) = journal {
            let mut live: Vec<QueuedJob> = Vec::new();
            for event in load_events(path)? {
                match event {
                    QueueEvent::Submitted(job) => {
                        next_id = next_id.max(job.id + 1);
                        live.push(job);
                    }
                    QueueEvent::Terminal(id) => live.retain(|j| j.id != id),
                }
            }
            resumed = live;
        }
        let log = match journal {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(EventLog {
                    file: OpenOptions::new().create(true).append(true).open(path)?,
                    pending: 0,
                    fsync_every: fsync_every.max(1),
                })
            }
            None => None,
        };
        let mut heap = BinaryHeap::new();
        for job in &resumed {
            heap.push(Entry {
                priority: job.spec.priority,
                job: job.clone(),
            });
        }
        resumed.sort_by(|a, b| b.spec.priority.cmp(&a.spec.priority).then(a.id.cmp(&b.id)));
        Ok((
            JobQueue {
                inner: Mutex::new(Inner {
                    heap,
                    log,
                    next_id,
                    closed: false,
                }),
                ready: Condvar::new(),
            },
            resumed,
        ))
    }

    /// Submits a job: assigns the next id, journals it durably, enqueues
    /// it, and wakes one waiting worker.
    ///
    /// # Errors
    ///
    /// Journal write failures (the job is NOT enqueued on error — a job
    /// that can't be made durable must not half-exist).
    pub fn submit(&self, spec: JobSpec) -> io::Result<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        let id = inner.next_id;
        let job = QueuedJob { id, spec };
        if let Some(log) = inner.log.as_mut() {
            log.append(&format!(
                "{{\"event\":\"submitted\",\"id\":{id},\"spec\":{}}}",
                job.spec.to_json()
            ))?;
            log.sync()?;
        }
        inner.next_id += 1;
        inner.heap.push(Entry {
            priority: job.spec.priority,
            job: job.clone(),
        });
        drop(inner);
        self.ready.notify_one();
        Ok(job)
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed (returning `None` — even with jobs still queued, which is
    /// exactly what keeps them journal-resumable across a shutdown).
    pub fn claim(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return None;
            }
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.job);
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Non-blocking [`JobQueue::claim`].
    pub fn try_claim(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return None;
        }
        inner.heap.pop().map(|e| e.job)
    }

    /// Removes a still-queued job (cancellation before a worker claimed
    /// it). Returns whether it was found in the heap.
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        let before = inner.heap.len();
        let entries: Vec<Entry> = inner.heap.drain().filter(|e| e.job.id != id).collect();
        let removed = entries.len() < before;
        inner.heap.extend(entries);
        removed
    }

    /// Journals a terminal event for `id`. Journal failures here are
    /// reported but do not disturb in-memory state — the worst case is a
    /// finished job being re-run after a restart, which the result cache
    /// and campaign journals make cheap and idempotent.
    pub fn record_terminal(&self, id: u64, phase: JobPhase) {
        debug_assert!(phase.is_terminal());
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(log) = inner.log.as_mut() {
            let line = format!("{{\"event\":\"{}\",\"id\":{id}}}", phase.name());
            if let Err(e) = log.append(&line).and_then(|()| log.sync()) {
                eprintln!("[rar-serve] queue journal append failed: {e}");
            }
        }
    }

    /// Jobs currently queued (not yet claimed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").heap.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: every blocked and future [`JobQueue::claim`]
    /// returns `None`. Queued jobs stay journaled as non-terminal.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

enum QueueEvent {
    Submitted(QueuedJob),
    Terminal(u64),
}

fn parse_event(line: &str) -> Option<QueueEvent> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let id: u64 = field(line, "id")?.parse().ok()?;
    match field(line, "event")? {
        "submitted" => {
            let spec_start = line.find("\"spec\":")? + "\"spec\":".len();
            let spec = JobSpec::parse(&line[spec_start..line.len() - 1]).ok()?;
            Some(QueueEvent::Submitted(QueuedJob { id, spec }))
        }
        "completed" | "canceled" | "failed" => Some(QueueEvent::Terminal(id)),
        _ => None,
    }
}

fn load_events(path: &Path) -> io::Result<Vec<QueueEvent>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match parse_event(line) {
            Some(ev) => out.push(ev),
            None if i + 1 == lines.len() => break,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt queue journal line {}: {line}", i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{InjectJob, JobKind, SweepJob};
    use rar_core::Technique;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

    fn tmp_journal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "rar-serve-queue-{tag}-{}-{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ))
    }

    fn spec(priority: i64) -> JobSpec {
        JobSpec {
            priority,
            kind: JobKind::Sweep(SweepJob {
                workloads: vec!["mcf".to_owned()],
                techniques: vec![Technique::Rar],
                seeds: vec![1],
                instructions: 1_000,
                warmup: 100,
            }),
        }
    }

    #[test]
    fn claims_follow_priority_then_submission_order() {
        let (queue, resumed) = JobQueue::open(None, 1).expect("open");
        assert!(resumed.is_empty());
        let low = queue.submit(spec(0)).expect("submit").id;
        let mid_a = queue.submit(spec(5)).expect("submit").id;
        let mid_b = queue.submit(spec(5)).expect("submit").id;
        let high = queue.submit(spec(9)).expect("submit").id;
        let order: Vec<u64> = std::iter::from_fn(|| queue.try_claim())
            .map(|j| j.id)
            .collect();
        assert_eq!(order, vec![high, mid_a, mid_b, low]);
    }

    #[test]
    fn restart_resumes_exactly_the_non_terminal_jobs() {
        let path = tmp_journal("resume");
        let ids: Vec<u64>;
        {
            let (queue, _) = JobQueue::open(Some(&path), 1).expect("open");
            ids = (0..4)
                .map(|p| queue.submit(spec(p)).expect("submit").id)
                .collect();
            // One finished, one canceled; two still owed.
            queue.record_terminal(ids[0], JobPhase::Completed);
            queue.record_terminal(ids[2], JobPhase::Canceled);
        }
        let (queue, resumed) = JobQueue::open(Some(&path), 1).expect("reopen");
        let resumed_ids: Vec<u64> = resumed.iter().map(|j| j.id).collect();
        assert_eq!(resumed_ids, vec![ids[3], ids[1]], "priority order");
        assert_eq!(resumed[0].spec, spec(3));
        // Ids keep growing past everything ever journaled.
        let next = queue.submit(spec(1)).expect("submit").id;
        assert_eq!(next, ids[3] + 1);
        assert_eq!(queue.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_skipped_but_corruption_refuses_to_load() {
        let path = tmp_journal("torn");
        {
            let (queue, _) = JobQueue::open(Some(&path), 1).expect("open");
            queue.submit(spec(1)).expect("submit");
        }
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"event\":\"submitted\",\"id\":2,\"spe");
        std::fs::write(&path, &text).expect("write");
        let (_, resumed) = JobQueue::open(Some(&path), 1).expect("open with torn tail");
        assert_eq!(resumed.len(), 1);

        let corrupt = text.replace(
            "{\"event\":\"submitted\",\"id\":1",
            "{\"event\":\"garbage!!,\"id\":1",
        );
        std::fs::write(&path, corrupt).expect("write");
        let err = JobQueue::open(Some(&path), 1).expect_err("must refuse corruption");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn remove_unqueues_and_close_releases_blocked_claims() {
        let (queue, _) = JobQueue::open(None, 1).expect("open");
        let a = queue.submit(spec(1)).expect("submit").id;
        assert!(queue.remove(a));
        assert!(!queue.remove(a), "already gone");
        assert!(queue.is_empty());
        std::thread::scope(|s| {
            let waiter = s.spawn(|| queue.claim());
            queue.close();
            assert_eq!(waiter.join().expect("join"), None);
        });
        assert_eq!(queue.try_claim(), None, "closed queues claim nothing");
    }

    #[test]
    fn inject_specs_survive_the_journal_round_trip() {
        let path = tmp_journal("inject");
        let spec = JobSpec {
            priority: 2,
            kind: JobKind::Inject(InjectJob {
                workload: "milc".to_owned(),
                samples: 50,
                inject_seed: 7,
                instructions: 2_000,
                warmup: 300,
                threads: 2,
            }),
        };
        {
            let (queue, _) = JobQueue::open(Some(&path), 1).expect("open");
            queue.submit(spec.clone()).expect("submit");
        }
        let (_, resumed) = JobQueue::open(Some(&path), 1).expect("reopen");
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].spec, spec);
        std::fs::remove_file(&path).ok();
    }
}
