//! The persistent priority job queue.
//!
//! Jobs are ordered by priority (higher first; ties in submission
//! order) and journaled to disk in the same batch-fsync JSONL style as
//! the `rar-inject` campaign journal: one `submitted` event carrying the
//! full spec inline, and one terminal event (`completed`, `canceled`,
//! `failed`) when the job stops mattering. A restarted daemon replays
//! the journal and re-enqueues every job without a terminal event —
//! which covers both jobs that were still queued and jobs that were
//! *running* when the process died (their work-unit progress is
//! recovered separately: sweep cells from the result cache, injections
//! from their per-job campaign journals).
//!
//! Torn tails are tolerated exactly like the campaign journal: a
//! malformed *final* line is a crash artifact and is skipped; malformed
//! lines anywhere else are corruption and refuse to load.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Condvar, Mutex};

use rar_chaos::{retry_with_backoff, sites, RetryPolicy};
use rar_telemetry::Counter;

use crate::jobs::{field, JobPhase, JobSpec};

/// One queued job: identity plus spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// Daemon-assigned id, dense from 1, stable across restarts.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
}

/// Heap entry: max-heap on priority, then FIFO on id.
#[derive(Debug)]
struct Entry {
    priority: i64,
    job: QueuedJob,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.job.id.cmp(&self.job.id))
    }
}

/// Append-only queue journal with batched fsync and torn-write rollback.
///
/// Every record append is length-verified and rolled back (`set_len` to
/// the pre-append length) on any failure — torn write, silent short
/// write, or fsync error — so a retried append can never leave a
/// half-record mid-file that replay would refuse as corruption. The
/// chaos fabric's torn/short/fsync fail-points live in this path.
#[derive(Debug)]
struct EventLog {
    file: File,
    pending: usize,
    fsync_every: usize,
}

impl EventLog {
    /// Writes `line` + newline at the end of the file, verifying the full
    /// record landed. On any failure the file is truncated back to its
    /// pre-append length, so the journal never holds a partial record.
    /// Returns the pre-append length for the caller's own rollback needs.
    fn write_record(&mut self, line: &str) -> io::Result<u64> {
        let start = self.file.metadata()?.len();
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        if let Err(e) = self.write_verified(&bytes, start) {
            let _ = self.file.set_len(start);
            return Err(e);
        }
        Ok(start)
    }

    fn write_verified(&mut self, bytes: &[u8], start: u64) -> io::Result<()> {
        if let Some(hit) = rar_chaos::fire(sites::SERVE_QUEUE_JOURNAL_TORN) {
            // Torn write: a strict prefix lands, then the write errors.
            let cut = 1 + (hit.roll as usize) % (bytes.len() - 1);
            self.file.write_all(&bytes[..cut])?;
            return Err(io::Error::other("chaos: torn queue-journal append"));
        }
        if let Some(hit) = rar_chaos::fire(sites::SERVE_QUEUE_JOURNAL_SHORT) {
            // Silent short write: a prefix lands and the write "succeeds";
            // only the length verification below catches it.
            let cut = 1 + (hit.roll as usize) % (bytes.len() - 1);
            self.file.write_all(&bytes[..cut])?;
        } else {
            self.file.write_all(bytes)?;
        }
        let end = self.file.metadata()?.len();
        let want = start + bytes.len() as u64;
        if end != want {
            return Err(io::Error::other(format!(
                "short queue-journal append: file at {end}, expected {want}"
            )));
        }
        Ok(())
    }

    /// Appends one record and pushes it to stable storage immediately,
    /// rolling the record back if the fsync fails (an unsynced record
    /// cannot be trusted durable, and a retry must not duplicate it).
    fn append_durable(&mut self, line: &str) -> io::Result<()> {
        let start = self.write_record(line)?;
        self.pending += 1;
        if let Err(e) = self.sync() {
            self.pending -= 1;
            let _ = self.file.set_len(start);
            return Err(e);
        }
        Ok(())
    }

    /// Appends one record under the batched-fsync policy (used for
    /// terminal events, where losing the tail of the batch in a crash
    /// merely re-runs a finished job — cheap and idempotent).
    fn append_batched(&mut self, line: &str) -> io::Result<()> {
        self.write_record(line)?;
        self.pending += 1;
        if self.pending >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            rar_chaos::maybe_io_err(sites::SERVE_QUEUE_JOURNAL_FSYNC)?;
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Inner {
    heap: BinaryHeap<Entry>,
    log: Option<EventLog>,
    next_id: u64,
    closed: bool,
}

/// The shared, journaled priority queue.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    /// Transient journal-append failures absorbed by retry
    /// (`rar_serve_journal_retries_total` when the server wires it up).
    retries: Counter,
}

impl JobQueue {
    /// Opens a queue, replaying `journal` when given. Returns the queue
    /// plus the jobs re-enqueued from the journal (submitted but never
    /// terminal), in priority order, so the server can rebuild handles.
    ///
    /// # Errors
    ///
    /// Journal I/O failures, or corruption before the final line.
    pub fn open(
        journal: Option<&Path>,
        fsync_every: usize,
        retries: Counter,
    ) -> io::Result<(JobQueue, Vec<QueuedJob>)> {
        let mut resumed: Vec<QueuedJob> = Vec::new();
        let mut next_id = 1;
        let mut durable_len = 0;
        if let Some(path) = journal {
            let (events, durable) = load_events(path)?;
            durable_len = durable;
            let mut live: Vec<QueuedJob> = Vec::new();
            for event in events {
                match event {
                    QueueEvent::Submitted(job) => {
                        next_id = next_id.max(job.id + 1);
                        // Dedup by id (last wins): a crash between a
                        // durable append and the client seeing the ack can
                        // legitimately resubmit the same id after restart.
                        live.retain(|j| j.id != job.id);
                        live.push(job);
                    }
                    QueueEvent::Terminal(id) => live.retain(|j| j.id != id),
                }
            }
            resumed = live;
        }
        let log = match journal {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                // Trim the torn tail a crash left behind, or the next
                // append would fuse onto the partial line and turn a
                // recoverable tear into mid-file corruption that a later
                // replay rightly refuses to load.
                if file.metadata()?.len() > durable_len {
                    file.set_len(durable_len)?;
                }
                Some(EventLog {
                    file,
                    pending: 0,
                    fsync_every: fsync_every.max(1),
                })
            }
            None => None,
        };
        let mut heap = BinaryHeap::new();
        for job in &resumed {
            heap.push(Entry {
                priority: job.spec.priority,
                job: job.clone(),
            });
        }
        resumed.sort_by(|a, b| b.spec.priority.cmp(&a.spec.priority).then(a.id.cmp(&b.id)));
        Ok((
            JobQueue {
                inner: Mutex::new(Inner {
                    heap,
                    log,
                    next_id,
                    closed: false,
                }),
                ready: Condvar::new(),
                retries,
            },
            resumed,
        ))
    }

    /// Submits a job: assigns the next id, journals it durably, enqueues
    /// it, and wakes one waiting worker.
    ///
    /// # Errors
    ///
    /// Journal write failures after retries (the job is NOT enqueued on
    /// error — a job that can't be made durable must not half-exist).
    /// Transient failures — torn writes, short writes, fsync errors — are
    /// rolled back and retried under the shared backoff helper, each
    /// counted in the queue's retry counter.
    pub fn submit(&self, spec: JobSpec) -> io::Result<QueuedJob> {
        // Jitter seed: retry sleeps never influence queue contents.
        const SUBMIT_RETRY_SEED: u64 = 0x9_0b5_eed;
        let mut inner = self.inner.lock().expect("queue lock");
        let id = inner.next_id;
        let job = QueuedJob { id, spec };
        if let Some(log) = inner.log.as_mut() {
            let line = format!(
                "{{\"event\":\"submitted\",\"id\":{id},\"spec\":{}}}",
                job.spec.to_json()
            );
            retry_with_backoff(
                RetryPolicy::quick(),
                SUBMIT_RETRY_SEED,
                Some(&self.retries),
                |_| log.append_durable(&line),
            )?;
        }
        inner.next_id += 1;
        inner.heap.push(Entry {
            priority: job.spec.priority,
            job: job.clone(),
        });
        drop(inner);
        self.ready.notify_one();
        Ok(job)
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed (returning `None` — even with jobs still queued, which is
    /// exactly what keeps them journal-resumable across a shutdown).
    pub fn claim(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return None;
            }
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.job);
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Non-blocking [`JobQueue::claim`].
    pub fn try_claim(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return None;
        }
        inner.heap.pop().map(|e| e.job)
    }

    /// Re-enqueues a job a worker claimed but could not finish (its
    /// thread panicked before running it). No journal write: the job's
    /// `submitted` event is still the latest durable word on it, exactly
    /// as if it had never been claimed.
    pub fn requeue(&self, job: QueuedJob) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.heap.push(Entry {
            priority: job.spec.priority,
            job,
        });
        drop(inner);
        self.ready.notify_one();
    }

    /// Removes a still-queued job (cancellation before a worker claimed
    /// it). Returns whether it was found in the heap.
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        let before = inner.heap.len();
        let entries: Vec<Entry> = inner.heap.drain().filter(|e| e.job.id != id).collect();
        let removed = entries.len() < before;
        inner.heap.extend(entries);
        removed
    }

    /// Journals a terminal event for `id`. Journal failures here are
    /// reported but do not disturb in-memory state — the worst case is a
    /// finished job being re-run after a restart, which the result cache
    /// and campaign journals make cheap and idempotent.
    pub fn record_terminal(&self, id: u64, phase: JobPhase) {
        // Jitter seed: retry sleeps never influence queue contents.
        const TERMINAL_RETRY_SEED: u64 = 0x07e5_10b5;
        debug_assert!(phase.is_terminal());
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(log) = inner.log.as_mut() {
            let line = format!("{{\"event\":\"{}\",\"id\":{id}}}", phase.name());
            let appended = retry_with_backoff(
                RetryPolicy::quick(),
                TERMINAL_RETRY_SEED,
                Some(&self.retries),
                |_| log.append_batched(&line),
            );
            if let Err(e) = appended {
                eprintln!("[rar-serve] queue journal append failed: {e}");
            }
        }
    }

    /// Jobs currently queued (not yet claimed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").heap.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: every blocked and future [`JobQueue::claim`]
    /// returns `None`. Queued jobs stay journaled as non-terminal.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

enum QueueEvent {
    Submitted(QueuedJob),
    Terminal(u64),
}

fn parse_event(line: &str) -> Option<QueueEvent> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let id: u64 = field(line, "id")?.parse().ok()?;
    match field(line, "event")? {
        "submitted" => {
            let spec_start = line.find("\"spec\":")? + "\"spec\":".len();
            let spec = JobSpec::parse(&line[spec_start..line.len() - 1]).ok()?;
            Some(QueueEvent::Submitted(QueuedJob { id, spec }))
        }
        "completed" | "canceled" | "failed" => Some(QueueEvent::Terminal(id)),
        _ => None,
    }
}

/// Replays the journal, returning its events plus the byte length of
/// the durable prefix — everything up to and including the last line
/// that parsed. A torn final line (the crash signature) is tolerated
/// and excluded from the durable length so [`JobQueue::open`] can trim
/// it before appending; garbage anywhere earlier is refused.
fn load_events(path: &Path) -> io::Result<(Vec<QueueEvent>, u64)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    let mut durable = 0u64;
    let mut lineno = 0usize;
    let mut start = 0usize;
    while start < text.len() {
        let end = text[start..]
            .find('\n')
            .map_or(text.len(), |rel| start + rel + 1);
        let line = text[start..end].trim();
        lineno += 1;
        if line.is_empty() {
            durable = end as u64;
        } else {
            match parse_event(line) {
                Some(ev) => {
                    out.push(ev);
                    durable = end as u64;
                }
                None if end == text.len() => break,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt queue journal line {lineno}: {line}"),
                    ))
                }
            }
        }
        start = end;
    }
    Ok((out, durable))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{InjectJob, JobKind, SweepJob};
    use rar_core::Technique;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

    fn tmp_journal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "rar-serve-queue-{tag}-{}-{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ))
    }

    fn spec(priority: i64) -> JobSpec {
        JobSpec {
            priority,
            kind: JobKind::Sweep(SweepJob {
                workloads: vec!["mcf".to_owned()],
                techniques: vec![Technique::Rar],
                seeds: vec![1],
                instructions: 1_000,
                warmup: 100,
            }),
        }
    }

    #[test]
    fn claims_follow_priority_then_submission_order() {
        let (queue, resumed) = JobQueue::open(None, 1, Counter::default()).expect("open");
        assert!(resumed.is_empty());
        let low = queue.submit(spec(0)).expect("submit").id;
        let mid_a = queue.submit(spec(5)).expect("submit").id;
        let mid_b = queue.submit(spec(5)).expect("submit").id;
        let high = queue.submit(spec(9)).expect("submit").id;
        let order: Vec<u64> = std::iter::from_fn(|| queue.try_claim())
            .map(|j| j.id)
            .collect();
        assert_eq!(order, vec![high, mid_a, mid_b, low]);
    }

    #[test]
    fn restart_resumes_exactly_the_non_terminal_jobs() {
        let path = tmp_journal("resume");
        let ids: Vec<u64>;
        {
            let (queue, _) = JobQueue::open(Some(&path), 1, Counter::default()).expect("open");
            ids = (0..4)
                .map(|p| queue.submit(spec(p)).expect("submit").id)
                .collect();
            // One finished, one canceled; two still owed.
            queue.record_terminal(ids[0], JobPhase::Completed);
            queue.record_terminal(ids[2], JobPhase::Canceled);
        }
        let (queue, resumed) = JobQueue::open(Some(&path), 1, Counter::default()).expect("reopen");
        let resumed_ids: Vec<u64> = resumed.iter().map(|j| j.id).collect();
        assert_eq!(resumed_ids, vec![ids[3], ids[1]], "priority order");
        assert_eq!(resumed[0].spec, spec(3));
        // Ids keep growing past everything ever journaled.
        let next = queue.submit(spec(1)).expect("submit").id;
        assert_eq!(next, ids[3] + 1);
        assert_eq!(queue.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_skipped_but_corruption_refuses_to_load() {
        let path = tmp_journal("torn");
        {
            let (queue, _) = JobQueue::open(Some(&path), 1, Counter::default()).expect("open");
            queue.submit(spec(1)).expect("submit");
        }
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"event\":\"submitted\",\"id\":2,\"spe");
        std::fs::write(&path, &text).expect("write");
        let (_, resumed) =
            JobQueue::open(Some(&path), 1, Counter::default()).expect("open with torn tail");
        assert_eq!(resumed.len(), 1);

        let corrupt = text.replace(
            "{\"event\":\"submitted\",\"id\":1",
            "{\"event\":\"garbage!!,\"id\":1",
        );
        std::fs::write(&path, corrupt).expect("write");
        let err =
            JobQueue::open(Some(&path), 1, Counter::default()).expect_err("must refuse corruption");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn remove_unqueues_and_close_releases_blocked_claims() {
        let (queue, _) = JobQueue::open(None, 1, Counter::default()).expect("open");
        let a = queue.submit(spec(1)).expect("submit").id;
        assert!(queue.remove(a));
        assert!(!queue.remove(a), "already gone");
        assert!(queue.is_empty());
        std::thread::scope(|s| {
            let waiter = s.spawn(|| queue.claim());
            queue.close();
            assert_eq!(waiter.join().expect("join"), None);
        });
        assert_eq!(queue.try_claim(), None, "closed queues claim nothing");
    }

    #[test]
    fn inject_specs_survive_the_journal_round_trip() {
        let path = tmp_journal("inject");
        let spec = JobSpec {
            priority: 2,
            kind: JobKind::Inject(InjectJob {
                workload: "milc".to_owned(),
                samples: 50,
                inject_seed: 7,
                instructions: 2_000,
                warmup: 300,
                threads: 2,
            }),
        };
        {
            let (queue, _) = JobQueue::open(Some(&path), 1, Counter::default()).expect("open");
            queue.submit(spec.clone()).expect("submit");
        }
        let (_, resumed) = JobQueue::open(Some(&path), 1, Counter::default()).expect("reopen");
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].spec, spec);
        std::fs::remove_file(&path).ok();
    }
}
