//! rar-serve: a long-running campaign service over the RAR sweep engine.
//!
//! The crate turns the batch-oriented simulator into a daemon: a
//! dependency-free HTTP/1.1 server ([`server::CampaignServer`]) fronting
//! a persistent priority job queue ([`queue::JobQueue`]) and a shared
//! worker pool. Every job runs through one shared
//! [`rar_sim::SweepSession`], so the content-addressed result cache and
//! the single-flight deduplication gate span clients: two requests for
//! the same sweep cell cost one simulation.
//!
//! The queue journals submissions and terminal states to disk with the
//! same batch-fsync JSONL discipline as rar-inject's campaign journal;
//! a killed daemon restarted on the same data directory resumes every
//! queued or running job. Fault-injection jobs additionally journal per
//! injection, so resumption is injection-exact.
//!
//! Modules:
//! - [`http`] — minimal HTTP/1.1 request parsing and response writing
//! - [`jobs`] — job specs, phases, and flat-JSON (de)serialization
//! - [`queue`] — the journaled priority queue
//! - [`server`] — the daemon: routes, workers, cancellation, metrics
//! - [`client`] — a thin blocking client for the CLI and CI smoke tests

pub mod client;
pub mod http;
pub mod jobs;
pub mod queue;
pub mod server;

pub use client::ServeClient;
pub use jobs::{InjectJob, JobKind, JobPhase, JobSpec, SweepJob};
pub use queue::{JobQueue, QueuedJob};
pub use server::{CampaignServer, ServeOptions};
