//! The campaign daemon: routes, worker pool, and job lifecycle.
//!
//! One [`CampaignServer`] owns a single long-lived
//! [`SweepSession`] shared by every job — so the content-addressed
//! result cache, the in-memory memoization stores, and the single-flight
//! deduplication gate all span tenants: two jobs that ask for the same
//! cell concurrently trigger exactly one simulation (one leads, one
//! subscribes), and a cell any past job finished replays from cache.
//! Fault-injection jobs journal per job under the data directory, so a
//! killed-and-restarted daemon resumes campaigns injection-exactly.
//!
//! Threads: one acceptor feeds accepted connections to a bounded pool of
//! connection handlers (requests are short-lived except the chunked
//! `/v1/jobs/{id}/events` stream); a separate pool of job workers drains
//! the priority queue. Every job carries a [`CancelToken`] checked at
//! unit-of-work boundaries — `DELETE /v1/jobs/{id}` is cooperative and
//! never tears a simulation or a journal.
//!
//! Routes:
//!
//! | method & path                  | effect                                   |
//! |--------------------------------|------------------------------------------|
//! | `POST /v1/jobs`                | submit a [`JobSpec`]; returns `{"id":N}` |
//! | `GET /v1/jobs/{id}`            | status + partial results                 |
//! | `GET /v1/jobs/{id}/results/{i}`| one raw result document (byte-stable)    |
//! | `DELETE /v1/jobs/{id}`         | cooperative cancellation                 |
//! | `GET /v1/jobs/{id}/events`     | chunked live progress stream             |
//! | `GET /metrics`                 | live Prometheus text (server + session)  |
//! | `GET /healthz`                 | liveness: 200 while the process serves   |
//! | `GET /readyz`                  | readiness: 503 when draining/no workers  |
//! | `POST /v1/shutdown`            | shutdown; body `{"mode":"drain"}` drains |
//!
//! Resilience: worker threads run under supervisors that requeue the
//! claimed job and respawn the worker if it panics (bounded respawns);
//! submissions are refused with `429` + `Retry-After` while the queue is
//! at capacity and with `503` during a drain; every connection carries a
//! socket deadline so a wedged peer times out with `408` instead of
//! pinning a handler thread. The `rar-chaos` fail-point fabric is
//! threaded through the queue journal, the worker pool and the HTTP
//! layer (inert unless the `chaos` feature is enabled and a plan is
//! installed).

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rar_chaos::sites;
use rar_core::{FaultTarget, Technique};
use rar_inject::CampaignSpec;
use rar_sim::inject::{run_injection_campaign, InjectionHarness};
use rar_sim::sweep::RunError;
use rar_sim::{json, SimConfig, SweepSession};
use rar_telemetry::{
    export, names, CancelToken, Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry,
    ProgressReporter, ProgressSnapshot, SpanId, SpanLog, SpanProfiler, SpanRecorder,
    ThreadParentGuard, DEFAULT_FLIGHT_CAPACITY,
};
use rar_trace::chrome::{spans_to_chrome_json, SpanSlice};

use crate::http::{
    end_chunks, lock, read_request, respond, respond_error, respond_with_headers, start_chunked,
    write_chunk, HttpError, Request, RequestError,
};
use crate::jobs::{field, InjectJob, JobKind, JobPhase, JobSpec, SweepJob};
use crate::queue::{JobQueue, QueuedJob};

/// How a daemon is configured; all knobs have serviceable defaults.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Where the queue journal, campaign journals and result cache live.
    pub data_dir: PathBuf,
    /// Job workers draining the priority queue.
    pub workers: usize,
    /// Connection-handler threads (the HTTP pool bound).
    pub conn_threads: usize,
    /// Whether to keep the on-disk result cache (under `data_dir/cache`).
    pub cache: bool,
    /// Queue-journal records per fsync batch.
    pub fsync_every: usize,
    /// Most jobs allowed queued (not yet claimed) before submissions are
    /// refused with `429` + `Retry-After` (bounded-queue backpressure).
    pub max_queued: usize,
    /// Per-connection socket deadline: a peer that stops reading or
    /// writing for this long gets `408` (or a closed socket) instead of
    /// pinning a handler thread forever.
    pub request_timeout: Duration,
    /// Panicked-worker respawns each supervisor allows before retiring
    /// its slot (the job it was running is failed, not requeued, once
    /// the budget is spent — at that point the job is the likely cause).
    pub worker_restarts: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: PathBuf::from("results/serve"),
            workers: 2,
            conn_threads: 4,
            cache: true,
            fsync_every: 8,
            max_queued: 256,
            request_timeout: Duration::from_secs(30),
            worker_restarts: 3,
        }
    }
}

/// Telemetry handles for the daemon, registered eagerly so every
/// `names::SERVE_ALL` metric exists (at zero) from the first scrape.
struct ServeCounters {
    http_requests: Counter,
    submitted: Counter,
    completed: Counter,
    canceled: Counter,
    failed: Counter,
    resumed: Counter,
    active: Gauge,
    workers: Gauge,
    /// Request latency over every endpoint; per-endpoint histograms are
    /// registered lazily under `rar_serve_request_nanos{endpoint="..."}`.
    request_nanos: Histogram,
    /// Queue wait of the most recently claimed job, in seconds.
    queue_wait: Gauge,
    /// Submissions refused with 429 because the bounded queue was full.
    rejected: Counter,
    /// Panicked worker threads respawned by their supervisors.
    worker_restarts: Counter,
    /// Transient queue-journal append failures absorbed by retry (the
    /// handle is cloned into the [`JobQueue`], which does the counting).
    journal_retries: Counter,
}

impl ServeCounters {
    fn register(reg: &MetricsRegistry) -> ServeCounters {
        ServeCounters {
            http_requests: reg.counter(names::SERVE_HTTP_REQUESTS),
            submitted: reg.counter(names::SERVE_JOBS_SUBMITTED),
            completed: reg.counter(names::SERVE_JOBS_COMPLETED),
            canceled: reg.counter(names::SERVE_JOBS_CANCELED),
            failed: reg.counter(names::SERVE_JOBS_FAILED),
            resumed: reg.counter(names::SERVE_JOBS_RESUMED),
            active: reg.gauge(names::SERVE_JOBS_ACTIVE),
            workers: reg.gauge(names::SERVE_WORKERS),
            request_nanos: reg.histogram(names::SERVE_REQUEST_NANOS),
            queue_wait: reg.gauge(names::SERVE_QUEUE_WAIT_SECONDS),
            rejected: reg.counter(names::SERVE_JOBS_REJECTED),
            worker_restarts: reg.counter(names::SERVE_WORKER_RESTARTS),
            journal_retries: reg.counter(names::SERVE_JOURNAL_RETRIES),
        }
    }
}

/// Every endpoint label the per-endpoint latency histograms can carry
/// (the `endpoint-coverage` repo lint checks routes against this list).
pub const ENDPOINTS: [&str; 11] = [
    "submit", "metrics", "healthz", "readyz", "status", "result", "cancel", "events", "trace",
    "shutdown", "other",
];

/// Maps a parsed request to its latency-histogram endpoint label.
fn endpoint_label(method: &str, segs: &[&str]) -> &'static str {
    match (method, segs) {
        ("POST", ["v1", "jobs"]) => "submit",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["readyz"]) => "readyz",
        ("GET", ["v1", "jobs", _]) => "status",
        ("GET", ["v1", "jobs", _, "results", _]) => "result",
        ("DELETE", ["v1", "jobs", _]) => "cancel",
        ("GET", ["v1", "jobs", _, "events"]) => "events",
        ("GET", ["v1", "jobs", _, "trace"]) => "trace",
        ("POST", ["v1", "shutdown"]) => "shutdown",
        _ => "other",
    }
}

/// Mutable job state behind the handle's lock.
struct JobProgress {
    phase: JobPhase,
    completed: u64,
    failed: u64,
    total: u64,
    /// One rendered JSON document per finished unit that produces one
    /// (sweep cells; the inject tally when the campaign completes).
    results: Vec<String>,
    error: Option<String>,
    /// Nanoseconds the job sat queued before a worker claimed it.
    queue_wait_nanos: Option<u64>,
    /// The post-mortem flight-recorder dump, when the job crashed, timed
    /// out, or recorded an injection DUE (already a JSON document).
    flight: Option<String>,
}

/// One job as the server tracks it: immutable identity + spec, a cancel
/// token, and locked progress.
pub struct JobHandle {
    id: u64,
    spec: JobSpec,
    cancel: CancelToken,
    state: Mutex<JobProgress>,
    /// Root of this job's causal span tree (`request`).
    request_span: SpanId,
    /// The `queue_wait` child span, open until a worker claims the job.
    queue_span: SpanId,
    /// When the job entered the queue (for the queue-wait metric).
    submitted: Instant,
}

impl JobHandle {
    fn new(job: &QueuedJob, spans: &SpanLog) -> Arc<JobHandle> {
        let request_span = spans.start("request", SpanId::NONE);
        let queue_span = spans.start("queue_wait", request_span);
        Arc::new(JobHandle {
            id: job.id,
            spec: job.spec.clone(),
            cancel: CancelToken::new(),
            state: Mutex::new(JobProgress {
                phase: JobPhase::Queued,
                completed: 0,
                failed: 0,
                total: job.spec.total_units(),
                results: Vec::new(),
                error: None,
                queue_wait_nanos: None,
                flight: None,
            }),
            request_span,
            queue_span,
            submitted: Instant::now(),
        })
    }

    /// Status + partial results as the `GET /v1/jobs/{id}` body.
    fn status_json(&self) -> Result<String, HttpError> {
        let st = lock(&self.state, "job state")?;
        let mut out = format!(
            "{{\"id\":{},\"status\":\"{}\",\"priority\":{},\"completed\":{},\"failed\":{},\"total\":{}",
            self.id,
            st.phase.name(),
            self.spec.priority,
            st.completed,
            st.failed,
            st.total
        );
        if let Some(nanos) = st.queue_wait_nanos {
            out.push_str(&format!(
                ",\"queue_wait_seconds\":{:.6}",
                nanos as f64 / 1e9
            ));
        }
        if let Some(err) = &st.error {
            out.push_str(",\"error\":\"");
            out.push_str(&escape_json(err));
            out.push('"');
        }
        if let Some(flight) = &st.flight {
            out.push_str(",\"flight\":");
            out.push_str(flight.trim_end());
        }
        out.push_str(",\"results\":[");
        for (i, r) in st.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(r.trim_end());
        }
        out.push_str("]}\n");
        Ok(out)
    }

    fn snapshot(&self) -> Result<(JobPhase, ProgressSnapshot), HttpError> {
        let st = lock(&self.state, "job state")?;
        Ok((
            st.phase,
            ProgressSnapshot {
                completed: st.completed,
                cache_hits: 0,
                failed: st.failed,
                busy_nanos: 0,
                threads: 1,
            },
        ))
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Minimal JSON string escaping for error messages.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct ServerInner {
    session: SweepSession<SpanProfiler>,
    queue: JobQueue,
    jobs: Mutex<BTreeMap<u64, Arc<JobHandle>>>,
    registry: MetricsRegistry,
    counters: ServeCounters,
    data_dir: PathBuf,
    shutdown: CancelToken,
    /// Set by a drain: stop accepting work, let claimed jobs finish,
    /// then shut down (the last live worker slot finalizes).
    draining: CancelToken,
    /// Bounded-queue backpressure threshold (`ServeOptions::max_queued`).
    max_queued: usize,
    /// Per-connection socket deadline (`ServeOptions::request_timeout`).
    request_timeout: Duration,
    /// Worker slots not yet retired; readiness and drain finalization
    /// both key off this.
    workers_alive: AtomicUsize,
    addr: SocketAddr,
    /// The daemon-wide causal span log every job's tree lives in.
    spans: Arc<SpanLog>,
    /// The crash flight recorder shared by the workers and the session.
    flight: Arc<FlightRecorder>,
}

/// A running daemon; dropping it does NOT stop it — call
/// [`CampaignServer::stop`] (tests) or [`CampaignServer::wait`] (CLI).
pub struct CampaignServer {
    inner: Arc<ServerInner>,
    threads: Vec<JoinHandle<()>>,
}

impl CampaignServer {
    /// Binds, replays the queue journal, and starts every thread.
    ///
    /// # Errors
    ///
    /// Bind failures, unreadable/corrupt queue journal, unwritable data
    /// directory.
    pub fn start(opts: ServeOptions) -> io::Result<CampaignServer> {
        std::fs::create_dir_all(&opts.data_dir)?;
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        // Registry first: the queue needs its retry counter from the
        // first journal replay onward.
        let registry = MetricsRegistry::new();
        let counters = ServeCounters::register(&registry);
        // Zero workers is legitimate (accept-and-journal only; tests use
        // it to pin jobs in the queued state).
        let workers = opts.workers;
        counters.workers.set(workers as f64);
        let journal = opts.data_dir.join("queue.jsonl");
        let (queue, resumed) = JobQueue::open(
            Some(&journal),
            opts.fsync_every,
            counters.journal_retries.clone(),
        )?;
        let spans = Arc::new(SpanLog::new());
        let flight = Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY));
        let profiler = SpanProfiler::new(Arc::clone(&spans));
        let session = if opts.cache {
            SweepSession::with_profiler_and_disk_cache(opts.data_dir.join("cache"), profiler)
        } else {
            SweepSession::with_profiler(profiler)
        }
        .with_flight_recorder(Arc::clone(&flight));
        let inner = Arc::new(ServerInner {
            session,
            queue,
            jobs: Mutex::new(BTreeMap::new()),
            registry,
            counters,
            data_dir: opts.data_dir.clone(),
            shutdown: CancelToken::new(),
            draining: CancelToken::new(),
            max_queued: opts.max_queued.max(1),
            request_timeout: opts.request_timeout,
            workers_alive: AtomicUsize::new(workers),
            addr,
            spans,
            flight,
        });
        // Single-threaded startup: the jobs lock cannot be poisoned yet,
        // but the request-path discipline (no panicking lock
        // acquisitions) applies here too.
        if let Ok(mut jobs) = lock(&inner.jobs, "jobs") {
            for job in &resumed {
                jobs.insert(job.id, JobHandle::new(job, &inner.spans));
                inner.counters.resumed.inc();
                inner.counters.submitted.inc();
            }
        }
        if let Err(e) = inner.refresh_active() {
            eprintln!("[rar-serve] startup: {e}");
        }

        let mut threads = Vec::new();
        for index in 0..workers {
            let inner = Arc::clone(&inner);
            let budget = opts.worker_restarts;
            threads.push(std::thread::spawn(move || {
                inner.supervise_worker(index, budget);
            }));
        }
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for _ in 0..opts.conn_threads.max(1) {
            let inner = Arc::clone(&inner);
            let conn_rx = Arc::clone(&conn_rx);
            threads.push(std::thread::spawn(move || loop {
                // A poisoned receiver lock means a sibling handler
                // panicked mid-recv; this handler retires rather than
                // panicking the whole pool in cascade.
                let next = match lock(&conn_rx, "conn rx") {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                match next {
                    Ok(mut stream) => inner.handle_connection(&mut stream),
                    Err(_) => break,
                }
            }));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if inner.shutdown.is_canceled() {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A send can only fail after shutdown dropped the
                        // handlers; the connection is simply closed.
                        let _ = conn_tx.send(stream);
                    }
                }
                drop(conn_tx);
            }));
        }
        Ok(CampaignServer { inner, threads })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The daemon's own metrics registry (`SERVE_*`, plus `INJECT_*`
    /// once an injection job has run).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// The shared sweep engine's registry (`SWEEP_*` and guest stats).
    #[must_use]
    pub fn session_registry(&self) -> &MetricsRegistry {
        self.inner.session.registry()
    }

    /// Begins a graceful shutdown: stop accepting, stop claiming jobs.
    /// Jobs already running finish (cancel them first if needed); queued
    /// jobs stay journaled for the next start.
    pub fn initiate_shutdown(&self) {
        self.inner.initiate_shutdown();
    }

    /// Begins a graceful drain: readiness flips to 503, new submissions
    /// are refused, jobs already claimed run to completion, queued jobs
    /// stay journaled for the next start — then the daemon shuts itself
    /// down (the last worker slot to exit finalizes).
    pub fn initiate_drain(&self) {
        self.inner.initiate_drain();
    }

    /// Blocks until every server thread exits (i.e. until shutdown).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// [`CampaignServer::initiate_shutdown`] + [`CampaignServer::wait`].
    pub fn stop(self) {
        self.initiate_shutdown();
        self.wait();
    }

    /// [`CampaignServer::initiate_drain`] + [`CampaignServer::wait`].
    pub fn drain(self) {
        self.initiate_drain();
        self.wait();
    }
}

impl ServerInner {
    fn initiate_shutdown(&self) {
        self.shutdown.cancel();
        self.queue.close();
        // Unblock the acceptor, which is parked in accept().
        let _ = TcpStream::connect(self.addr);
    }

    fn initiate_drain(&self) {
        self.draining.cancel();
        // Closing the queue lets each worker finish its current job and
        // exit; the last supervisor out calls `initiate_shutdown`. HTTP
        // stays up meanwhile so status, results and metrics remain
        // scrapeable while claimed jobs run out.
        self.queue.close();
        if self.workers_alive.load(Ordering::Acquire) == 0 {
            // Every slot already retired (e.g. exhausted restart
            // budgets): nobody is left to finalize the drain.
            self.initiate_shutdown();
        }
    }

    // ---- worker supervision --------------------------------------------

    /// Runs one worker slot under supervision: jobs are claimed on a
    /// child thread, and if that thread panics the supervisor requeues
    /// the job it had claimed and respawns it — at most `budget` times,
    /// after which the claimed job is failed (at that point the job
    /// itself is the likely culprit) and the slot retires. The last live
    /// slot to exit during a drain finalizes the shutdown.
    fn supervise_worker(self: &Arc<Self>, index: usize, budget: u32) {
        let mut restarts = 0u32;
        loop {
            let claimed: Arc<Mutex<Option<QueuedJob>>> = Arc::new(Mutex::new(None));
            let worker = {
                let inner = Arc::clone(self);
                let claimed = Arc::clone(&claimed);
                std::thread::spawn(move || inner.worker_loop(&claimed))
            };
            if worker.join().is_ok() {
                break; // queue closed: a clean exit, not a crash
            }
            // The worker panicked. Recover the job it had claimed — the
            // slot lock is only ever held for a store, so even a poisoned
            // lock still yields the job.
            let orphan = claimed
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            restarts += 1;
            if restarts > budget {
                eprintln!(
                    "[rar-serve] worker {index}: panicked {restarts} times, retiring the slot"
                );
                if let Some(job) = orphan {
                    self.fail_orphaned_job(&job);
                }
                break;
            }
            self.counters.worker_restarts.inc();
            self.flight.note(
                "worker_restart",
                &format!("worker {index} respawned after a panic ({restarts}/{budget})"),
            );
            if let Some(job) = orphan {
                self.requeue_orphaned_job(job);
            }
        }
        // Slot accounting: readiness keys off live slots, and the last
        // slot out of a drain completes the shutdown (the queue is
        // already closed then, so no claim can race the handoff).
        let left = self.workers_alive.fetch_sub(1, Ordering::AcqRel) - 1;
        self.counters.workers.set(left as f64);
        if left == 0 && self.draining.is_canceled() {
            self.initiate_shutdown();
        }
    }

    /// The claim loop a supervised worker thread runs. Each claimed job
    /// is parked in the slot before it runs, so the supervisor can
    /// recover exactly this job if the thread dies under it.
    fn worker_loop(self: &Arc<Self>, claimed: &Mutex<Option<QueuedJob>>) {
        while let Some(job) = self.queue.claim() {
            if let Ok(mut slot) = claimed.lock() {
                *slot = Some(job.clone());
            }
            // The worker-panic fail-point fires here — after the claim is
            // parked — so chaos runs prove the requeue path converges.
            rar_chaos::maybe_panic(sites::SERVE_WORKER_PANIC);
            self.run_job(&job);
            if let Ok(mut slot) = claimed.lock() {
                *slot = None;
            }
        }
    }

    /// Returns a panicked worker's claimed job to the queue, resetting
    /// its handle so the next claim runs it from the top (sweep cells
    /// replay from the result cache; injections resume from their
    /// campaign journals). No journal write: the job's `submitted` event
    /// is still its latest durable word, exactly as if never claimed.
    fn requeue_orphaned_job(&self, job: QueuedJob) {
        if let Ok(Some(handle)) = self.handle(job.id) {
            if let Ok(mut st) = lock(&handle.state, "job state") {
                if !st.phase.is_terminal() {
                    st.phase = JobPhase::Queued;
                    st.completed = 0;
                    st.failed = 0;
                    st.results.clear();
                    st.error = None;
                }
            }
        }
        self.flight.note(
            "worker_requeue",
            &format!("job {} requeued after a worker panic", job.id),
        );
        self.queue.requeue(job);
    }

    /// Fails the job a retiring worker slot had claimed: after the full
    /// restart budget died under the same job, requeueing it again would
    /// only grind the remaining slots down too.
    fn fail_orphaned_job(&self, job: &QueuedJob) {
        if let Ok(Some(handle)) = self.handle(job.id) {
            if let Err(e) = self.dump_flight(&handle, "worker_retired") {
                eprintln!("[rar-serve] job {}: {e}", job.id);
            }
            if let Ok(mut st) = lock(&handle.state, "job state") {
                if !st.phase.is_terminal() {
                    st.phase = JobPhase::Failed;
                    st.error =
                        Some("worker thread panicked repeatedly running this job".to_owned());
                }
            }
        }
        self.queue.record_terminal(job.id, JobPhase::Failed);
        self.counters.failed.inc();
        if let Err(e) = self.refresh_active() {
            eprintln!("[rar-serve] job {}: {e}", job.id);
        }
    }

    fn handle(&self, id: u64) -> Result<Option<Arc<JobHandle>>, HttpError> {
        Ok(lock(&self.jobs, "jobs")?.get(&id).cloned())
    }

    /// Recomputes the queued-or-running gauge.
    fn refresh_active(&self) -> Result<(), HttpError> {
        let jobs = lock(&self.jobs, "jobs")?;
        let mut active = 0usize;
        for h in jobs.values() {
            if !lock(&h.state, "job state")?.phase.is_terminal() {
                active += 1;
            }
        }
        self.counters.active.set(active as f64);
        Ok(())
    }

    // ---- job execution -------------------------------------------------

    fn run_job(self: &Arc<Self>, job: &QueuedJob) {
        // Worker context, no stream to answer on: a poisoned lock is
        // logged and the job is abandoned in place (the queue journal
        // still holds it for the next daemon start).
        if let Err(e) = self.try_run_job(job) {
            eprintln!("[rar-serve] job {}: {e}", job.id);
        }
    }

    fn try_run_job(self: &Arc<Self>, job: &QueuedJob) -> Result<(), HttpError> {
        let Some(handle) = self.handle(job.id)? else {
            // Cannot happen: submit_route registers the handle under the
            // jobs lock before the queue can wake a worker, and startup
            // registers resumed handles before workers spawn. Logged
            // rather than silently dropped — the journal still holds the
            // job for the next start.
            eprintln!("[rar-serve] job {}: claimed with no handle", job.id);
            return Ok(());
        };
        {
            let mut st = lock(&handle.state, "job state")?;
            if st.phase != JobPhase::Queued {
                // Canceled between submission and claim; already journaled.
                return Ok(());
            }
            st.phase = JobPhase::Running;
            // The queue wait ends the moment a worker claims the job.
            let waited = handle.submitted.elapsed();
            st.queue_wait_nanos = Some(u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX));
            self.counters.queue_wait.set(waited.as_secs_f64());
        }
        self.spans.finish(handle.queue_span);
        let job_span = self.spans.start("job", handle.request_span);
        self.flight.note(
            "job_start",
            &format!("job {} [{}]", job.id, handle.spec.to_json()),
        );
        let phase = if handle.cancel.is_canceled() {
            JobPhase::Canceled
        } else {
            // The guard parents the per-cell spans the sweep path opens;
            // catch_unwind turns a panicking job into a Failed status plus
            // a flight-recorder dump instead of a dead worker thread.
            let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = ThreadParentGuard::enter(job_span);
                match &handle.spec.kind {
                    JobKind::Sweep(s) => self.run_sweep_job(&handle, job_span, s),
                    JobKind::Inject(i) => self.run_inject_job(&handle, i),
                }
            }));
            match ran {
                Ok(phase) => phase?,
                Err(payload) => {
                    let what = panic_message(payload.as_ref());
                    self.flight
                        .note("job_panic", &format!("job {}: {what}", job.id));
                    self.dump_flight(&handle, "panic")?;
                    let mut st = lock(&handle.state, "job state")?;
                    st.error = Some(format!("job panicked: {what}"));
                    JobPhase::Failed
                }
            }
        };
        self.spans.finish(job_span);
        self.spans.finish(handle.request_span);
        self.flight
            .note("job_done", &format!("job {} {}", job.id, phase.name()));
        lock(&handle.state, "job state")?.phase = phase;
        self.queue.record_terminal(job.id, phase);
        match phase {
            JobPhase::Completed => self.counters.completed.inc(),
            JobPhase::Canceled => self.counters.canceled.inc(),
            _ => self.counters.failed.inc(),
        }
        self.refresh_active()
    }

    /// Writes the flight recorder's post-mortem dump to the data
    /// directory and attaches it to the job's status document.
    fn dump_flight(&self, handle: &JobHandle, reason: &str) -> Result<(), HttpError> {
        let dump = self.flight.dump_json(reason);
        let path = self.data_dir.join(format!("flight-{}.json", handle.id));
        if let Err(e) = std::fs::write(&path, &dump) {
            eprintln!("[rar-serve] job {}: flight dump: {e}", handle.id);
        }
        lock(&handle.state, "job state")?.flight = Some(dump);
        Ok(())
    }

    /// Sweep jobs run cell by cell through the shared session: each cell
    /// lands in the live result list as soon as it finishes (partial
    /// results), and the cancel token is honored between cells. Dedup
    /// against concurrent jobs comes from the session's single-flight
    /// gate; dedup against past jobs from its result cache. Each cell
    /// gets a `cell` span under the job span; the session's profiler
    /// hangs the phase leaves off it via the thread-local parent.
    fn run_sweep_job(
        &self,
        handle: &JobHandle,
        job_span: SpanId,
        sweep: &SweepJob,
    ) -> Result<JobPhase, HttpError> {
        for cfg in sweep.configs() {
            if handle.cancel.is_canceled() {
                return Ok(JobPhase::Canceled);
            }
            let cell_span = self.spans.start("cell", job_span);
            let outcome = {
                let _guard = ThreadParentGuard::enter(cell_span);
                self.session.run(&cfg)
            };
            self.spans.finish(cell_span);
            match outcome {
                Ok(result) => {
                    let mut st = lock(&handle.state, "job state")?;
                    st.results.push(json::to_json_for(&cfg, &result));
                    st.completed += 1;
                }
                Err(e) => {
                    if matches!(e, RunError::Timeout { .. }) {
                        self.dump_flight(handle, "watchdog_timeout")?;
                    }
                    let mut st = lock(&handle.state, "job state")?;
                    st.failed += 1;
                    st.error = Some(format!("{}/{}: {e}", cfg.workload, cfg.technique));
                }
            }
        }
        let st = lock(&handle.state, "job state")?;
        Ok(if st.failed > 0 {
            JobPhase::Failed
        } else {
            JobPhase::Completed
        })
    }

    /// Inject jobs reproduce the CLI's paired OoO/RAR campaign and
    /// render the identical `rar-inject-tally-v1` document, journaling
    /// under the data directory so a daemon restart resumes
    /// injection-exactly.
    fn run_inject_job(
        &self,
        handle: &JobHandle,
        inject: &InjectJob,
    ) -> Result<JobPhase, HttpError> {
        let mut tallies = Vec::new();
        for technique in [Technique::Ooo, Technique::Rar] {
            if handle.cancel.is_canceled() {
                return Ok(JobPhase::Canceled);
            }
            let mut b = SimConfig::builder();
            b.workload(&inject.workload)
                .technique(technique)
                .warmup(inject.warmup)
                .instructions(inject.instructions);
            let cfg = b.build();
            let harness = match InjectionHarness::prepare(&cfg) {
                Ok(h) => h,
                Err(e) => {
                    let mut st = lock(&handle.state, "job state")?;
                    st.error = Some(e.to_string());
                    return Ok(JobPhase::Failed);
                }
            };
            let journal = self.data_dir.join(format!(
                "inject-{}.jsonl.{}",
                handle.id,
                technique.to_string().to_ascii_lowercase()
            ));
            let spec = CampaignSpec {
                samples: inject.samples,
                threads: inject.threads,
                journal: Some(journal),
                cancel: Some(handle.cancel.clone()),
                flight: Some(Arc::clone(&self.flight)),
                ..CampaignSpec::default()
            };
            let result = match run_injection_campaign(
                &harness,
                &spec,
                inject.inject_seed,
                None,
                Some(&self.registry),
            ) {
                Ok(r) => r,
                Err(e) => {
                    let mut st = lock(&handle.state, "job state")?;
                    st.error = Some(format!("campaign journal: {e}"));
                    return Ok(JobPhase::Failed);
                }
            };
            {
                let mut st = lock(&handle.state, "job state")?;
                st.completed += result.completed;
                st.failed += result.failed;
            }
            // A DUE is a detected-unrecoverable outcome — exactly the
            // post-mortem the flight recorder exists for.
            let dues: u64 = FaultTarget::ALL
                .iter()
                .map(|&t| {
                    let tt = result.tally.get(t);
                    tt.due_hang + tt.due_panic
                })
                .sum();
            if dues > 0 {
                self.flight.note(
                    "inject_due",
                    &format!("job {}: {dues} DUE outcomes under {technique}", handle.id),
                );
                self.dump_flight(handle, "inject_due")?;
            }
            if handle.cancel.is_canceled() && result.completed < inject.samples {
                return Ok(JobPhase::Canceled);
            }
            if result.failed > 0 {
                let mut st = lock(&handle.state, "job state")?;
                st.error = Some(format!(
                    "{} of {} injections failed under {technique}",
                    result.failed, inject.samples
                ));
                return Ok(JobPhase::Failed);
            }
            tallies.push(result.tally.to_json());
        }
        let document = format!(
            "{{\"schema\":\"rar-inject-tally-v1\",\"workload\":\"{}\",\
             \"inject_seed\":{},\"ooo\":{},\"rar\":{}}}\n",
            inject.workload, inject.inject_seed, tallies[0], tallies[1]
        );
        lock(&handle.state, "job state")?.results.push(document);
        Ok(JobPhase::Completed)
    }

    // ---- HTTP ----------------------------------------------------------

    fn handle_connection(self: &Arc<Self>, stream: &mut TcpStream) {
        // Per-request deadline: a peer that stops sending or reading
        // times the socket out instead of pinning this handler thread.
        let _ = stream.set_read_timeout(Some(self.request_timeout));
        let _ = stream.set_write_timeout(Some(self.request_timeout));
        let req = match read_request(stream) {
            Ok(req) => req,
            Err(RequestError::TooLarge(what)) => {
                let _ = respond(stream, 413, "text/plain", &format!("{what}\n"));
                return;
            }
            Err(RequestError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let _ = respond(stream, 408, "text/plain", "request deadline exceeded\n");
                return;
            }
            Err(e) => {
                let _ = respond(stream, 400, "text/plain", &format!("{e}\n"));
                return;
            }
        };
        // Connection-level chaos fires between parsing and routing: a
        // stall exercises client read timeouts, a drop leaves the client
        // a closed socket and no response (its request may or may not
        // have taken effect — exactly the ambiguity real networks give).
        rar_chaos::maybe_sleep(sites::SERVE_HTTP_CONN_STALL, 100);
        if rar_chaos::fire(sites::SERVE_HTTP_CONN_DROP).is_some() {
            return;
        }
        self.counters.http_requests.inc();
        let started = Instant::now();
        let outcome = self.route(stream, &req);
        // Request latency, base histogram plus the per-endpoint series
        // (the `events` label includes the lifetime of its chunked
        // stream — that is the honest number for a streaming endpoint).
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.counters.request_nanos.observe(nanos);
        let path = req.path.trim_matches('/').to_owned();
        let segs: Vec<&str> = path.split('/').collect();
        let label = endpoint_label(&req.method, &segs);
        self.registry
            .histogram(&export::labeled(
                names::SERVE_REQUEST_NANOS,
                &[("endpoint", label)],
            ))
            .observe(nanos);
        if let Err(e) = outcome {
            eprintln!(
                "[rar-serve] {} {}: response failed: {e}",
                req.method, req.path
            );
        }
    }

    fn route(self: &Arc<Self>, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
        let path = req.path.trim_matches('/').to_owned();
        let segs: Vec<&str> = path.split('/').collect();
        match (req.method.as_str(), segs.as_slice()) {
            ("POST", ["v1", "jobs"]) => self.submit_route(stream, &req.body),
            ("GET", ["metrics"]) => {
                let mut text = format!(
                    "{}{}",
                    export::to_prometheus(&self.registry),
                    self.session.telemetry_prometheus()
                );
                // Chaos-fabric injection counts by fail-point site: zero
                // series in production builds (the fabric compiles away)
                // and in runs with no plan installed.
                for (site, count) in rar_chaos::injected_counts() {
                    text.push_str(&format!(
                        "{}{{site=\"{site}\"}} {count}\n",
                        names::CHAOS_INJECTIONS
                    ));
                }
                respond(stream, 200, "text/plain; version=0.0.4", &text)
            }
            ("GET", ["healthz"]) => respond(stream, 200, "text/plain", "ok\n"),
            ("GET", ["readyz"]) => {
                // Liveness vs readiness: the process can be healthy while
                // refusing new work (draining) or unable to make progress
                // (every worker slot retired).
                if self.shutdown.is_canceled() || self.draining.is_canceled() {
                    respond(stream, 503, "text/plain", "draining\n")
                } else if self.workers_alive.load(Ordering::Acquire) == 0 {
                    respond(stream, 503, "text/plain", "no live workers\n")
                } else {
                    respond(stream, 200, "text/plain", "ready\n")
                }
            }
            ("GET", ["v1", "jobs", id]) => match self.parse_handle(id) {
                Ok(Some(handle)) => match handle.status_json() {
                    Ok(body) => respond(stream, 200, "application/json", &body),
                    Err(e) => respond_error(stream, e),
                },
                Ok(None) => respond(stream, 404, "text/plain", "no such job\n"),
                Err(e) => respond_error(stream, e),
            },
            ("GET", ["v1", "jobs", id, "results", index]) => self.result_route(stream, id, index),
            ("DELETE", ["v1", "jobs", id]) => self.cancel_route(stream, id),
            ("GET", ["v1", "jobs", id, "events"]) => self.events_route(stream, id),
            ("GET", ["v1", "jobs", id, "trace"]) => self.trace_route(stream, id),
            ("POST", ["v1", "shutdown"]) => {
                // `{"mode":"drain"}` finishes claimed jobs before
                // exiting; the default stops claiming immediately.
                let drain = field(&req.body, "mode") == Some("drain");
                let status = if drain {
                    "{\"status\":\"draining\"}\n"
                } else {
                    "{\"status\":\"shutting-down\"}\n"
                };
                respond(stream, 200, "application/json", status)?;
                if drain {
                    self.initiate_drain();
                } else {
                    self.initiate_shutdown();
                }
                Ok(())
            }
            _ => respond(stream, 404, "text/plain", "unknown route\n"),
        }
    }

    fn parse_handle(&self, id: &str) -> Result<Option<Arc<JobHandle>>, HttpError> {
        match id.parse() {
            Ok(id) => self.handle(id),
            Err(_) => Ok(None),
        }
    }

    fn submit_route(self: &Arc<Self>, stream: &mut TcpStream, body: &str) -> io::Result<()> {
        let spec = match JobSpec::parse(body) {
            Ok(spec) => spec,
            Err(e) => return respond(stream, 400, "text/plain", &format!("{e}\n")),
        };
        if self.shutdown.is_canceled() {
            return respond(stream, 503, "text/plain", "shutting down\n");
        }
        if self.draining.is_canceled() {
            return respond(stream, 503, "text/plain", "draining\n");
        }
        // Bounded-queue backpressure: refuse new work while the backlog
        // is at capacity instead of journaling unbounded liabilities.
        // The length check races concurrent submits, so the bound is
        // approximate by a few entries — fine for a load shedder.
        if self.queue.len() >= self.max_queued {
            self.counters.rejected.inc();
            return respond_with_headers(
                stream,
                429,
                "text/plain",
                &[("Retry-After", "1")],
                "queue full, retry later\n",
            );
        }
        // The jobs lock is taken BEFORE the job is enqueued and held
        // until its handle is registered: `queue.submit` wakes a worker,
        // and a worker that wins the wake race blocks in `handle()`
        // until the insert below lands instead of finding no handle and
        // silently dropping the job (which left it "queued" forever).
        let mut jobs = match lock(&self.jobs, "jobs") {
            Ok(jobs) => jobs,
            Err(e) => return respond_error(stream, e),
        };
        let job = match self.queue.submit(spec) {
            Ok(job) => job,
            Err(e) => {
                return respond(
                    stream,
                    503,
                    "text/plain",
                    &format!("queue journal write failed: {e}\n"),
                )
            }
        };
        jobs.insert(job.id, JobHandle::new(&job, &self.spans));
        drop(jobs);
        self.counters.submitted.inc();
        if let Err(e) = self.refresh_active() {
            return respond_error(stream, e);
        }
        respond(
            stream,
            201,
            "application/json",
            &format!("{{\"id\":{},\"status\":\"queued\"}}\n", job.id),
        )
    }

    fn result_route(&self, stream: &mut TcpStream, id: &str, index: &str) -> io::Result<()> {
        let handle = match self.parse_handle(id) {
            Ok(Some(handle)) => handle,
            Ok(None) => return respond(stream, 404, "text/plain", "no such job\n"),
            Err(e) => return respond_error(stream, e),
        };
        let Ok(index) = index.parse::<usize>() else {
            return respond(stream, 404, "text/plain", "bad result index\n");
        };
        let st = match lock(&handle.state, "job state") {
            Ok(st) => st,
            Err(e) => return respond_error(stream, e),
        };
        match st.results.get(index) {
            Some(doc) => {
                let doc = doc.clone();
                drop(st);
                respond(stream, 200, "application/json", &doc)
            }
            None => respond(stream, 404, "text/plain", "no such result (yet)\n"),
        }
    }

    /// `GET /v1/jobs/{id}/trace`: the job's causal span tree as a Chrome
    /// Trace Event document — request → queue wait / job → cell → phase,
    /// viewable live while the job runs (open spans are clamped to now).
    fn trace_route(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        let handle = match self.parse_handle(id) {
            Ok(Some(handle)) => handle,
            Ok(None) => return respond(stream, 404, "text/plain", "no such job\n"),
            Err(e) => return respond_error(stream, e),
        };
        let now = self.spans.now_nanos();
        let slices: Vec<SpanSlice> = self
            .spans
            .subtree(handle.request_span)
            .into_iter()
            .map(|s| SpanSlice {
                id: s.id,
                parent: s.parent,
                name: s.name,
                start_nanos: s.start_nanos,
                dur_nanos: s
                    .dur_nanos
                    .unwrap_or_else(|| now.saturating_sub(s.start_nanos)),
            })
            .collect();
        respond(
            stream,
            200,
            "application/json",
            &spans_to_chrome_json(&slices),
        )
    }

    fn cancel_route(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        let handle = match self.parse_handle(id) {
            Ok(Some(handle)) => handle,
            Ok(None) => return respond(stream, 404, "text/plain", "no such job\n"),
            Err(e) => return respond_error(stream, e),
        };
        handle.cancel.cancel();
        let phase = {
            let mut st = match lock(&handle.state, "job state") {
                Ok(st) => st,
                Err(e) => return respond_error(stream, e),
            };
            if st.phase == JobPhase::Queued {
                // Not yet claimed: unqueue and finalize here. A worker
                // that raced us and claimed it first will see Running and
                // finalize through the cooperative path instead.
                st.phase = JobPhase::Canceled;
                self.queue.remove(handle.id);
                self.queue.record_terminal(handle.id, JobPhase::Canceled);
                self.counters.canceled.inc();
            }
            st.phase
        };
        if let Err(e) = self.refresh_active() {
            return respond_error(stream, e);
        }
        respond(
            stream,
            200,
            "application/json",
            &format!(
                "{{\"id\":{},\"status\":\"{}\",\"canceling\":true}}\n",
                handle.id,
                phase.name()
            ),
        )
    }

    /// The chunked progress stream: one `ProgressReporter` heartbeat
    /// line per interval while the job runs, then the reporter's final
    /// line and the job's terminal status document.
    fn events_route(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        let handle = match self.parse_handle(id) {
            Ok(Some(handle)) => handle,
            Ok(None) => return respond(stream, 404, "text/plain", "no such job\n"),
            Err(e) => return respond_error(stream, e),
        };
        let total = match lock(&handle.state, "job state") {
            Ok(st) => st.total,
            Err(e) => return respond_error(stream, e),
        };
        let reporter = ProgressReporter::new(total, Duration::from_millis(200));
        start_chunked(stream, 200, "text/plain")?;
        write_chunk(
            stream,
            &format!("job {} [{}]\n", handle.id, handle.spec.to_json()),
        )?;
        loop {
            // Once the chunked stream has started a status line can no
            // longer change; a poisoned lock ends the stream with an
            // explanatory chunk instead.
            let (phase, snap) = match handle.snapshot() {
                Ok(s) => s,
                Err(e) => {
                    write_chunk(stream, &format!("{e}\n"))?;
                    break;
                }
            };
            if phase.is_terminal() {
                write_chunk(stream, &format!("{}\n", reporter.final_line(&snap)))?;
                write_chunk(stream, &format!("job {} {}\n", handle.id, phase.name()))?;
                break;
            }
            if self.shutdown.is_canceled() || self.draining.is_canceled() {
                // A drain closes the queue, so a still-queued job would
                // never reach terminal: end the stream rather than hang.
                write_chunk(stream, "server shutting down\n")?;
                break;
            }
            if let Some(line) = reporter.heartbeat(&snap) {
                write_chunk(stream, &format!("{line}\n"))?;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        end_chunks(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_serve_metric_is_registered_at_startup() {
        let reg = MetricsRegistry::new();
        let _counters = ServeCounters::register(&reg);
        let text = export::to_prometheus(&reg);
        for name in names::SERVE_ALL {
            assert!(text.contains(name), "{name} missing from first scrape");
        }
    }

    #[test]
    fn escape_json_handles_quotes_and_control_characters() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\t\u{1}"), "line\\nbreak\\t\\u0001");
    }
}
