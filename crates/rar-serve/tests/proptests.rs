// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property twin of `tests/torn_tail.rs`: for a randomly generated
//! submit/terminal history truncated at a random byte offset, journal
//! recovery must succeed, resume exactly the jobs whose records landed
//! complete, and leave the file appendable. The exhaustive
//! every-offset sweep in `tests/torn_tail.rs` always runs.

use proptest::prelude::*;
use rar_serve::{JobKind, JobPhase, JobQueue, JobSpec, SweepJob};
use rar_telemetry::Counter;

fn spec(priority: i64) -> JobSpec {
    JobSpec {
        priority,
        kind: JobKind::Sweep(SweepJob {
            workloads: vec!["mcf".to_owned()],
            techniques: vec![rar_core::Technique::Rar],
            seeds: vec![1],
            instructions: 1_000,
            warmup: 100,
        }),
    }
}

/// One step of journal history: submit a new job, or (when possible)
/// record a terminal event for the live job picked by `pick`.
#[derive(Debug, Clone, Copy)]
enum Step {
    Submit { priority: i64 },
    Finish { pick: usize },
}

fn history_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..10).prop_map(|priority| Step::Submit { priority }),
            (0usize..8).prop_map(|pick| Step::Finish { pick }),
        ],
        1..24,
    )
}

proptest! {
    #[test]
    fn any_truncation_of_any_history_recovers_the_complete_prefix(
        steps in history_strategy(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "rar-torn-prop-{}-{}",
            std::process::id(),
            cut_frac.to_bits(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let journal = dir.join("queue.jsonl");

        // Replay the generated history through a real journaled queue,
        // keeping a model of the live set after every *record*.
        let mut live: Vec<u64> = Vec::new();
        let mut after_record: Vec<Vec<u64>> = Vec::new();
        {
            let (queue, _) = JobQueue::open(Some(&journal), 1, Counter::default())
                .expect("open fresh journal");
            for step in &steps {
                match *step {
                    Step::Submit { priority } => {
                        let id = queue.submit(spec(priority)).expect("submit").id;
                        live.push(id);
                    }
                    Step::Finish { pick } => {
                        if live.is_empty() {
                            continue; // no record written
                        }
                        let id = live.remove(pick % live.len());
                        queue.record_terminal(id, JobPhase::Completed);
                    }
                }
                after_record.push(live.clone());
            }
        }

        let bytes = std::fs::read(&journal).expect("journal bytes");
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac).round() as usize;
        let cut = cut.min(bytes.len());

        // The expected live set: the state after the last record whose
        // content (newline optional) fits inside the cut.
        let newlines: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == b'\n').then_some(i))
            .collect();
        let complete = newlines.iter().filter(|&&nl| cut >= nl).count();
        let mut expected = if complete == 0 {
            Vec::new()
        } else {
            after_record[complete - 1].clone()
        };
        expected.sort_unstable();

        std::fs::write(&journal, &bytes[..cut]).expect("truncate");
        let (queue, resumed) = JobQueue::open(Some(&journal), 1, Counter::default())
            .expect("reopen truncated journal");
        let mut got: Vec<u64> = resumed.iter().map(|j| j.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected, "cut {} of {}", cut, bytes.len());

        // Recovery must leave the journal appendable: a fresh submit
        // lands on a clean line and survives another replay.
        let id = queue.submit(spec(0)).expect("append after recovery").id;
        drop(queue);
        let (_, resumed) = JobQueue::open(Some(&journal), 1, Counter::default())
            .expect("reopen after append");
        prop_assert!(resumed.iter().any(|j| j.id == id));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
