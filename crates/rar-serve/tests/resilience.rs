//! Resilience surface tests against a live daemon — no chaos feature
//! required. Covers the operational hardening directly: liveness and
//! readiness probes, graceful drain (in-flight jobs finish, journal
//! records the terminal event), bounded-queue backpressure (`429` +
//! `Retry-After`), and per-request deadlines (`408`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rar_serve::{CampaignServer, ServeClient, ServeOptions};
use rar_telemetry::names;

/// A unique scratch dir per test; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("rar-resil-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn boot_with(
    scratch: &Scratch,
    opts: impl FnOnce(&mut ServeOptions),
) -> (CampaignServer, ServeClient) {
    let mut o = ServeOptions {
        data_dir: scratch.0.clone(),
        ..ServeOptions::default()
    };
    opts(&mut o);
    let server = CampaignServer::start(o).expect("server start");
    let client = ServeClient::new(server.addr().to_string());
    (server, client)
}

fn submitted_id(body: &str) -> u64 {
    rar_serve::jobs::u64_field(body, "id")
        .expect("id parses")
        .expect("id present")
}

fn prom_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

const SPEC: &str = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"rar\",\
                    \"instructions\":2000,\"warmup\":300}";

#[test]
fn healthz_is_always_ok_and_readyz_tracks_workers() {
    let scratch = Scratch::new("probes");
    let (server, client) = boot_with(&scratch, |o| o.workers = 1);

    let health = client.request("GET", "/healthz", "").expect("healthz");
    assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

    let ready = client.request("GET", "/readyz", "").expect("readyz");
    assert_eq!(ready.status, 200, "{}", ready.body);
    server.stop();

    // A worker-less daemon accepts and journals but cannot make
    // progress: alive, not ready.
    let scratch = Scratch::new("probes-noworkers");
    let (server, client) = boot_with(&scratch, |o| o.workers = 0);
    let health = client.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200);
    let ready = client.request("GET", "/readyz", "").expect("readyz");
    assert_eq!(ready.status, 503, "{}", ready.body);
    assert!(ready.body.contains("no live workers"), "{}", ready.body);
    server.stop();
}

#[test]
fn drain_finishes_inflight_work_then_exits() {
    let scratch = Scratch::new("drain");
    let (server, client) = boot_with(&scratch, |o| o.workers = 1);

    let resp = client.request("POST", "/v1/jobs", SPEC).expect("submit");
    assert_eq!(resp.status, 201, "{}", resp.body);
    let id = submitted_id(&resp.body);

    // Wait until the worker has claimed the job, so the drain really
    // does have in-flight work to finish.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client
            .request("GET", &format!("/v1/jobs/{id}"), "")
            .expect("status");
        if !status.body.contains("\"status\":\"queued\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never left the queue");
        std::thread::sleep(Duration::from_millis(10));
    }

    let resp = client
        .request("POST", "/v1/shutdown", "{\"mode\":\"drain\"}")
        .expect("drain request");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(
        resp.body.contains("\"status\":\"draining\""),
        "{}",
        resp.body
    );

    // While draining the daemon stays alive but reports not-ready. The
    // drain may complete between these two requests, so a refused
    // connection is also acceptable.
    if let Ok(ready) = client.request("GET", "/readyz", "") {
        assert_eq!(ready.status, 503, "{}", ready.body);
    }

    // The drain must let the claimed job finish and then stop the
    // server on its own — no explicit stop() here.
    server.wait();

    // The journal's last word on the job must be a terminal event: the
    // drain completed it rather than abandoning it mid-run.
    let journal = std::fs::read_to_string(scratch.0.join("queue.jsonl")).expect("journal readable");
    assert!(
        journal.contains("\"event\":\"completed\""),
        "journal lacks the terminal event:\n{journal}"
    );
}

#[test]
fn full_queue_rejects_submissions_with_retry_after() {
    let scratch = Scratch::new("backpressure");
    // No workers: submissions stay queued, so the bound is hit exactly.
    let (server, client) = boot_with(&scratch, |o| {
        o.workers = 0;
        o.max_queued = 2;
    });

    for _ in 0..2 {
        let resp = client.request("POST", "/v1/jobs", SPEC).expect("submit");
        assert_eq!(resp.status, 201, "{}", resp.body);
    }
    let refused = client.request("POST", "/v1/jobs", SPEC).expect("submit");
    assert_eq!(refused.status, 429, "{}", refused.body);
    assert_eq!(refused.header("retry-after"), Some("1"));

    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    assert!(
        (prom_value(&metrics.body, names::SERVE_JOBS_REJECTED) - 1.0).abs() < f64::EPSILON,
        "rejection counter must record the refused submit"
    );
    server.stop();
}

#[test]
fn stalled_requests_hit_the_deadline_with_408() {
    let scratch = Scratch::new("deadline");
    let (server, _client) = boot_with(&scratch, |o| {
        o.workers = 0;
        o.request_timeout = Duration::from_millis(200);
    });

    // Open a raw socket, send half a request, and stall. The daemon
    // must give up at the deadline instead of pinning the handler
    // thread forever.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
        .expect("partial request");
    stream.flush().expect("flush");

    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .expect("read status");
    assert!(
        line.starts_with("HTTP/1.1 408"),
        "expected a 408 deadline response, got {line:?}"
    );
    server.stop();
}
