//! Exhaustive torn-tail recovery: a queue journal truncated at *every*
//! byte offset must reopen successfully and resume exactly the jobs
//! whose records survived complete — a torn final record is discarded,
//! never misread, and the journal stays appendable afterwards.
//!
//! This is the crash model the journal is designed for: a kill mid-write
//! leaves a prefix of the file (plus at most one partial line), so
//! `0..=len` truncation sweeps every possible crash point.

use std::path::PathBuf;

use rar_serve::{JobKind, JobPhase, JobQueue, JobSpec, SweepJob};
use rar_telemetry::Counter;

/// A unique scratch dir per test; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("rar-torn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spec(priority: i64) -> JobSpec {
    JobSpec {
        priority,
        kind: JobKind::Sweep(SweepJob {
            workloads: vec!["mcf".to_owned()],
            techniques: vec![rar_core::Technique::Rar],
            seeds: vec![1],
            instructions: 1_000,
            warmup: 100,
        }),
    }
}

/// One journaled event as the test understands it, with the byte index
/// of its terminating newline: the record is fully on disk at cut `c`
/// iff `c >= newline` (the newline itself is allowed to be torn off).
struct Event {
    newline: usize,
    submitted: bool,
    id: u64,
}

fn events_of(bytes: &[u8]) -> Vec<Event> {
    let text = String::from_utf8(bytes.to_vec()).expect("journal is UTF-8");
    let mut events = Vec::new();
    let mut start = 0;
    while let Some(rel) = text[start..].find('\n') {
        let newline = start + rel;
        let line = &text[start..newline];
        let id = rar_serve::jobs::u64_field(line, "id")
            .expect("id parses")
            .expect("id present");
        events.push(Event {
            newline,
            submitted: line.contains("\"event\":\"submitted\""),
            id,
        });
        start = newline + 1;
    }
    events
}

/// The job ids a replay of the first `cut` bytes must resume.
fn expected_live(events: &[Event], cut: usize) -> Vec<u64> {
    let mut live: Vec<u64> = Vec::new();
    for ev in events.iter().filter(|e| cut >= e.newline) {
        live.retain(|&id| id != ev.id);
        if ev.submitted {
            live.push(ev.id);
        }
    }
    live.sort_unstable();
    live
}

#[test]
fn every_truncation_point_recovers_exactly_the_complete_records() {
    let scratch = Scratch::new("sweep");
    let journal = scratch.0.join("queue.jsonl");

    // Three submissions and one terminal event, fsynced per record so
    // the bytes on disk are the full history.
    {
        let (queue, _) = JobQueue::open(Some(&journal), 1, Counter::default()).expect("open");
        let ids: Vec<u64> = (0..3)
            .map(|p| queue.submit(spec(p)).expect("submit").id)
            .collect();
        queue.record_terminal(ids[1], JobPhase::Completed);
    }
    let bytes = std::fs::read(&journal).expect("journal bytes");
    let events = events_of(&bytes);
    assert_eq!(events.len(), 4, "three submits and one terminal");

    let cut_path = scratch.0.join("cut.jsonl");
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncation");
        let (_, resumed) = JobQueue::open(Some(&cut_path), 1, Counter::default())
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e}"));
        let mut got: Vec<u64> = resumed.iter().map(|j| j.id).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            expected_live(&events, cut),
            "wrong live set after truncating to {cut} of {} bytes",
            bytes.len()
        );
    }
}

#[test]
fn a_torn_journal_stays_appendable_after_recovery() {
    let scratch = Scratch::new("append");
    let journal = scratch.0.join("queue.jsonl");
    {
        let (queue, _) = JobQueue::open(Some(&journal), 1, Counter::default()).expect("open");
        queue.submit(spec(1)).expect("submit");
        queue.submit(spec(2)).expect("submit");
    }
    let bytes = std::fs::read(&journal).expect("journal bytes");
    // Cut mid-way through the second record: a torn, unparseable tail.
    let first_nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("first newline");
    let cut = first_nl + 1 + (bytes.len() - first_nl - 1) / 2;
    std::fs::write(&journal, &bytes[..cut]).expect("truncate");

    // Recovery drops the torn record; the journal must accept new
    // appends, and a further reopen must see them.
    let new_id;
    {
        let (queue, resumed) =
            JobQueue::open(Some(&journal), 1, Counter::default()).expect("reopen torn");
        assert_eq!(resumed.len(), 1, "only the complete record survives");
        new_id = queue.submit(spec(3)).expect("append after recovery").id;
        assert!(new_id > resumed[0].id, "ids keep growing past the journal");
    }
    let (_, resumed) = JobQueue::open(Some(&journal), 1, Counter::default()).expect("reopen again");
    let ids: Vec<u64> = resumed.iter().map(|j| j.id).collect();
    assert!(
        ids.contains(&new_id),
        "post-recovery append lost on reopen: {ids:?}"
    );
}
