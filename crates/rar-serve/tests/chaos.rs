// Chaos builds only: `cargo test -p rar-serve --features chaos --test chaos`.
#![cfg(feature = "chaos")]
//! End-to-end convergence under the chaos fabric: with each daemon-side
//! fail-point class armed on a deterministic schedule — queue-journal
//! torn/short/fsync faults, worker panics, HTTP connection drops and
//! stalls — a seeded campaign must still terminate with results
//! byte-identical to a clean run. Chaos may cost retries, worker
//! restarts and reconnects; it must never change bytes.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use rar_chaos::{sites, ChaosPlan};
use rar_serve::{CampaignServer, ServeClient, ServeOptions};
use rar_telemetry::names;

/// The chaos fabric is process-global; armed tests serialize on this.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unique scratch dir per test; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rar-serve-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const SPEC: &str = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"rar\",\
                    \"instructions\":2000,\"warmup\":300}";

fn submitted_id(body: &str) -> u64 {
    rar_serve::jobs::u64_field(body, "id")
        .expect("id parses")
        .expect("id present")
}

fn prom_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

/// Runs one seeded single-cell campaign end to end against a fresh
/// daemon and returns (scratch, result document, final /metrics body).
/// The retrying client is used throughout so HTTP-layer chaos is
/// absorbed the way a production caller would absorb it.
fn run_campaign(tag: &str) -> (Scratch, String, String) {
    let scratch = Scratch::new(tag);
    let server = CampaignServer::start(ServeOptions {
        data_dir: scratch.0.clone(),
        workers: 1,
        fsync_every: 1,
        ..ServeOptions::default()
    })
    .expect("server start");
    let client = ServeClient::new(server.addr().to_string());

    let resp = client
        .request_with_retry("POST", "/v1/jobs", SPEC)
        .expect("submit");
    assert_eq!(resp.status, 201, "{}", resp.body);
    let id = submitted_id(&resp.body);

    let done = client
        .wait_for_job(id, Duration::from_secs(120))
        .expect("job terminal");
    assert!(
        done.body.contains("\"status\":\"completed\""),
        "job did not complete: {}",
        done.body
    );

    let result = client
        .request_with_retry("GET", &format!("/v1/jobs/{id}/results/0"), "")
        .expect("result fetch");
    assert_eq!(result.status, 200, "{}", result.body);
    let metrics = client
        .request_with_retry("GET", "/metrics", "")
        .expect("metrics");
    server.stop();
    (scratch, result.body, metrics.body)
}

/// The baseline document every chaos variant must reproduce.
fn golden() -> String {
    rar_chaos::clear();
    let (_scratch, doc, _metrics) = run_campaign("golden");
    doc
}

fn injected(site: &str) -> u64 {
    rar_chaos::injected_counts()
        .into_iter()
        .find(|(s, _)| s == site)
        .map_or(0, |(_, n)| n)
}

/// Runs the campaign with `plan` armed, asserts each listed site
/// actually fired, clears chaos, and returns (scratch, doc).
fn run_under(plan: &ChaosPlan, tag: &str, must_fire: &[&str]) -> (Scratch, String) {
    rar_chaos::install(plan);
    let (scratch, doc, _metrics) = run_campaign(tag);
    let fired: Vec<(&str, u64)> = must_fire.iter().map(|s| (*s, injected(s))).collect();
    rar_chaos::clear();
    for (site, n) in fired {
        assert!(n > 0, "fail-point {site} never fired");
    }
    (scratch, doc)
}

/// After a chaotic run, the journal on disk must still replay cleanly:
/// a fresh worker-less daemon opens it without resuming phantom jobs
/// (the only job reached a journaled terminal state).
fn assert_journal_clean(scratch: &Scratch) {
    let server = CampaignServer::start(ServeOptions {
        data_dir: scratch.0.clone(),
        workers: 0,
        ..ServeOptions::default()
    })
    .expect("reopen");
    let client = ServeClient::new(server.addr().to_string());
    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    let resumed = prom_value(&metrics.body, names::SERVE_JOBS_RESUMED);
    server.stop();
    assert!(
        resumed.abs() < f64::EPSILON,
        "journal replay resurrected a finished job (resumed={resumed})"
    );
}

#[test]
fn torn_journal_writes_converge_byte_identical() {
    let _guard = lock();
    let clean = golden();
    let plan = ChaosPlan::single(sites::SERVE_QUEUE_JOURNAL_TORN, 2, 0).with_seed(7);
    let (scratch, doc) = run_under(&plan, "torn", &[sites::SERVE_QUEUE_JOURNAL_TORN]);
    assert_eq!(clean, doc, "results diverged under torn journal writes");
    assert_journal_clean(&scratch);
}

#[test]
fn short_journal_writes_converge_byte_identical() {
    let _guard = lock();
    let clean = golden();
    let plan = ChaosPlan::single(sites::SERVE_QUEUE_JOURNAL_SHORT, 2, 0).with_seed(11);
    let (scratch, doc) = run_under(&plan, "short", &[sites::SERVE_QUEUE_JOURNAL_SHORT]);
    assert_eq!(clean, doc, "results diverged under short journal writes");
    assert_journal_clean(&scratch);
}

#[test]
fn journal_fsync_failures_converge_byte_identical() {
    let _guard = lock();
    let clean = golden();
    let plan = ChaosPlan::single(sites::SERVE_QUEUE_JOURNAL_FSYNC, 2, 0).with_seed(13);
    let (scratch, doc) = run_under(&plan, "fsync", &[sites::SERVE_QUEUE_JOURNAL_FSYNC]);
    assert_eq!(clean, doc, "results diverged under fsync failures");
    assert_journal_clean(&scratch);
}

#[test]
fn panicked_workers_are_restarted_and_converge_byte_identical() {
    let _guard = lock();
    let clean = golden();

    // The first claim of the job panics the worker mid-run; the
    // supervisor must recover the claimed job, requeue it, and restart
    // the worker, which then runs it to completion.
    rar_chaos::install(&ChaosPlan::single(sites::SERVE_WORKER_PANIC, 2, 0).with_seed(17));
    // The panic escapes through the test process's hook; silence it so
    // the (expected) worker death doesn't spam the test log.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (_scratch, doc, metrics) = run_campaign("panic");
    std::panic::set_hook(hook);
    let fired = injected(sites::SERVE_WORKER_PANIC);
    rar_chaos::clear();

    assert!(fired > 0, "worker-panic fail-point never fired");
    assert!(
        prom_value(&metrics, names::SERVE_WORKER_RESTARTS) >= 1.0,
        "supervisor never recorded a restart"
    );
    assert_eq!(clean, doc, "results diverged across a worker restart");
}

#[test]
fn dropped_and_stalled_connections_converge_byte_identical() {
    let _guard = lock();
    let clean = golden();

    // Every third connection is dropped before routing and every third
    // (offset 1) stalls briefly; the hardened client retries and
    // reattaches, and because the drop fires before the request is
    // routed, retried submits are never half-processed.
    let plan = ChaosPlan::single(sites::SERVE_HTTP_CONN_DROP, 3, 0)
        .with_site(sites::SERVE_HTTP_CONN_STALL, 3, 1)
        .with_seed(19);
    let (_scratch, doc) = run_under(
        &plan,
        "http",
        &[sites::SERVE_HTTP_CONN_DROP, sites::SERVE_HTTP_CONN_STALL],
    );
    assert_eq!(clean, doc, "results diverged under connection chaos");
}
