//! End-to-end tests against a live daemon on an ephemeral port.
//!
//! Each test boots a [`CampaignServer`] on `127.0.0.1:0` with its own
//! data directory, talks to it over real sockets through [`ServeClient`],
//! and shuts it down. Covers the acceptance criteria directly: sweep
//! results over HTTP are byte-identical to the direct engine output,
//! concurrent overlapping grids simulate each shared cell exactly once,
//! cancellation is cooperative and cache-consistent, and a restarted
//! daemon resumes its journaled queue.

use std::path::PathBuf;
use std::time::Duration;

use rar_serve::{CampaignServer, ServeClient, ServeOptions};
use rar_sim::{json, SimConfig, Simulation};
use rar_telemetry::names;

/// A unique scratch dir per test; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("rar-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn boot(scratch: &Scratch, workers: usize) -> (CampaignServer, ServeClient) {
    let server = CampaignServer::start(ServeOptions {
        data_dir: scratch.0.clone(),
        workers,
        ..ServeOptions::default()
    })
    .expect("server start");
    let client = ServeClient::new(server.addr().to_string());
    (server, client)
}

fn submitted_id(body: &str) -> u64 {
    rar_serve::jobs::u64_field(body, "id")
        .expect("id parses")
        .expect("id present")
}

#[test]
fn sweep_over_http_is_byte_identical_to_the_engine() {
    let scratch = Scratch::new("bytes");
    let (server, client) = boot(&scratch, 1);

    let spec = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"rar\",\
                \"instructions\":2000,\"warmup\":300}";
    let resp = client.request("POST", "/v1/jobs", spec).expect("submit");
    assert_eq!(resp.status, 201, "{}", resp.body);
    let id = submitted_id(&resp.body);

    let done = client
        .wait_for_job(id, Duration::from_secs(120))
        .expect("job finishes");
    assert!(
        done.body.contains("\"status\":\"completed\""),
        "{}",
        done.body
    );

    let over_http = client
        .request("GET", &format!("/v1/jobs/{id}/results/0"), "")
        .expect("result fetch");
    assert_eq!(over_http.status, 200);

    let cfg = {
        let mut b = SimConfig::builder();
        b.workload("mcf")
            .technique(rar_core::Technique::Rar)
            .warmup(300)
            .instructions(2000);
        b.build()
    };
    let direct = Simulation::run(&cfg);
    assert_eq!(
        over_http.body,
        json::to_json_for(&cfg, &direct),
        "HTTP result must be byte-identical to the engine's JSON"
    );

    server.stop();
}

#[test]
fn concurrent_overlapping_grids_share_each_cell() {
    let scratch = Scratch::new("dedup");
    let (server, client) = boot(&scratch, 2);

    // Two 2-cell grids overlapping on every cell, submitted back to
    // back; with two workers they run concurrently. Whether each cell
    // dedups through the single-flight gate or the result cache, the
    // engine must simulate each unique cell exactly once.
    let spec = "{\"kind\":\"sweep\",\"workloads\":[\"mcf\"],\
                \"techniques\":[\"ooo\",\"rar\"],\"seeds\":[1],\
                \"instructions\":2000,\"warmup\":300}";
    let a = client.request("POST", "/v1/jobs", spec).expect("submit a");
    let b = client.request("POST", "/v1/jobs", spec).expect("submit b");
    assert_eq!((a.status, b.status), (201, 201));

    for resp in [&a, &b] {
        let done = client
            .wait_for_job(submitted_id(&resp.body), Duration::from_secs(120))
            .expect("job finishes");
        assert!(
            done.body.contains("\"status\":\"completed\""),
            "{}",
            done.body
        );
        // Both jobs still get full results (one document per cell).
        assert_eq!(
            done.body.matches("\"config_fingerprint\"").count(),
            2,
            "{}",
            done.body
        );
    }

    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    let simulated = prom_value(&metrics.body, names::SWEEP_CELLS_SIMULATED);
    assert_eq!(
        simulated, 2.0,
        "2 unique cells across 2 overlapping jobs must simulate exactly twice:\n{}",
        metrics.body
    );

    server.stop();
}

#[test]
fn burst_submissions_all_run_despite_the_claim_wake_race() {
    let scratch = Scratch::new("burst");
    let (server, client) = boot(&scratch, 2);

    // Regression test: `queue.submit` wakes a worker before submit_route
    // used to register the job handle; a worker winning that race found
    // no handle and silently dropped the job, leaving it "queued"
    // forever (observed deterministically against the live binary). A
    // back-to-back burst maximizes the exposure; every job must settle.
    let spec = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"ooo\",\
                \"instructions\":500,\"warmup\":100}";
    let mut ids = Vec::new();
    for _ in 0..8 {
        let resp = client.request("POST", "/v1/jobs", spec).expect("submit");
        assert_eq!(resp.status, 201, "{}", resp.body);
        ids.push(submitted_id(&resp.body));
    }
    for id in ids {
        let done = client
            .wait_for_job(id, Duration::from_secs(120))
            .expect("burst job must not be dropped by the wake race");
        assert!(
            done.body.contains("\"status\":\"completed\""),
            "job {id}: {}",
            done.body
        );
    }

    server.stop();
}

#[test]
fn canceling_a_queued_job_never_runs_it() {
    let scratch = Scratch::new("cancel");
    // No workers: everything stays queued, cancellation is deterministic.
    let (server, client) = boot(&scratch, 0);

    let spec = "{\"kind\":\"inject\",\"workload\":\"mcf\",\"samples\":50,\
                \"inject_seed\":7,\"instructions\":2000,\"warmup\":300}";
    let id = submitted_id(
        &client
            .request("POST", "/v1/jobs", spec)
            .expect("submit")
            .body,
    );

    let gone = client
        .request("DELETE", &format!("/v1/jobs/{id}"), "")
        .expect("cancel");
    assert_eq!(gone.status, 200);
    let status = client
        .request("GET", &format!("/v1/jobs/{id}"), "")
        .expect("status");
    assert!(
        status.body.contains("\"status\":\"canceled\""),
        "{}",
        status.body
    );

    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(prom_value(&metrics.body, names::SERVE_JOBS_CANCELED), 1.0);
    assert_eq!(prom_value(&metrics.body, names::SERVE_JOBS_ACTIVE), 0.0);

    server.stop();
}

#[test]
fn restart_resumes_the_journaled_queue() {
    let scratch = Scratch::new("resume");
    let spec = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"ooo\",\
                \"instructions\":2000,\"warmup\":300}";

    // Phase 1: a worker-less daemon accepts the job and is stopped with
    // the job still queued — the journal is the only survivor.
    let id = {
        let (server, client) = boot(&scratch, 0);
        let id = submitted_id(
            &client
                .request("POST", "/v1/jobs", spec)
                .expect("submit")
                .body,
        );
        server.stop();
        id
    };

    // Phase 2: a fresh daemon on the same data dir resumes and runs it.
    let (server, client) = boot(&scratch, 1);
    let done = client
        .wait_for_job(id, Duration::from_secs(120))
        .expect("resumed job finishes");
    assert!(
        done.body.contains("\"status\":\"completed\""),
        "{}",
        done.body
    );

    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(prom_value(&metrics.body, names::SERVE_JOBS_RESUMED), 1.0);

    server.stop();
}

#[test]
fn events_stream_heartbeats_until_terminal() {
    let scratch = Scratch::new("events");
    let (server, client) = boot(&scratch, 1);

    let spec = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"ooo\",\
                \"instructions\":2000,\"warmup\":300}";
    let id = submitted_id(
        &client
            .request("POST", "/v1/jobs", spec)
            .expect("submit")
            .body,
    );

    let mut chunks = Vec::new();
    let resp = client
        .stream("GET", &format!("/v1/jobs/{id}/events"), "", &mut |c| {
            chunks.push(c.to_owned());
        })
        .expect("events stream");
    assert_eq!(resp.status, 200);
    assert!(!chunks.is_empty());
    assert!(
        resp.body.contains(&format!("job {id} completed")),
        "{}",
        resp.body
    );

    server.stop();
}

#[test]
fn unknown_routes_and_jobs_are_404s_and_bad_specs_400() {
    let scratch = Scratch::new("errors");
    let (server, client) = boot(&scratch, 0);

    assert_eq!(client.request("GET", "/nope", "").expect("req").status, 404);
    assert_eq!(
        client
            .request("GET", "/v1/jobs/999", "")
            .expect("req")
            .status,
        404
    );
    let bad = client
        .request("POST", "/v1/jobs", "{\"kind\":\"dance\"}")
        .expect("req");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("dance"), "{}", bad.body);

    server.stop();
}

#[test]
fn trace_endpoint_nests_request_job_cell_phase() {
    let scratch = Scratch::new("trace");
    let (server, client) = boot(&scratch, 1);

    let spec = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"rar\",\
                \"instructions\":2000,\"warmup\":300}";
    let id = submitted_id(
        &client
            .request("POST", "/v1/jobs", spec)
            .expect("submit")
            .body,
    );
    let done = client
        .wait_for_job(id, Duration::from_secs(120))
        .expect("job finishes");
    assert!(
        done.body.contains("\"status\":\"completed\""),
        "{}",
        done.body
    );

    let trace = client
        .request("GET", &format!("/v1/jobs/{id}/trace"), "")
        .expect("trace fetch");
    assert_eq!(trace.status, 200);
    rar_trace::jsonv::validate(&trace.body).expect("trace is valid JSON");

    // The span tree nests request → queue_wait / job → cell → phase.
    let (request_id, request_parent) = span_ids(&trace.body, "request");
    let (queue_id, queue_parent) = span_ids(&trace.body, "queue_wait");
    let (job_id, job_parent) = span_ids(&trace.body, "job");
    let (cell_id, cell_parent) = span_ids(&trace.body, "cell");
    let (_, core_sim_parent) = span_ids(&trace.body, "core_sim");
    assert_eq!(request_parent, 0, "request is the root");
    assert_eq!(queue_parent, request_id);
    assert_eq!(job_parent, request_id);
    assert_eq!(cell_parent, job_id);
    assert_eq!(core_sim_parent, cell_id, "phase leaves hang off the cell");
    assert_ne!(queue_id, job_id);

    // Unknown jobs 404 like every other job route.
    let missing = client
        .request("GET", "/v1/jobs/999/trace", "")
        .expect("missing trace");
    assert_eq!(missing.status, 404);

    server.stop();
}

#[test]
fn status_and_metrics_carry_queue_wait_and_request_latency() {
    let scratch = Scratch::new("latency");
    let (server, client) = boot(&scratch, 1);

    let spec = "{\"kind\":\"single\",\"workload\":\"mcf\",\"technique\":\"ooo\",\
                \"instructions\":500,\"warmup\":100}";
    let id = submitted_id(
        &client
            .request("POST", "/v1/jobs", spec)
            .expect("submit")
            .body,
    );
    let done = client
        .wait_for_job(id, Duration::from_secs(120))
        .expect("job finishes");
    assert!(
        done.body.contains("\"queue_wait_seconds\":"),
        "claimed job status must report its queue wait: {}",
        done.body
    );

    let metrics = client.request("GET", "/metrics", "").expect("metrics");
    // The queue-wait gauge and the base latency histogram exist, and the
    // status polls above landed in the per-endpoint series with derived
    // percentiles.
    assert!(
        metrics
            .body
            .contains(&format!("{} ", names::SERVE_QUEUE_WAIT_SECONDS)),
        "{}",
        metrics.body
    );
    assert!(
        prom_value(
            &metrics.body,
            &format!("{}_count", names::SERVE_REQUEST_NANOS)
        ) >= 2.0,
        "{}",
        metrics.body
    );
    for series in [
        format!(
            "{}_count{{endpoint=\"submit\"}}",
            names::SERVE_REQUEST_NANOS
        ),
        format!(
            "{}_count{{endpoint=\"status\"}}",
            names::SERVE_REQUEST_NANOS
        ),
        format!("{}_p99{{endpoint=\"status\"}}", names::SERVE_REQUEST_NANOS),
    ] {
        assert!(
            metrics.body.contains(&series),
            "{series} missing from:\n{}",
            metrics.body
        );
    }

    server.stop();
}

/// Extracts the `(id, parent)` args of the first span named `name` in a
/// Chrome trace document.
fn span_ids(doc: &str, name: &str) -> (u64, u64) {
    let start = doc
        .find(&format!("\"name\":\"{name}\",\"cat\":\"span\""))
        .unwrap_or_else(|| panic!("span {name} missing from:\n{doc}"));
    let record = &doc[start..];
    let record = &record[..record.find('}').expect("args close") + 1];
    let grab = |key: &str| -> u64 {
        let at = record.find(key).expect("arg present") + key.len();
        record[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("arg parses")
    };
    (grab("\"id\":"), grab("\"parent\":"))
}

/// Extracts a gauge/counter value from Prometheus text.
fn prom_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from:\n{text}"))
        .trim()
        .parse()
        .expect("metric value parses")
}
