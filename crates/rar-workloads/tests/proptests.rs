// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for the workload generators: determinism, structural
//! sanity, and parameter robustness.

use proptest::prelude::*;
use rar_isa::UopKind;
use rar_workloads::{workload, AccessPattern, TraceGenerator, WorkloadParams};

fn arbitrary_params() -> impl Strategy<Value = WorkloadParams> {
    (
        0.05f64..0.4,
        0.0f64..0.25,
        0.0f64..0.25,
        0.0f64..1.0,
        0.0f64..1.0,
        1u32..64,
        1usize..16,
        8usize..64,
        1usize..8,
    )
        .prop_map(
            |(load, store, branch, miss, hard, trip, segments, body, ilp)| WorkloadParams {
                load_frac: load,
                store_frac: store,
                branch_frac: branch,
                miss_load_frac: miss,
                hard_branch_frac: hard,
                loop_trip: trip,
                segments,
                body_uops: body,
                ilp,
                pattern: AccessPattern::Mixed {
                    chase_frac: 0.5,
                    chains: 2,
                    streams: 2,
                    stride: 8,
                },
                ..WorkloadParams::base("prop")
            },
        )
        .prop_filter("fractions must leave room for compute", |p| {
            p.validate().is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any validated parameter set generates an infinite, panic-free,
    /// seed-deterministic stream.
    #[test]
    fn generator_total_and_deterministic(params in arbitrary_params(), seed in 0u64..1000) {
        let a: Vec<_> = TraceGenerator::new(&params, seed).take(2_000).collect();
        let b: Vec<_> = TraceGenerator::new(&params, seed).take(2_000).collect();
        prop_assert_eq!(a.len(), 2_000);
        prop_assert_eq!(a, b);
    }

    /// Every load/store carries an address; every branch carries an
    /// outcome; PCs stay within the static code region.
    #[test]
    fn structural_invariants(params in arbitrary_params(), seed in 0u64..100) {
        let gen = TraceGenerator::new(&params, seed);
        let code_bytes = gen.code_bytes();
        for u in gen.take(3_000) {
            match u.kind() {
                UopKind::Load | UopKind::Store => prop_assert!(u.mem().is_some()),
                UopKind::Branch => prop_assert!(u.branch_info().is_some()),
                _ => {
                    prop_assert!(u.mem().is_none());
                    prop_assert!(u.branch_info().is_none());
                }
            }
            prop_assert!(u.pc() >= 0x1000 && u.pc() < 0x1000 + code_bytes + 8);
        }
    }

    /// Taken branches always jump to the PC the next micro-op actually
    /// has (control-flow consistency of the trace).
    #[test]
    fn control_flow_is_consistent(params in arbitrary_params(), seed in 0u64..100) {
        let uops: Vec<_> = TraceGenerator::new(&params, seed).take(3_000).collect();
        for w in uops.windows(2) {
            if let Some(b) = w[0].branch_info() {
                if b.taken {
                    prop_assert_eq!(w[1].pc(), b.target, "taken branch must reach its target");
                } else {
                    prop_assert_eq!(w[1].pc(), w[0].pc() + 4, "fall-through is sequential");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every named benchmark is deterministic per seed at a larger depth.
    #[test]
    fn named_benchmarks_deterministic(seed in 0u64..50) {
        for name in ["mcf", "libquantum", "leela"] {
            let spec = workload(name).unwrap();
            let a: Vec<_> = spec.trace(seed).take(4_000).collect();
            let b: Vec<_> = spec.trace(seed).take(4_000).collect();
            prop_assert_eq!(a, b);
        }
    }
}
