//! The deterministic trace generator.
//!
//! [`TraceGenerator`] compiles a [`WorkloadParams`] into a static *program*
//! — a ring of loop segments whose slots have fixed program counters,
//! operand registers and behavioural roles — and then walks that program
//! dynamically, producing an infinite, seed-reproducible micro-op stream.
//!
//! Static structure matters: PRE's stalling-slice table is PC-indexed, the
//! branch predictor learns per-site behaviour, and the I-cache sees the
//! code footprint. A given static load is therefore *always* a chase load,
//! a stream load, or a hot (cache-resident) load; a given static branch is
//! always a loop-closer or a data-dependent conditional.

use crate::model::{AccessPattern, WorkloadClass, WorkloadParams};
use rar_isa::{ArchReg, BranchClass, BranchInfo, Uop, UopKind};

/// SplitMix64: tiny, fast, deterministic PRNG for trace generation.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Behavioural role of one static program slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Compute micro-op on a dependence chain. `dest` is `None` for
    /// compare/test-style operations that only feed flags — roughly a
    /// third of real integer compute, and what lets the ROB fill before
    /// the physical register file runs dry.
    Compute {
        kind: UopKind,
        dest: Option<ArchReg>,
        src_a: ArchReg,
        src_b: ArchReg,
    },
    /// Pointer-chase load: address depends on the previous step of `chain`.
    ChaseLoad { chain: usize, dest: ArchReg },
    /// Streaming load on `stream` (address from an index register).
    StreamLoad {
        stream: usize,
        dest: ArchReg,
        idx: ArchReg,
    },
    /// Cache-resident load (hot buffer).
    HotLoad { dest: ArchReg, idx: ArchReg },
    /// Store to a write stream.
    Store { src: ArchReg, idx: ArchReg },
    /// Data-dependent conditional branch; when taken, skips the next
    /// `skip` slots.
    HardBranch {
        bias: f64,
        skip: usize,
        src: ArchReg,
    },
}

#[derive(Debug, Clone)]
struct Segment {
    base_pc: u64,
    slots: Vec<Slot>,
    trip: u32,
    /// PC of the loop-closing branch.
    loop_pc: u64,
    /// PC of the trailing jump to the next segment.
    jump_pc: u64,
}

/// An infinite, deterministic micro-op stream for one workload.
///
/// Produced by [`crate::spec::WorkloadSpec::trace`]; consume through the
/// `Iterator` interface (typically wrapped in a
/// [`rar_isa::TraceWindow`]).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    segments: Vec<Segment>,
    // --- dynamic state ---
    seg: usize,
    iter_left: u32,
    slot: usize,
    skip_left: usize,
    rng: SplitMix64,
    chain_pos: Vec<u64>,
    stream_pos: Vec<u64>,
    /// Ring of recently chased line addresses; re-touches of these model
    /// node-payload reuse and hit the L2/L3 depending on recency.
    recent_chase: std::collections::VecDeque<u64>,
    hot_pos: u64,
    store_pos: u64,
    /// Pending uops when a slot expands to more than one micro-op.
    pending: Vec<Uop>,
    // --- layout constants ---
    footprint_lines: u64,
    stream_stride: u64,
    store_lines: u64,
    emitted: u64,
}

const DATA_BASE: u64 = 0x1_0000_0000;
const HOT_BASE: u64 = 0x2000_0000;
const HOT_LINES: u64 = 16 * 1024 / 64; // 16 KB, L1-resident
/// Reuse window for L2-resident re-touches of recently streamed data.
const REUSE_L2_BYTES: u64 = 96 * 1024;
/// Reuse window for L3-resident re-touches.
const REUSE_L3_BYTES: u64 = 512 * 1024;
const STORE_BASE: u64 = 0x3000_0000;
/// Write-region size for memory-intensive workloads (misses in the LLC
/// while streaming, like lbm's grid updates).
const STORE_LINES_MEM: u64 = 4 * 1024 * 1024 / 64;
/// Write-region size for compute-intensive workloads (L1/L2-resident).
const STORE_LINES_CPU: u64 = 16 * 1024 / 64;
const CODE_BASE: u64 = 0x1000;

impl TraceGenerator {
    /// Compiles `params` into a static program and initializes the walk.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`WorkloadParams::validate`].
    #[must_use]
    pub fn new(params: &WorkloadParams, seed: u64) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid workload {}: {e}", params.name));
        let mut build_rng = SplitMix64::new(seed ^ hash_name(params.name));

        let (chains, streams, stride, chase_frac) = match params.pattern {
            AccessPattern::Streaming { streams, stride } => (0, streams, stride, 0.0),
            AccessPattern::PointerChase { chains } => (chains, 1, 8, 1.0),
            AccessPattern::Mixed {
                chase_frac,
                chains,
                streams,
                stride,
            } => (chains, streams, stride, chase_frac),
        };
        let chains = chains.clamp(0, 8);
        let streams = streams.clamp(1, 8);

        let mut segments = Vec::with_capacity(params.segments);
        let mut pc = CODE_BASE;
        for s in 0..params.segments {
            let mut slots = Vec::with_capacity(params.body_uops);
            let mut i = 0;
            while i < params.body_uops {
                let slot = Self::build_slot(
                    params,
                    &mut build_rng,
                    chains,
                    streams,
                    chase_frac,
                    params.body_uops - i,
                );
                // HardBranch skip must not run past the body.
                i += 1;
                slots.push(slot);
            }
            let trip = {
                let spread = (params.loop_trip / 2).max(1);
                (params.loop_trip - spread / 2 + (build_rng.below(u64::from(spread)) as u32)).max(2)
            };
            let base_pc = pc;
            let loop_pc = base_pc + 4 * slots.len() as u64;
            let jump_pc = loop_pc + 4;
            segments.push(Segment {
                base_pc,
                slots,
                trip,
                loop_pc,
                jump_pc,
            });
            // Sparse layout spreads segments across I-cache sets.
            pc = jump_pc + 4 + 60 * (s as u64 % 3);
        }

        let first_trip = segments[0].trip;
        TraceGenerator {
            segments,
            seg: 0,
            iter_left: first_trip,
            slot: 0,
            skip_left: 0,
            rng: SplitMix64::new(seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1)),
            chain_pos: (0..chains.max(1) as u64).map(|c| c * 977).collect(),
            stream_pos: (0..streams as u64).map(|s| s * 1_000_003).collect(),
            recent_chase: std::collections::VecDeque::with_capacity(8192),
            hot_pos: 0,
            store_pos: 0,
            pending: Vec::new(),
            footprint_lines: (params.footprint_bytes / 64).max(1),
            stream_stride: stride.max(1),
            store_lines: if params.class == WorkloadClass::MemoryIntensive {
                STORE_LINES_MEM
            } else {
                STORE_LINES_CPU
            },
            emitted: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_slot(
        params: &WorkloadParams,
        rng: &mut SplitMix64,
        chains: usize,
        streams: usize,
        chase_frac: f64,
        remaining: usize,
    ) -> Slot {
        let r = rng.next_f64();
        let load_cut = params.load_frac;
        let store_cut = load_cut + params.store_frac;
        let branch_cut = store_cut + params.branch_frac;
        if r < load_cut {
            // A load: miss-producing or hot?
            if rng.next_f64() < params.miss_load_frac {
                if chains > 0 && rng.next_f64() < chase_frac {
                    let chain = rng.below(chains as u64) as usize;
                    Slot::ChaseLoad {
                        chain,
                        dest: ArchReg::int(chain as u8),
                    }
                } else {
                    let stream = rng.below(streams as u64) as usize;
                    Slot::StreamLoad {
                        stream,
                        dest: ArchReg::int(24 + rng.below(8) as u8),
                        idx: ArchReg::int(8 + stream as u8),
                    }
                }
            } else {
                Slot::HotLoad {
                    dest: ArchReg::int(24 + rng.below(8) as u8),
                    idx: ArchReg::int(16 + rng.below(4) as u8),
                }
            }
        } else if r < store_cut {
            let stream = rng.below(streams as u64) as usize;
            Slot::Store {
                src: ArchReg::int(24 + rng.below(8) as u8),
                idx: ArchReg::int(8 + stream as u8),
            }
        } else if r < branch_cut && rng.next_f64() < params.hard_branch_frac {
            Slot::HardBranch {
                bias: params.hard_branch_bias,
                skip: (1 + rng.below(3) as usize).min(remaining.saturating_sub(1)),
                src: ArchReg::int(24 + rng.below(8) as u8),
            }
        } else {
            // Compute op on a dependence chain.
            let fp = rng.next_f64() < params.fp_frac;
            let long = rng.next_f64() < params.longlat_frac;
            let kind = match (fp, long) {
                (false, false) => UopKind::IntAlu,
                (false, true) => {
                    if rng.next_f64() < 0.8 {
                        UopKind::IntMul
                    } else {
                        UopKind::IntDiv
                    }
                }
                (true, false) => {
                    if rng.next_f64() < 0.6 {
                        UopKind::FpAdd
                    } else {
                        UopKind::FpMul
                    }
                }
                (true, true) => {
                    if rng.next_f64() < 0.7 {
                        UopKind::FpMul
                    } else {
                        UopKind::FpDiv
                    }
                }
            };
            let chain = rng.below(params.ilp.min(8) as u64) as u8;
            let (dest, src_a) = if fp {
                (ArchReg::fp(chain), ArchReg::fp(chain))
            } else {
                (
                    ArchReg::int(16 + (chain % 8)),
                    ArchReg::int(16 + (chain % 8)),
                )
            };
            // Compares, tests, and flag-setting ops write no register.
            let dest = (rng.next_f64() >= 0.35).then_some(dest);
            // Second source: occasionally a load temp, creating
            // load-to-compute dependencies (and stalling slices).
            let src_b = if rng.next_f64() < 0.25 {
                ArchReg::int(24 + rng.below(8) as u8)
            } else if fp {
                ArchReg::fp((chain + 1) % 8)
            } else {
                ArchReg::int(16 + ((chain + 1) % 8))
            };
            Slot::Compute {
                kind,
                dest,
                src_a,
                src_b,
            }
        }
    }

    fn chase_addr(&mut self, chain: usize) -> u64 {
        // Deterministic permutation walk over the footprint: the next line
        // is a pseudo-random function of the current one, modelling a
        // pointer graph with no spatial locality.
        let pos = &mut self.chain_pos[chain];
        *pos = pos
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = DATA_BASE + (*pos % self.footprint_lines) * 64 + (chain as u64) * 8;
        if self.recent_chase.len() == 8192 {
            self.recent_chase.pop_front();
        }
        self.recent_chase.push_back(addr);
        addr
    }

    fn stream_addr(&mut self, stream: usize) -> u64 {
        self.stream_pos[stream] += self.stream_stride;
        let pos = self.stream_pos[stream];
        self.stream_addr_at(stream, pos)
    }

    /// Address of stream `stream` at absolute position `pos` (bytes).
    fn stream_addr_at(&self, stream: usize, pos: u64) -> u64 {
        let region = self.footprint_lines * 64 / 2;
        DATA_BASE
            + self.footprint_lines * 32
            + (stream as u64) * (region / 8)
            + (pos % (region / 8))
    }

    fn emit_slot(&mut self, slot: Slot, pc: u64) -> Uop {
        match slot {
            Slot::Compute {
                kind,
                dest,
                src_a,
                src_b,
            } => {
                let mut u = Uop::alu(pc, kind).with_src(src_a).with_src(src_b);
                if let Some(d) = dest {
                    u = u.with_dest(d);
                }
                u
            }
            Slot::ChaseLoad { chain, dest } => {
                let addr = self.chase_addr(chain);
                // The chase load consumes its own chain register: the
                // timing model serializes successive steps.
                Uop::load(pc, addr, 8).with_dest(dest).with_src(dest)
            }
            Slot::StreamLoad { stream, dest, idx } => {
                let addr = self.stream_addr(stream);
                self.pending.push(
                    // Index increment following the load (address
                    // arithmetic that PRE's slices must include).
                    Uop::alu(pc, UopKind::IntAlu).with_dest(idx).with_src(idx),
                );
                Uop::load(pc, addr, 8).with_dest(dest).with_src(idx)
            }
            Slot::HotLoad { dest, idx } => {
                // Cache-resident data is stratified like real working sets:
                // mostly L1 hits on a small hot buffer, plus re-touches of
                // recently streamed data whose temporal distance puts them
                // in the L2 or L3. These medium-latency hits expose
                // back-end state outside LLC-miss shadows — the ~30% of
                // ABC the paper observes outside blocked-head windows.
                let r = self.rng.next_f64();
                let s = if self.stream_pos.is_empty() {
                    0
                } else {
                    self.rng.below(self.stream_pos.len() as u64) as usize
                };
                let back = if r < 0.94 {
                    8 * 1024 + self.rng.below(REUSE_L2_BYTES)
                } else {
                    REUSE_L2_BYTES + self.rng.below(REUSE_L3_BYTES)
                };
                // Reuse is only meaningful once the stream has actually
                // streamed past the reuse distance; otherwise the address
                // would be untouched (cold) memory.
                let stream_progress = self.stream_pos.get(s).copied().unwrap_or(0);
                let initial = (s as u64) * 1_000_003;
                let addr = if r >= 0.70 && stream_progress >= initial + back + 8 * 1024 {
                    self.stream_addr_at(s, stream_progress - back)
                } else if r >= 0.70 && self.recent_chase.len() > 512 {
                    // Pointer-heavy code re-touches recently visited nodes:
                    // recent ones hit the L2, older ones the L3.
                    let len = self.recent_chase.len() as u64;
                    let range = if r < 0.94 { len.min(1024) } else { len };
                    let back_idx = 1 + self.rng.below(range - 1);
                    self.recent_chase[(len - 1 - back_idx) as usize]
                } else {
                    self.hot_pos = (self.hot_pos + 24) % (HOT_LINES * 64);
                    HOT_BASE + self.hot_pos
                };
                Uop::load(pc, addr, 8).with_dest(dest).with_src(idx)
            }
            Slot::Store { src, idx } => {
                self.store_pos = (self.store_pos + 8) % (self.store_lines * 64);
                Uop::store(pc, STORE_BASE + self.store_pos, 8)
                    .with_src(src)
                    .with_src(idx)
            }
            Slot::HardBranch { bias, skip, src } => {
                let taken = self.rng.next_f64() < bias;
                if taken {
                    self.skip_left = skip;
                }
                let target = pc + 4 * (skip as u64 + 1);
                Uop::branch(
                    pc,
                    BranchInfo {
                        taken,
                        target,
                        class: BranchClass::Conditional,
                    },
                )
                .with_src(src)
            }
        }
    }

    /// Total micro-ops emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Static code size in bytes (distance from first to last PC).
    #[must_use]
    pub fn code_bytes(&self) -> u64 {
        let last = self.segments.last().expect("at least one segment");
        last.jump_pc + 4 - CODE_BASE
    }
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Iterator for TraceGenerator {
    type Item = Uop;

    fn next(&mut self) -> Option<Uop> {
        self.emitted += 1;
        if let Some(u) = self.pending.pop() {
            return Some(u);
        }
        loop {
            let seg_len = self.segments[self.seg].slots.len();
            if self.slot < seg_len {
                let idx = self.slot;
                self.slot += 1;
                if self.skip_left > 0 {
                    self.skip_left -= 1;
                    continue;
                }
                let slot = self.segments[self.seg].slots[idx];
                let pc = self.segments[self.seg].base_pc + 4 * idx as u64;
                return Some(self.emit_slot(slot, pc));
            }
            // End of body: loop-closing branch.
            self.skip_left = 0;
            let seg = &self.segments[self.seg];
            let (loop_pc, base_pc, jump_pc) = (seg.loop_pc, seg.base_pc, seg.jump_pc);
            if self.iter_left > 1 {
                self.iter_left -= 1;
                self.slot = 0;
                return Some(Uop::branch(
                    loop_pc,
                    BranchInfo {
                        taken: true,
                        target: base_pc,
                        class: BranchClass::Loop,
                    },
                ));
            }
            // Loop exits; emit the not-taken closer then jump onward.
            let next_seg = (self.seg + 1) % self.segments.len();
            let next_base = self.segments[next_seg].base_pc;
            self.pending.push(Uop::branch(
                jump_pc,
                BranchInfo {
                    taken: true,
                    target: next_base,
                    class: BranchClass::Unconditional,
                },
            ));
            self.seg = next_seg;
            self.iter_left = self.segments[next_seg].trip;
            self.slot = 0;
            return Some(Uop::branch(
                loop_pc,
                BranchInfo {
                    taken: false,
                    target: base_pc,
                    class: BranchClass::Loop,
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessPattern, WorkloadClass, WorkloadParams};
    use rar_isa::UopKind;
    use std::collections::HashMap;

    fn mem_params() -> WorkloadParams {
        WorkloadParams {
            class: WorkloadClass::MemoryIntensive,
            miss_load_frac: 0.5,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.5,
                chains: 4,
                streams: 4,
                stride: 8,
            },
            ..WorkloadParams::base("test-mem")
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = TraceGenerator::new(&mem_params(), 7).take(5_000).collect();
        let b: Vec<_> = TraceGenerator::new(&mem_params(), 7).take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = TraceGenerator::new(&mem_params(), 1).take(5_000).collect();
        let b: Vec<_> = TraceGenerator::new(&mem_params(), 2).take(5_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_roughly_matches_params() {
        // Use a large static program so per-slot sampling noise (and the
        // persistent bias from taken hard branches skipping specific
        // slots) averages out.
        let p = WorkloadParams {
            segments: 32,
            body_uops: 64,
            ..mem_params()
        };
        let n = 200_000;
        let mut counts: HashMap<UopKind, usize> = HashMap::new();
        for u in TraceGenerator::new(&p, 3).take(n) {
            *counts.entry(u.kind()).or_default() += 1;
        }
        let loads = counts.get(&UopKind::Load).copied().unwrap_or(0) as f64 / n as f64;
        let stores = counts.get(&UopKind::Store).copied().unwrap_or(0) as f64 / n as f64;
        let branches = counts.get(&UopKind::Branch).copied().unwrap_or(0) as f64 / n as f64;
        assert!((loads - p.load_frac).abs() < 0.08, "load fraction {loads}");
        assert!(
            (stores - p.store_frac).abs() < 0.05,
            "store fraction {stores}"
        );
        // Branches include loop closers and jumps, so >= the hard fraction.
        assert!(
            branches > 0.01 && branches < 0.35,
            "branch fraction {branches}"
        );
    }

    #[test]
    fn pcs_repeat_across_iterations() {
        // A static load PC must appear many times in the dynamic stream.
        let mut by_pc: HashMap<u64, usize> = HashMap::new();
        for u in TraceGenerator::new(&mem_params(), 3).take(50_000) {
            *by_pc.entry(u.pc()).or_default() += 1;
        }
        let max_reuse = by_pc.values().copied().max().unwrap();
        assert!(
            max_reuse > 100,
            "static code must be re-executed, max reuse {max_reuse}"
        );
        assert!(
            by_pc.len() < 2_000,
            "static footprint bounded, {} pcs",
            by_pc.len()
        );
    }

    #[test]
    fn chase_loads_self_depend() {
        let p = WorkloadParams {
            miss_load_frac: 1.0,
            pattern: AccessPattern::PointerChase { chains: 2 },
            ..WorkloadParams::base("chase")
        };
        let mut found = 0;
        for u in TraceGenerator::new(&p, 3).take(10_000) {
            if u.kind() == UopKind::Load {
                if let Some(dest) = u.dest() {
                    if u.srcs().any(|s| s == dest) && dest.index() < 8 {
                        found += 1;
                    }
                }
            }
        }
        assert!(found > 100, "chase loads present: {found}");
    }

    #[test]
    fn chase_addresses_jump_across_lines() {
        let p = WorkloadParams {
            miss_load_frac: 1.0,
            pattern: AccessPattern::PointerChase { chains: 1 },
            ..WorkloadParams::base("chase2")
        };
        let mut lines = Vec::new();
        for u in TraceGenerator::new(&p, 3).take(20_000) {
            if u.kind() == UopKind::Load {
                if let Some(m) = u.mem() {
                    if m.addr >= DATA_BASE {
                        lines.push(rar_isa::cache_line(m.addr));
                    }
                }
            }
        }
        lines.dedup();
        assert!(lines.len() > 500, "chase should touch many distinct lines");
    }

    #[test]
    fn stream_addresses_advance_sequentially() {
        let p = WorkloadParams {
            miss_load_frac: 1.0,
            pattern: AccessPattern::Streaming {
                streams: 1,
                stride: 8,
            },
            ..WorkloadParams::base("stream")
        };
        let mut addrs = Vec::new();
        for u in TraceGenerator::new(&p, 3).take(5_000) {
            if u.kind() == UopKind::Load {
                if let Some(m) = u.mem() {
                    if m.addr >= DATA_BASE + 1024 * 1024 {
                        addrs.push(m.addr);
                    }
                }
            }
        }
        assert!(addrs.len() > 100);
        let increasing = addrs.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(
            increasing as f64 / (addrs.len() - 1) as f64 > 0.95,
            "stream should advance by the stride"
        );
    }

    #[test]
    fn loop_branches_have_loop_class() {
        let mut loops = 0;
        let mut conds = 0;
        for u in TraceGenerator::new(&mem_params(), 3).take(50_000) {
            if let Some(b) = u.branch_info() {
                match b.class {
                    BranchClass::Loop => loops += 1,
                    BranchClass::Conditional => conds += 1,
                    BranchClass::Unconditional => {}
                }
            }
        }
        assert!(loops > 500, "loop closers present: {loops}");
        assert!(conds > 0, "hard branches present: {conds}");
    }

    #[test]
    fn hard_branch_skips_are_honored() {
        // When a hard branch is taken, the next uop's PC is its target.
        let p = WorkloadParams {
            branch_frac: 0.3,
            hard_branch_frac: 1.0,
            hard_branch_bias: 0.5,
            ..WorkloadParams::base("branchy")
        };
        let uops: Vec<_> = TraceGenerator::new(&p, 3).take(20_000).collect();
        let mut checked = 0;
        for w in uops.windows(2) {
            if let Some(b) = w[0].branch_info() {
                if b.class == BranchClass::Conditional && b.taken {
                    assert_eq!(w[1].pc(), b.target, "taken branch must skip to target");
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "verified {checked} taken hard branches");
    }

    #[test]
    fn code_footprint_reported() {
        let gen = TraceGenerator::new(&mem_params(), 3);
        assert!(gen.code_bytes() > 256);
    }

    #[test]
    #[should_panic(expected = "invalid workload")]
    fn invalid_params_panic() {
        let mut p = WorkloadParams::base("bad");
        p.load_frac = 2.0;
        let _ = TraceGenerator::new(&p, 0);
    }
}
