//! Benchmark suite definitions.
//!
//! The paper's evaluation splits SPEC CPU2006/2017 into memory-intensive
//! (MPKI > 8 on the baseline core) and compute-intensive sets. These lists
//! mirror the benchmarks named in the paper's figures.

/// The memory-intensive set (Figures 3, 5, 7, 8; sorted alphabetically as
/// in the paper's plots).
#[must_use]
pub fn memory_intensive() -> &'static [&'static str] {
    &[
        "astar",
        "bwaves",
        "fotonik",
        "gcc",
        "gems",
        "lbm",
        "leslie3d",
        "libquantum",
        "mcf",
        "milc",
        "omnetpp",
        "roms",
        "soplex",
        "sphinx3",
        "zeusmp",
    ]
}

/// The compute-intensive set (MPKI < 8; reported as suite averages).
#[must_use]
pub fn compute_intensive() -> &'static [&'static str] {
    &[
        "deepsjeng",
        "exchange2",
        "imagick",
        "leela",
        "nab",
        "perlbench",
        "povray",
        "x264",
    ]
}

/// Extra benchmark models available beyond the paper's evaluation suites
/// (resolvable via [`crate::workload`], excluded from the figure runners
/// so the paper's averages stay comparable).
#[must_use]
pub fn extra_benchmarks() -> &'static [&'static str] {
    &["cactus", "wrf", "xalancbmk", "xz"]
}

/// Every benchmark, memory-intensive first.
#[must_use]
pub fn all_benchmarks() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = memory_intensive().to_vec();
    v.extend_from_slice(compute_intensive());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_disjoint() {
        for m in memory_intensive() {
            assert!(!compute_intensive().contains(m), "{m} in both suites");
        }
    }

    #[test]
    fn memory_set_is_sorted_like_the_paper() {
        let mut sorted = memory_intensive().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted.as_slice(), memory_intensive());
    }

    #[test]
    fn all_has_everything() {
        assert_eq!(
            all_benchmarks().len(),
            memory_intensive().len() + compute_intensive().len()
        );
    }
}
