//! Synthetic SPEC-like workload generators.
//!
//! The paper evaluates on 500M-instruction SimPoints of the SPEC CPU2006
//! and CPU2017 suites, which we cannot redistribute. This crate substitutes
//! *parameterized synthetic workload models*, one per paper benchmark, that
//! reproduce the workload properties the paper's mechanisms actually
//! interact with:
//!
//! - **LLC miss intensity** (MPKI > 8 defines "memory-intensive"),
//! - **access pattern** — streaming (libquantum, fotonik: independent
//!   misses → high MLP, deep runahead prefetch coverage) versus pointer
//!   chasing (mcf, omnetpp: dependent misses → runahead cannot compute the
//!   next address, little prefetching),
//! - **branch behaviour** — mcf/gcc-style hard-to-predict branches in the
//!   shadow of misses, which keep the ROB from filling ("ROB head blocked"
//!   ≠ "full-ROB stall", Section II-C),
//! - **issue-queue pressure** — lbm-style long floating-point dependence
//!   chains that fill the IQ before the ROB,
//! - **instruction mix** — int/fp/mul-div/load/store/branch fractions.
//!
//! Each model builds a static *program* (segments of loops with fixed PCs,
//! so branch predictors, the I-cache, and PRE's stalling-slice table see a
//! realistic static code surface) and walks it dynamically with
//! deterministic, seed-reproducible state.
//!
//! # Examples
//!
//! ```
//! use rar_workloads::{workload, memory_intensive};
//!
//! let spec = workload("mcf").expect("mcf is a known benchmark");
//! let mut trace = spec.trace(42);
//! let first = trace.next().unwrap();
//! assert!(first.pc() >= 0x1000);
//! assert!(memory_intensive().contains(&"mcf"));
//! ```

pub mod gen;
pub mod memo;
pub mod mix;
pub mod model;
pub mod spec;

pub use gen::TraceGenerator;
pub use memo::{SharedTraceIter, TracePrefix};
pub use mix::{all_benchmarks, compute_intensive, extra_benchmarks, memory_intensive};
pub use model::{AccessPattern, WorkloadClass, WorkloadParams};
pub use spec::{workload, WorkloadSpec};
