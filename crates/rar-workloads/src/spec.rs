//! Named benchmark models.
//!
//! One synthetic model per benchmark that appears in the paper's figures,
//! calibrated on the *published* per-benchmark characteristics (Sections
//! II and V): miss intensity, dependent- versus independent-miss pattern,
//! branch behaviour in the shadow of misses, issue-queue pressure, and
//! instruction mix. The models do not reproduce SPEC semantics — only the
//! properties that runahead, flushing, and the ACE analysis interact with.

use crate::gen::TraceGenerator;
use crate::model::{AccessPattern, WorkloadClass, WorkloadParams};

/// A resolved benchmark: parameters plus trace construction.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    params: WorkloadParams,
}

impl WorkloadSpec {
    /// Wraps a validated parameter set.
    ///
    /// # Errors
    ///
    /// Returns the validation failure of [`WorkloadParams::validate`].
    pub fn from_params(params: WorkloadParams) -> Result<Self, String> {
        params.validate()?;
        Ok(WorkloadSpec { params })
    }

    /// The model's parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Benchmark name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.params.name
    }

    /// Whether the paper classes this benchmark as memory-intensive.
    #[must_use]
    pub fn class(&self) -> WorkloadClass {
        self.params.class
    }

    /// Builds the deterministic trace generator for `seed`.
    #[must_use]
    pub fn trace(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(&self.params, seed)
    }
}

/// Looks up a benchmark model by paper name (e.g. `"mcf"`, `"libquantum"`).
///
/// Returns `None` for unknown names. See [`crate::mix`] for the suite
/// lists.
#[must_use]
pub fn workload(name: &str) -> Option<WorkloadSpec> {
    let params = params_for(name)?;
    debug_assert_eq!(params.validate(), Ok(()));
    Some(WorkloadSpec { params })
}

use WorkloadClass::{ComputeIntensive as Cpu, MemoryIntensive as Mem};

fn mem_base(name: &'static str) -> WorkloadParams {
    WorkloadParams {
        class: Mem,
        footprint_bytes: 128 * 1024 * 1024,
        ..WorkloadParams::base(name)
    }
}

#[allow(clippy::too_many_lines)]
fn params_for(name: &str) -> Option<WorkloadParams> {
    Some(match name {
        // ---------------- memory-intensive ----------------
        // mcf: pointer-chasing graph code; very high MPKI; frequent branch
        // mispredictions in the shadow of misses (Section II-C) keep the
        // ROB from filling => the paper's largest RAR MTTF gain (35.8x).
        "mcf" => WorkloadParams {
            load_frac: 0.32,
            store_frac: 0.08,
            branch_frac: 0.20,
            miss_load_frac: 0.22,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.75,
                chains: 3,
                streams: 2,
                stride: 8,
            },
            hard_branch_frac: 0.45,
            hard_branch_bias: 0.55,
            loop_trip: 12,
            segments: 10,
            body_uops: 40,
            fp_frac: 0.0,
            longlat_frac: 0.03,
            ilp: 3,
            ..mem_base("mcf")
        },
        // libquantum: perfectly regular streaming over a huge array; deep
        // MLP; PRE/RAR excel (2.5x IPC), flushing hurts most (-21.9%).
        "libquantum" => WorkloadParams {
            load_frac: 0.28,
            store_frac: 0.12,
            branch_frac: 0.15,
            miss_load_frac: 0.85,
            pattern: AccessPattern::Streaming {
                streams: 2,
                stride: 8,
            },
            hard_branch_frac: 0.02,
            hard_branch_bias: 0.9,
            loop_trip: 64,
            segments: 3,
            body_uops: 24,
            fp_frac: 0.0,
            longlat_frac: 0.02,
            ilp: 6,
            ..mem_base("libquantum")
        },
        // lbm: fluid dynamics; streaming with long FP dependence chains
        // that fill the issue queue (~20% of stall time, Section II-C).
        "lbm" => WorkloadParams {
            load_frac: 0.26,
            store_frac: 0.16,
            branch_frac: 0.04,
            miss_load_frac: 0.55,
            pattern: AccessPattern::Streaming {
                streams: 6,
                stride: 8,
            },
            hard_branch_frac: 0.05,
            hard_branch_bias: 0.8,
            loop_trip: 48,
            segments: 4,
            body_uops: 56,
            fp_frac: 0.72,
            longlat_frac: 0.30,
            ilp: 2,
            ..mem_base("lbm")
        },
        // fotonik3d: electromagnetic FDTD; dense regular FP streams; the
        // paper's largest RAR speedup (2.6x).
        "fotonik" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.12,
            branch_frac: 0.06,
            miss_load_frac: 0.75,
            pattern: AccessPattern::Streaming {
                streams: 6,
                stride: 8,
            },
            hard_branch_frac: 0.02,
            hard_branch_bias: 0.9,
            loop_trip: 56,
            segments: 4,
            body_uops: 40,
            fp_frac: 0.55,
            longlat_frac: 0.08,
            ilp: 5,
            ..mem_base("fotonik")
        },
        // GemsFDTD: FDTD solver; strided FP streams.
        "gems" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.10,
            branch_frac: 0.07,
            miss_load_frac: 0.30,
            pattern: AccessPattern::Streaming {
                streams: 5,
                stride: 16,
            },
            hard_branch_frac: 0.04,
            hard_branch_bias: 0.85,
            loop_trip: 40,
            segments: 5,
            body_uops: 44,
            fp_frac: 0.55,
            longlat_frac: 0.10,
            ilp: 4,
            ..mem_base("gems")
        },
        // milc: lattice QCD; FP streams with moderate chase component.
        "milc" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.12,
            branch_frac: 0.06,
            miss_load_frac: 0.30,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.15,
                chains: 2,
                streams: 5,
                stride: 8,
            },
            hard_branch_frac: 0.05,
            hard_branch_bias: 0.85,
            loop_trip: 36,
            segments: 5,
            body_uops: 40,
            fp_frac: 0.60,
            longlat_frac: 0.12,
            ilp: 4,
            ..mem_base("milc")
        },
        // bwaves: blast-wave CFD; wide FP streams, very regular.
        "bwaves" => WorkloadParams {
            load_frac: 0.32,
            store_frac: 0.10,
            branch_frac: 0.05,
            miss_load_frac: 0.45,
            pattern: AccessPattern::Streaming {
                streams: 7,
                stride: 8,
            },
            hard_branch_frac: 0.02,
            hard_branch_bias: 0.9,
            loop_trip: 64,
            segments: 4,
            body_uops: 48,
            fp_frac: 0.65,
            longlat_frac: 0.10,
            ilp: 5,
            ..mem_base("bwaves")
        },
        // leslie3d: turbulence CFD; FP streams, moderate intensity.
        "leslie3d" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.12,
            branch_frac: 0.06,
            miss_load_frac: 0.42,
            pattern: AccessPattern::Streaming {
                streams: 5,
                stride: 8,
            },
            hard_branch_frac: 0.04,
            hard_branch_bias: 0.85,
            loop_trip: 44,
            segments: 5,
            body_uops: 44,
            fp_frac: 0.60,
            longlat_frac: 0.14,
            ilp: 4,
            ..mem_base("leslie3d")
        },
        // soplex: LP solver; mixed int/fp, mispredictions and resource
        // stalls under misses (Section II-C).
        "soplex" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.08,
            branch_frac: 0.16,
            miss_load_frac: 0.15,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.40,
                chains: 2,
                streams: 3,
                stride: 8,
            },
            hard_branch_frac: 0.30,
            hard_branch_bias: 0.6,
            loop_trip: 16,
            segments: 8,
            body_uops: 36,
            fp_frac: 0.30,
            longlat_frac: 0.10,
            ilp: 3,
            ..mem_base("soplex")
        },
        // sphinx3: speech recognition; mixed pattern, moderate branches.
        "sphinx3" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.06,
            branch_frac: 0.12,
            miss_load_frac: 0.20,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.25,
                chains: 2,
                streams: 4,
                stride: 8,
            },
            hard_branch_frac: 0.18,
            hard_branch_bias: 0.7,
            loop_trip: 24,
            segments: 6,
            body_uops: 36,
            fp_frac: 0.40,
            longlat_frac: 0.08,
            ilp: 4,
            ..mem_base("sphinx3")
        },
        // omnetpp: discrete-event simulation; pointer-heavy, branchy.
        "omnetpp" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.12,
            branch_frac: 0.18,
            miss_load_frac: 0.06,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.70,
                chains: 2,
                streams: 2,
                stride: 8,
            },
            hard_branch_frac: 0.35,
            hard_branch_bias: 0.6,
            loop_trip: 10,
            segments: 12,
            body_uops: 32,
            fp_frac: 0.05,
            longlat_frac: 0.05,
            ilp: 3,
            ..mem_base("omnetpp")
        },
        // roms: ocean model; FP streams with IQ pressure; the paper notes
        // RAR can lag RAR-LATE here (misses often do not fill the ROB).
        "roms" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.12,
            branch_frac: 0.08,
            miss_load_frac: 0.38,
            pattern: AccessPattern::Streaming {
                streams: 4,
                stride: 8,
            },
            hard_branch_frac: 0.06,
            hard_branch_bias: 0.8,
            loop_trip: 40,
            segments: 5,
            body_uops: 48,
            fp_frac: 0.65,
            longlat_frac: 0.25,
            ilp: 2,
            ..mem_base("roms")
        },
        // gcc: compiler; large code footprint, branchy, moderate misses
        // with mispredictions in the miss shadow.
        "gcc" => WorkloadParams {
            load_frac: 0.28,
            store_frac: 0.12,
            branch_frac: 0.20,
            miss_load_frac: 0.08,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.50,
                chains: 2,
                streams: 2,
                stride: 8,
            },
            hard_branch_frac: 0.35,
            hard_branch_bias: 0.6,
            loop_trip: 8,
            segments: 48,
            body_uops: 40,
            fp_frac: 0.0,
            longlat_frac: 0.04,
            ilp: 4,
            ..mem_base("gcc")
        },
        // astar: path-finding; chase + hard data-dependent branches.
        "astar" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.08,
            branch_frac: 0.18,
            miss_load_frac: 0.08,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.65,
                chains: 2,
                streams: 2,
                stride: 8,
            },
            hard_branch_frac: 0.40,
            hard_branch_bias: 0.55,
            loop_trip: 14,
            segments: 8,
            body_uops: 32,
            fp_frac: 0.0,
            longlat_frac: 0.04,
            ilp: 3,
            ..mem_base("astar")
        },
        // zeusmp: magnetohydrodynamics; strided FP streams.
        "zeusmp" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.10,
            branch_frac: 0.07,
            miss_load_frac: 0.15,
            pattern: AccessPattern::Streaming {
                streams: 4,
                stride: 16,
            },
            hard_branch_frac: 0.04,
            hard_branch_bias: 0.85,
            loop_trip: 36,
            segments: 5,
            body_uops: 44,
            fp_frac: 0.55,
            longlat_frac: 0.12,
            ilp: 4,
            ..mem_base("zeusmp")
        },
        // ------------- extras (not in the paper's suites) -------------
        // Available through `workload()` for user studies; excluded from
        // the figure suites so the paper's averages stay comparable.
        // xalancbmk: XML transformation; pointer-heavy, branchy.
        "xalancbmk" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.10,
            branch_frac: 0.20,
            miss_load_frac: 0.10,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.7,
                chains: 2,
                streams: 2,
                stride: 8,
            },
            hard_branch_frac: 0.30,
            hard_branch_bias: 0.6,
            loop_trip: 8,
            segments: 24,
            body_uops: 36,
            fp_frac: 0.0,
            longlat_frac: 0.04,
            ilp: 3,
            ..mem_base("xalancbmk")
        },
        // cactuBSSN: numerical relativity stencils; wide FP streams.
        "cactus" => WorkloadParams {
            load_frac: 0.32,
            store_frac: 0.12,
            branch_frac: 0.05,
            miss_load_frac: 0.40,
            pattern: AccessPattern::Streaming {
                streams: 6,
                stride: 8,
            },
            hard_branch_frac: 0.02,
            hard_branch_bias: 0.9,
            loop_trip: 56,
            segments: 4,
            body_uops: 52,
            fp_frac: 0.65,
            longlat_frac: 0.12,
            ilp: 4,
            ..mem_base("cactus")
        },
        // wrf: weather model; strided FP with moderate branches.
        "wrf" => WorkloadParams {
            load_frac: 0.30,
            store_frac: 0.10,
            branch_frac: 0.10,
            miss_load_frac: 0.25,
            pattern: AccessPattern::Streaming {
                streams: 4,
                stride: 16,
            },
            hard_branch_frac: 0.08,
            hard_branch_bias: 0.8,
            loop_trip: 32,
            segments: 8,
            body_uops: 44,
            fp_frac: 0.55,
            longlat_frac: 0.10,
            ilp: 4,
            ..mem_base("wrf")
        },
        // xz: LZMA compression; integer, mixed chase/stream, branchy.
        "xz" => WorkloadParams {
            load_frac: 0.28,
            store_frac: 0.14,
            branch_frac: 0.16,
            miss_load_frac: 0.15,
            pattern: AccessPattern::Mixed {
                chase_frac: 0.4,
                chains: 2,
                streams: 3,
                stride: 8,
            },
            hard_branch_frac: 0.25,
            hard_branch_bias: 0.65,
            loop_trip: 16,
            segments: 10,
            body_uops: 36,
            fp_frac: 0.0,
            longlat_frac: 0.05,
            ilp: 3,
            ..mem_base("xz")
        },
        // ---------------- compute-intensive ----------------
        // Cache-resident models: miss_load_frac 0 (plus small footprints),
        // differentiated by branchiness and FP/long-latency mix.
        "perlbench" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.015,
            branch_frac: 0.22,
            hard_branch_frac: 0.25,
            hard_branch_bias: 0.65,
            loop_trip: 10,
            segments: 24,
            body_uops: 32,
            ilp: 4,
            ..WorkloadParams::base("perlbench")
        },
        "deepsjeng" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.02,
            branch_frac: 0.18,
            hard_branch_frac: 0.35,
            hard_branch_bias: 0.55,
            loop_trip: 8,
            segments: 16,
            body_uops: 28,
            ilp: 4,
            ..WorkloadParams::base("deepsjeng")
        },
        "leela" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.015,
            branch_frac: 0.16,
            hard_branch_frac: 0.30,
            hard_branch_bias: 0.6,
            loop_trip: 12,
            segments: 12,
            body_uops: 32,
            ilp: 4,
            ..WorkloadParams::base("leela")
        },
        "exchange2" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.004,
            load_frac: 0.18,
            store_frac: 0.08,
            branch_frac: 0.14,
            hard_branch_frac: 0.10,
            loop_trip: 20,
            segments: 10,
            body_uops: 36,
            ilp: 6,
            ..WorkloadParams::base("exchange2")
        },
        "x264" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.03,
            load_frac: 0.28,
            branch_frac: 0.10,
            hard_branch_frac: 0.12,
            loop_trip: 32,
            segments: 8,
            body_uops: 48,
            fp_frac: 0.10,
            ilp: 6,
            ..WorkloadParams::base("x264")
        },
        "imagick" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.025,
            load_frac: 0.24,
            branch_frac: 0.08,
            hard_branch_frac: 0.06,
            loop_trip: 48,
            segments: 6,
            body_uops: 48,
            fp_frac: 0.55,
            longlat_frac: 0.15,
            ilp: 5,
            ..WorkloadParams::base("imagick")
        },
        "nab" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.02,
            load_frac: 0.24,
            branch_frac: 0.08,
            hard_branch_frac: 0.08,
            loop_trip: 36,
            segments: 6,
            body_uops: 44,
            fp_frac: 0.60,
            longlat_frac: 0.18,
            ilp: 4,
            ..WorkloadParams::base("nab")
        },
        "povray" => WorkloadParams {
            class: Cpu,
            miss_load_frac: 0.012,
            load_frac: 0.26,
            branch_frac: 0.14,
            hard_branch_frac: 0.18,
            hard_branch_bias: 0.7,
            loop_trip: 16,
            segments: 14,
            body_uops: 36,
            fp_frac: 0.45,
            longlat_frac: 0.12,
            ilp: 4,
            ..WorkloadParams::base("povray")
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{all_benchmarks, compute_intensive, memory_intensive};

    #[test]
    fn every_listed_benchmark_resolves_and_validates() {
        for name in all_benchmarks() {
            let spec = workload(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(spec.params().validate(), Ok(()), "{name}");
            assert_eq!(spec.name(), name);
        }
    }

    #[test]
    fn classes_match_suite_lists() {
        for name in memory_intensive() {
            assert_eq!(
                workload(name).unwrap().class(),
                WorkloadClass::MemoryIntensive,
                "{name}"
            );
        }
        for name in compute_intensive() {
            assert_eq!(
                workload(name).unwrap().class(),
                WorkloadClass::ComputeIntensive,
                "{name}"
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload("notabenchmark").is_none());
    }

    #[test]
    fn memory_models_have_large_footprints() {
        for name in memory_intensive() {
            let p = workload(name).unwrap().params().clone();
            assert!(
                p.footprint_bytes > 8 * 1024 * 1024,
                "{name} footprint must exceed the LLC"
            );
            assert!(p.miss_load_frac > 0.0, "{name} must produce misses");
        }
    }

    #[test]
    fn compute_models_have_only_marginal_miss_traffic() {
        // The paper's compute-intensive set has MPKI < 8, not zero.
        for name in compute_intensive() {
            let p = workload(name).unwrap().params().clone();
            assert!(p.miss_load_frac < 0.05, "{name}");
        }
    }

    #[test]
    fn from_params_rejects_invalid() {
        let mut p = WorkloadParams::base("x");
        p.branch_frac = 0.9;
        assert!(WorkloadSpec::from_params(p).is_err());
    }

    #[test]
    fn traces_are_constructible_for_all() {
        for name in all_benchmarks() {
            let spec = workload(name).unwrap();
            let n = spec.trace(1).take(100).count();
            assert_eq!(n, 100, "{name}");
        }
    }

    #[test]
    fn extras_resolve_but_stay_out_of_the_suites() {
        for name in crate::mix::extra_benchmarks() {
            let spec = workload(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(spec.params().validate(), Ok(()), "{name}");
            assert!(
                !all_benchmarks().contains(name),
                "{name} must not join the paper suites"
            );
        }
    }
}
