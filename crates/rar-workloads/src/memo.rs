//! Shareable, memoized trace prefixes.
//!
//! Every simulation of a given (workload, seed) consumes exactly the same
//! deterministic micro-op stream, and the dead-value analysis in
//! `rar-verify` additionally needs a materialized prefix of that stream.
//! Before this module existed each run generated the stream twice (once
//! for the liveness pass, once for the core) and every cell of a sweep
//! regenerated it from scratch. [`TracePrefix`] materializes the prefix
//! *once*, keeps the generator state positioned immediately after it, and
//! hands out [`SharedTraceIter`]s that replay the shared prefix and then
//! continue generating privately — so a prefix behind an `Arc` can feed
//! any number of concurrent simulations plus the liveness analysis
//! without regenerating a single micro-op.
//!
//! # Examples
//!
//! ```
//! use rar_workloads::{workload, TracePrefix};
//! use std::sync::Arc;
//!
//! let spec = workload("mcf").unwrap();
//! let prefix = Arc::new(TracePrefix::generate(&spec, 1, 100));
//! // The shared prefix replays identically for every consumer...
//! let a: Vec<_> = TracePrefix::resume(&prefix).take(150).collect();
//! let b: Vec<_> = TracePrefix::resume(&prefix).take(150).collect();
//! assert_eq!(a, b);
//! // ...and matches a fresh generator exactly, past the prefix too.
//! let fresh: Vec<_> = spec.trace(1).take(150).collect();
//! assert_eq!(a, fresh);
//! ```

use crate::gen::TraceGenerator;
use crate::spec::WorkloadSpec;
use rar_isa::Uop;
use std::sync::Arc;

/// A materialized prefix of one workload trace, plus the generator state
/// needed to continue past it. Cheap to share behind an [`Arc`]; see the
/// module docs.
#[derive(Debug, Clone)]
pub struct TracePrefix {
    workload: &'static str,
    seed: u64,
    uops: Vec<Uop>,
    /// Generator positioned immediately after `uops`.
    cont: TraceGenerator,
}

impl TracePrefix {
    /// Generates the first `len` micro-ops of `spec`'s trace for `seed`.
    #[must_use]
    pub fn generate(spec: &WorkloadSpec, seed: u64, len: usize) -> Self {
        let mut cont = spec.trace(seed);
        let uops: Vec<Uop> = cont.by_ref().take(len).collect();
        TracePrefix {
            workload: spec.name(),
            seed,
            uops,
            cont,
        }
    }

    /// A longer prefix of the same trace, continuing from this one's
    /// generator state (no micro-op is ever generated twice). Returns a
    /// clone when `len` does not exceed the current length.
    #[must_use]
    pub fn extended(&self, len: usize) -> Self {
        let mut next = self.clone();
        while next.uops.len() < len {
            let u = next
                .cont
                .next()
                .expect("workload generators must produce an infinite stream");
            next.uops.push(u);
        }
        next
    }

    /// Benchmark name this prefix was generated from.
    #[must_use]
    pub fn workload(&self) -> &'static str {
        self.workload
    }

    /// Generator seed this prefix was generated with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The materialized micro-ops.
    #[must_use]
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// Prefix length in micro-ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the prefix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// An iterator over the *full* (infinite) trace: replays the shared
    /// prefix, then continues with a private clone of the stored
    /// generator state.
    #[must_use]
    pub fn resume(prefix: &Arc<Self>) -> SharedTraceIter {
        SharedTraceIter {
            prefix: Arc::clone(prefix),
            pos: 0,
            cont: None,
        }
    }
}

/// Iterator handed out by [`TracePrefix::resume`]. The continuation
/// generator is cloned lazily, so consumers that stay within the prefix
/// never copy generator state.
#[derive(Debug, Clone)]
pub struct SharedTraceIter {
    prefix: Arc<TracePrefix>,
    pos: usize,
    cont: Option<TraceGenerator>,
}

impl Iterator for SharedTraceIter {
    type Item = Uop;

    fn next(&mut self) -> Option<Uop> {
        if self.pos < self.prefix.uops.len() {
            let u = self.prefix.uops[self.pos].clone();
            self.pos += 1;
            return Some(u);
        }
        self.cont
            .get_or_insert_with(|| self.prefix.cont.clone())
            .next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::workload;

    #[test]
    fn prefix_matches_fresh_generator() {
        let spec = workload("libquantum").unwrap();
        let prefix = TracePrefix::generate(&spec, 7, 500);
        let fresh: Vec<Uop> = spec.trace(7).take(500).collect();
        assert_eq!(prefix.uops(), &fresh[..]);
        assert_eq!(prefix.len(), 500);
        assert_eq!(prefix.workload(), "libquantum");
        assert_eq!(prefix.seed(), 7);
    }

    #[test]
    fn resume_continues_past_the_prefix_identically() {
        let spec = workload("mcf").unwrap();
        let prefix = Arc::new(TracePrefix::generate(&spec, 3, 200));
        let resumed: Vec<Uop> = TracePrefix::resume(&prefix).take(600).collect();
        let fresh: Vec<Uop> = spec.trace(3).take(600).collect();
        assert_eq!(resumed, fresh);
    }

    #[test]
    fn two_resumes_do_not_interfere() {
        let spec = workload("omnetpp").unwrap();
        let prefix = Arc::new(TracePrefix::generate(&spec, 1, 50));
        let mut a = TracePrefix::resume(&prefix);
        let mut b = TracePrefix::resume(&prefix);
        // Interleave: each iterator must keep its own continuation state.
        let a1: Vec<Uop> = a.by_ref().take(120).collect();
        let b1: Vec<Uop> = b.by_ref().take(120).collect();
        assert_eq!(a1, b1);
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn extended_prefix_is_consistent_with_longer_generation() {
        let spec = workload("gcc").unwrap();
        let short = TracePrefix::generate(&spec, 9, 100);
        let long = short.extended(400);
        let fresh = TracePrefix::generate(&spec, 9, 400);
        assert_eq!(long.uops(), fresh.uops());
        // Extending to a smaller/equal length is a no-op.
        assert_eq!(long.extended(10).len(), 400);
    }

    #[test]
    fn empty_prefix_resumes_from_the_start() {
        let spec = workload("milc").unwrap();
        let prefix = Arc::new(TracePrefix::generate(&spec, 2, 0));
        assert!(prefix.is_empty());
        let resumed: Vec<Uop> = TracePrefix::resume(&prefix).take(50).collect();
        let fresh: Vec<Uop> = spec.trace(2).take(50).collect();
        assert_eq!(resumed, fresh);
    }
}
