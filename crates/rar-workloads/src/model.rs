//! Workload model parameters.

use std::fmt;

/// Memory- versus compute-intensive classification (MPKI > 8 threshold in
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// More than 8 LLC misses per kilo-instruction on the baseline core.
    MemoryIntensive,
    /// Fewer than 8 LLC misses per kilo-instruction.
    ComputeIntensive,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::MemoryIntensive => write!(f, "memory-intensive"),
            WorkloadClass::ComputeIntensive => write!(f, "compute-intensive"),
        }
    }
}

/// How a workload's miss-producing loads walk memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential element-wise streams (stride in bytes). Misses are
    /// address-independent: ideal for MLP and runahead prefetching.
    Streaming {
        /// Number of concurrent streams.
        streams: usize,
        /// Element stride in bytes (one miss every `64/stride` loads).
        stride: u64,
    },
    /// Dependent pointer chases: the next address is the previous load's
    /// value. Runahead cannot prefetch past an unreturned miss.
    PointerChase {
        /// Number of independent chains (bounds attainable MLP).
        chains: usize,
    },
    /// A mixture: `chase_frac` of miss-loads chase pointers, the rest
    /// stream.
    Mixed {
        /// Fraction of miss-loads that are chase steps.
        chase_frac: f64,
        /// Independent chains.
        chains: usize,
        /// Concurrent streams.
        streams: usize,
        /// Stream element stride in bytes.
        stride: u64,
    },
}

/// Complete parameter set describing one synthetic benchmark.
///
/// See the [crate documentation](crate) for how each field maps to the
/// workload properties the paper's mechanisms interact with.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Benchmark name (paper Figure 3/7/8 label).
    pub name: &'static str,
    /// Memory- or compute-intensive.
    pub class: WorkloadClass,
    /// Fraction of dynamic micro-ops that are loads.
    pub load_frac: f64,
    /// Fraction of dynamic micro-ops that are stores.
    pub store_frac: f64,
    /// Fraction of dynamic micro-ops that are branches.
    pub branch_frac: f64,
    /// Fraction of *loads* directed at the miss-producing working set
    /// (the rest hit a small cache-resident buffer). Calibrates MPKI.
    pub miss_load_frac: f64,
    /// Working-set size in bytes for the miss-producing accesses
    /// (must exceed the 1 MB LLC to produce LLC misses).
    pub footprint_bytes: u64,
    /// The access pattern of miss-producing loads.
    pub pattern: AccessPattern,
    /// Fraction of *branches* that are data-dependent and hard to predict.
    pub hard_branch_frac: f64,
    /// Taken-probability of hard branches (0.5 = maximally unpredictable).
    pub hard_branch_bias: f64,
    /// Average inner-loop trip count (loop-closing branches).
    pub loop_trip: u32,
    /// Number of loop segments in the static program (code footprint).
    pub segments: usize,
    /// Micro-ops per segment body (before the loop branch).
    pub body_uops: usize,
    /// Fraction of compute micro-ops that are floating-point.
    pub fp_frac: f64,
    /// Fraction of compute micro-ops that are long-latency (mul/div);
    /// drives issue-queue pressure.
    pub longlat_frac: f64,
    /// Number of independent dependence chains among compute micro-ops
    /// (instruction-level parallelism).
    pub ilp: usize,
}

impl WorkloadParams {
    /// A neutral starting point: moderate ILP, few misses, predictable
    /// branches. Named constructors in [`crate::spec`] override fields.
    #[must_use]
    pub fn base(name: &'static str) -> Self {
        WorkloadParams {
            name,
            class: WorkloadClass::ComputeIntensive,
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.12,
            miss_load_frac: 0.0,
            footprint_bytes: 64 * 1024 * 1024,
            pattern: AccessPattern::Streaming {
                streams: 4,
                stride: 8,
            },
            hard_branch_frac: 0.10,
            hard_branch_bias: 0.85,
            loop_trip: 32,
            segments: 4,
            body_uops: 32,
            fp_frac: 0.0,
            longlat_frac: 0.05,
            ilp: 4,
        }
    }

    /// Sanity-checks fractions and sizes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("miss_load_frac", self.miss_load_frac),
            ("hard_branch_frac", self.hard_branch_frac),
            ("hard_branch_bias", self.hard_branch_bias),
            ("fp_frac", self.fp_frac),
            ("longlat_frac", self.longlat_frac),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} is not in [0, 1]"));
            }
        }
        if self.load_frac + self.store_frac + self.branch_frac >= 1.0 {
            return Err("load+store+branch fractions leave no room for compute".into());
        }
        if self.ilp == 0 || self.segments == 0 || self.body_uops < 4 {
            return Err("degenerate program shape".into());
        }
        if self.loop_trip == 0 {
            return Err("loop_trip must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_valid() {
        assert_eq!(WorkloadParams::base("x").validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_fractions() {
        let mut p = WorkloadParams::base("x");
        p.load_frac = 1.5;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::base("x");
        p.load_frac = 0.6;
        p.store_frac = 0.3;
        p.branch_frac = 0.2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_shape() {
        let mut p = WorkloadParams::base("x");
        p.ilp = 0;
        assert!(p.validate().is_err());
        let mut p = WorkloadParams::base("x");
        p.body_uops = 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_display() {
        assert_eq!(
            WorkloadClass::MemoryIntensive.to_string(),
            "memory-intensive"
        );
    }
}
