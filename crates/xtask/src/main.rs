//! Repo-local custom lints, run as `cargo xtask lint`.
//!
//! These are cross-file consistency checks the compiler cannot see,
//! implemented as plain source scans so the driver needs no dependencies:
//!
//! 1. **structure-bits** — every `Structure` variant in `rar-ace` has a
//!    Table III per-entry bit width in `bits.rs`.
//! 2. **stat-coverage** — every counter field declared in `CoreStats` /
//!    `MemStats` is actually incremented somewhere in its crate AND
//!    exported by `rar-sim`'s JSON writer. (A counter that is tallied but
//!    never reported — or declared but never tallied — has happened.)
//! 3. **trace-coverage** — every `TraceEvent` variant has a `kind()` tag
//!    and is handled by at least one exporter (chrome/konata/csv/jsonv).
//! 4. **metric-coverage** — every canonical metric name declared in
//!    `rar-telemetry`'s `names.rs` is actually registered by the sweep
//!    engine or the fault-injection campaign runner, both telemetry
//!    exporters (JSON and Prometheus) handle every metric kind — so a
//!    registered metric can never appear in one format and not the
//!    other — and every `CoreStats`/`MemStats` field is published into
//!    the registry by its `record_into`.
//! 5. **inject-target-bits** — every injectable `FaultTarget` variant in
//!    `rar-core` enumerates its per-entry bit width in `per_entry_bits`
//!    (a new injectable structure must never silently default to an
//!    arbitrary width) and appears in `FaultTarget::ALL`.
//! 6. **bit-transfer-coverage** — every `UopKind` variant in `rar-isa`
//!    has an explicit arm in BOTH bit-transfer functions of
//!    `rar-verify` (`src_live_mask` backward, `dest_poison_mask`
//!    forward), neither function hides behind a `_ =>` catch-all (a new
//!    uop kind must force a deliberate bit-semantics decision, or the
//!    analysis silently turns unsound), and the mask geometry agrees
//!    across crates: `MASK_BITS` equals the integer register width and
//!    divides the FP register width, with `ADDR_BITS` defined once.
//! 7. **serve-panic-paths** — the daemon's request-handling sources
//!    (`server.rs`, `http.rs`, `jobs.rs`) contain no `.unwrap()` /
//!    `.expect(` outside `#[cfg(test)]`: a poisoned lock or bad input
//!    must become a typed `HttpError` response, never a panicked
//!    connection or worker thread.
//! 8. **obs-coverage** — the observability surfaces stay complete: every
//!    `Phase` leaf-span name (and the daemon's request/queue/job/cell
//!    levels) is registered in `SPAN_NAMES`, every literal route in the
//!    daemon's `route()` has a matching per-endpoint latency label in
//!    `endpoint_label()` (nothing silently lands in `other`), and every
//!    `StallBucket` variant is named, listed in `ALL`, and rendered by
//!    both the Prometheus (`record_into`) and JSON (`rar-sim json.rs`)
//!    export paths plus the bench report.
//! 9. **chaos-coverage** — the chaos fail-point catalog stays honest:
//!    every site registered in `rar_chaos::sites` is listed in
//!    `sites::ALL`, documented by its dotted name in DESIGN.md, and
//!    exercised (by const name) in at least one integration test.
//!
//! Each lint prints `ok`/`FAIL` per rule; any failure exits nonzero so CI
//! can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn read(rel: &str) -> String {
    let path = root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extracts the variant names of `pub enum <name>` from `src` by brace
/// tracking: identifiers that open a line at depth 1 inside the enum body.
fn enum_variants(src: &str, name: &str) -> Vec<String> {
    let start = src
        .find(&format!("pub enum {name} {{"))
        .unwrap_or_else(|| panic!("enum {name} not found"));
    let mut depth = 0usize;
    let mut variants = Vec::new();
    for line in src[start..].lines() {
        let trimmed = line.trim();
        if depth == 1
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let ident: String = trimmed
                .chars()
                .take_while(char::is_ascii_alphanumeric)
                .collect();
            if !ident.is_empty() {
                variants.push(ident);
            }
        }
        depth += line.matches('{').count();
        depth = depth.saturating_sub(line.matches('}').count());
        if depth == 0 && line.contains('}') {
            break;
        }
    }
    variants
}

/// Extracts the `pub <field>:` names of `pub struct <name>` from `src`.
fn struct_fields(src: &str, name: &str) -> Vec<String> {
    let start = src
        .find(&format!("pub struct {name} {{"))
        .unwrap_or_else(|| panic!("struct {name} not found"));
    let mut fields = Vec::new();
    for line in src[start..].lines().skip(1) {
        let trimmed = line.trim();
        if trimmed.starts_with('}') {
            break;
        }
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            if let Some(colon) = rest.find(':') {
                fields.push(rest[..colon].trim().to_owned());
            }
        }
    }
    fields
}

/// All `.rs` sources under `rel` (non-recursive is enough: every crate
/// here keeps its sources flat in `src/`).
fn crate_sources(rel: &str) -> String {
    let dir = root().join(rel);
    let mut all = String::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        all.push_str(&std::fs::read_to_string(&path).expect("readable source"));
        all.push('\n');
    }
    all
}

struct Lint {
    failures: Vec<String>,
}

impl Lint {
    fn new() -> Self {
        Lint {
            failures: Vec::new(),
        }
    }

    fn check(&mut self, rule: &str, ok: bool, detail: String) {
        if ok {
            println!("  ok   {rule}: {detail}");
        } else {
            println!("  FAIL {rule}: {detail}");
            self.failures.push(format!("{rule}: {detail}"));
        }
    }
}

/// Lint 1: every ACE `Structure` variant has a Table III bit width.
fn lint_structure_bits(lint: &mut Lint) {
    println!("structure-bits");
    let structure = read("crates/rar-ace/src/structure.rs");
    let bits = read("crates/rar-ace/src/bits.rs");
    let variants = enum_variants(&structure, "Structure");
    lint.check(
        "structure-bits",
        variants.len() >= 7,
        format!("{} Structure variants found", variants.len()),
    );
    for v in &variants {
        lint.check(
            "structure-bits",
            bits.contains(&format!("Structure::{v}")),
            format!("Structure::{v} has a per-entry width in bits.rs"),
        );
    }
}

/// Lint 2: every declared stat counter is tallied and exported.
fn lint_stat_coverage(lint: &mut Lint) {
    println!("stat-coverage");
    let json = read("crates/rar-sim/src/json.rs");
    let cases = [
        (
            "CoreStats",
            "crates/rar-core/src/stats.rs",
            "crates/rar-core/src",
        ),
        (
            "MemStats",
            "crates/rar-mem/src/stats.rs",
            "crates/rar-mem/src",
        ),
    ];
    for (name, decl, src_dir) in cases {
        let decl_src = read(decl);
        let crate_src = crate_sources(src_dir);
        for f in struct_fields(&decl_src, name) {
            let tallied =
                crate_src.contains(&format!(".{f} +=")) || crate_src.contains(&format!(".{f} ="));
            lint.check(
                "stat-coverage",
                tallied,
                format!("{name}.{f} is incremented in {src_dir}"),
            );
            lint.check(
                "stat-coverage",
                json.contains(&format!(".{f}")),
                format!("{name}.{f} is exported by rar-sim json.rs"),
            );
        }
    }
}

/// Lint 3: every trace event has a kind tag and an exporter that
/// understands it.
fn lint_trace_coverage(lint: &mut Lint) {
    println!("trace-coverage");
    let event = read("crates/rar-trace/src/event.rs");
    let variants = enum_variants(&event, "TraceEvent");
    lint.check(
        "trace-coverage",
        variants.len() >= 10,
        format!("{} TraceEvent variants found", variants.len()),
    );
    let exporters = [
        "crates/rar-trace/src/chrome.rs",
        "crates/rar-trace/src/konata.rs",
        "crates/rar-trace/src/csv.rs",
        "crates/rar-trace/src/jsonv.rs",
    ];
    let exporter_src: String = exporters.iter().map(|p| read(p)).collect();
    for v in &variants {
        // kind() lives in event.rs itself; a variant missing there would
        // be a compile error, so only the exporter side can silently rot.
        lint.check(
            "trace-coverage",
            exporter_src.contains(&format!("TraceEvent::{v}")),
            format!("TraceEvent::{v} is handled by at least one exporter"),
        );
    }
}

/// Lint 4: the telemetry registry, its canonical names, and both
/// exporters stay consistent.
fn lint_metric_coverage(lint: &mut Lint) {
    println!("metric-coverage");
    let names_src = read("crates/rar-telemetry/src/names.rs");
    let mut metrics = Vec::new();
    for line in names_src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((ident, tail)) = rest.split_once(':') {
                if let Some(value) = tail.split('"').nth(1) {
                    metrics.push((ident.trim().to_owned(), value.to_owned()));
                }
            }
        }
    }
    lint.check(
        "metric-coverage",
        metrics.len() >= 12,
        format!("{} canonical metric names declared", metrics.len()),
    );
    // Every declared name must be registered by a consumer — a
    // declared-but-unregistered metric silently vanishes from manifests
    // and dashboards. Sweep metrics register in rar-sim, campaign
    // metrics in rar-inject, daemon metrics in rar-serve.
    let consumer_src = crate_sources("crates/rar-sim/src")
        + &crate_sources("crates/rar-inject/src")
        + &crate_sources("crates/rar-serve/src");
    for (ident, _) in &metrics {
        lint.check(
            "metric-coverage",
            consumer_src.contains(&format!("names::{ident}")),
            format!("names::{ident} is registered by rar-sim, rar-inject or rar-serve"),
        );
    }
    // Both exporters walk the same sorted registry snapshot, so "appears
    // in both formats" reduces to: each exporter handles every metric
    // kind. Each MetricValue variant must therefore be matched at least
    // twice in export.rs (once per exporter).
    let export_src = read("crates/rar-telemetry/src/export.rs");
    for kind in ["Counter", "Gauge", "Histogram"] {
        let uses = export_src.matches(&format!("MetricValue::{kind}")).count();
        lint.check(
            "metric-coverage",
            uses >= 2,
            format!("MetricValue::{kind} is handled by both exporters ({uses} match arms)"),
        );
    }
    // Every guest-side stat field must be published into the registry.
    for (name, decl) in [
        ("CoreStats", "crates/rar-core/src/stats.rs"),
        ("MemStats", "crates/rar-mem/src/stats.rs"),
    ] {
        let src = read(decl);
        for f in struct_fields(&src, name) {
            lint.check(
                "metric-coverage",
                src.contains(&format!("(\"{f}\", self.{f})")),
                format!("{name}.{f} is published by record_into"),
            );
        }
    }
}

/// Lint 5: every injectable `FaultTarget` enumerates its bit width.
fn lint_inject_target_bits(lint: &mut Lint) {
    println!("inject-target-bits");
    let inject = read("crates/rar-core/src/inject.rs");
    let variants = enum_variants(&inject, "FaultTarget");
    lint.check(
        "inject-target-bits",
        variants.len() >= 10,
        format!("{} FaultTarget variants found", variants.len()),
    );
    // The per_entry_bits body: from the fn to the next fn. A variant
    // absent from the match would be a compile error only if the match
    // had no catch-all; this lint forbids the catch-all from ever being
    // introduced by requiring each variant to appear explicitly.
    let body_start = inject
        .find("pub const fn per_entry_bits")
        .expect("per_entry_bits exists");
    let body = &inject[body_start..];
    let body_end = body[1..].find("pub fn").map_or(body.len(), |i| i + 1);
    let body = &body[..body_end];
    for v in &variants {
        lint.check(
            "inject-target-bits",
            body.contains(&format!("FaultTarget::{v} =>")),
            format!("FaultTarget::{v} enumerates its width in per_entry_bits"),
        );
        lint.check(
            "inject-target-bits",
            inject.matches(&format!("FaultTarget::{v},")).count() >= 1,
            format!("FaultTarget::{v} is listed in FaultTarget::ALL"),
        );
    }
}

/// Extracts the body of `pub const fn <name>` from `src`: everything
/// from the declaration to the next function declaration (or the test
/// module, so the last function in a file isn't scanned past its end).
fn const_fn_body<'a>(src: &'a str, name: &str) -> &'a str {
    let decl = format!("pub const fn {name}");
    let start = src
        .find(&decl)
        .unwrap_or_else(|| panic!("{decl} not found"));
    let rest = &src[start + decl.len()..];
    let end = ["pub const fn", "pub fn", "#[cfg(test)]"]
        .iter()
        .filter_map(|p| rest.find(p))
        .min()
        .unwrap_or(rest.len());
    &rest[..end]
}

/// Parses the numeric value of `pub const <name>: u64 = N;` from `src`.
fn const_u64(src: &str, name: &str) -> u64 {
    let pat = format!("pub const {name}: u64 = ");
    let start = src.find(&pat).unwrap_or_else(|| panic!("{name} not found")) + pat.len();
    src[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric const")
}

/// Lint 6: the per-bit transfer functions cover every uop kind
/// explicitly, and the mask geometry is consistent across crates.
fn lint_bit_transfer_coverage(lint: &mut Lint) {
    println!("bit-transfer-coverage");
    let uop = read("crates/rar-isa/src/uop.rs");
    let transfer = read("crates/rar-verify/src/transfer.rs");
    let variants = enum_variants(&uop, "UopKind");
    lint.check(
        "bit-transfer-coverage",
        variants.len() >= 10,
        format!("{} UopKind variants found", variants.len()),
    );
    for f in ["src_live_mask", "dest_poison_mask"] {
        let body = const_fn_body(&transfer, f);
        for v in &variants {
            lint.check(
                "bit-transfer-coverage",
                body.contains(&format!("UopKind::{v} =>")),
                format!("UopKind::{v} has an explicit arm in {f}"),
            );
        }
        lint.check(
            "bit-transfer-coverage",
            !body.contains("_ =>"),
            format!("{f} has no catch-all arm"),
        );
    }
    // Mask geometry: one 64-bit mask per physical register, FP registers
    // folded (mask bit i covers register bits i and i+64). MASK_BITS must
    // therefore equal the integer register width and divide the FP one.
    let bits = read("crates/rar-ace/src/bits.rs");
    let mask_bits = const_u64(&transfer, "MASK_BITS");
    let int_bits = const_u64(&bits, "INT_REG_BITS");
    let fp_bits = const_u64(&bits, "FP_REG_BITS");
    lint.check(
        "bit-transfer-coverage",
        mask_bits == int_bits,
        format!("MASK_BITS ({mask_bits}) equals INT_REG_BITS ({int_bits})"),
    );
    lint.check(
        "bit-transfer-coverage",
        mask_bits > 0 && fp_bits.is_multiple_of(mask_bits),
        format!("FP_REG_BITS ({fp_bits}) is a multiple of MASK_BITS ({mask_bits})"),
    );
    // The address width must have a single definition: transfer.rs
    // imports it from the word-level refinement instead of shadowing it.
    lint.check(
        "bit-transfer-coverage",
        transfer.contains("use crate::liveness::ADDR_BITS"),
        "transfer.rs imports ADDR_BITS from liveness.rs".to_owned(),
    );
    lint.check(
        "bit-transfer-coverage",
        !transfer.contains("const ADDR_BITS"),
        "transfer.rs does not redefine ADDR_BITS".to_owned(),
    );
}

/// Lint 7: daemon request paths never panic — poisoned locks and bad
/// input become typed `HttpError` responses.
fn lint_serve_panic_paths(lint: &mut Lint) {
    println!("serve-panic-paths");
    let http = read("crates/rar-serve/src/http.rs");
    lint.check(
        "serve-panic-paths",
        http.contains("pub enum HttpError"),
        "http.rs defines the typed HttpError".to_owned(),
    );
    for file in ["server.rs", "http.rs", "jobs.rs"] {
        let src = read(&format!("crates/rar-serve/src/{file}"));
        // Only the non-test portion is request-path code; every one of
        // these files keeps its test module last.
        let live = src.split("#[cfg(test)]").next().unwrap_or("");
        for pat in [".unwrap()", ".expect("] {
            let hits = live.matches(pat).count();
            lint.check(
                "serve-panic-paths",
                hits == 0,
                format!("{file} has no {pat} outside tests ({hits} found)"),
            );
        }
    }
    let server = read("crates/rar-serve/src/server.rs");
    lint.check(
        "serve-panic-paths",
        server.contains("respond_error(") && server.contains("lock("),
        "server.rs routes lock failures through respond_error".to_owned(),
    );
}

/// Lint 8: the observability surfaces stay complete — every profiled
/// phase has a registered span name, every daemon route has a latency
/// endpoint label, and every stall bucket reaches both exporters.
fn lint_obs_coverage(lint: &mut Lint) {
    println!("obs-coverage");
    // Every Phase leaf-span name must be registered in SPAN_NAMES, or
    // the daemon records spans no trace consumer knows to look for.
    let profile = read("crates/rar-telemetry/src/profile.rs");
    let span = read("crates/rar-telemetry/src/span.rs");
    let phase_names: Vec<&str> = profile
        .lines()
        .filter(|l| l.trim_start().starts_with("Phase::"))
        .filter_map(|l| l.split('"').nth(1))
        .collect();
    lint.check(
        "obs-coverage",
        phase_names.len() >= 6,
        format!("{} Phase leaf-span names found", phase_names.len()),
    );
    for name in &phase_names {
        lint.check(
            "obs-coverage",
            span.contains(&format!("\"{name}\"")),
            format!("phase {name} is registered in SPAN_NAMES"),
        );
    }
    for name in ["request", "queue_wait", "job", "cell"] {
        lint.check(
            "obs-coverage",
            span.contains(&format!("\"{name}\"")),
            format!("daemon level {name} is registered in SPAN_NAMES"),
        );
    }
    // Every route the daemon serves must map to a latency-endpoint label:
    // each literal route pattern in `route()` must reappear in
    // `endpoint_label()`, so no endpoint silently falls into "other".
    let server = read("crates/rar-serve/src/server.rs");
    let label_start = server
        .find("fn endpoint_label")
        .expect("endpoint_label exists");
    let route_start = server[label_start..]
        .find("fn route")
        .expect("route exists")
        + label_start;
    let label_body = &server[label_start..route_start];
    let routes: Vec<&str> = server[route_start..]
        .lines()
        .take_while(|l| !l.trim_start().starts_with("_ =>"))
        .map(str::trim_start)
        .filter(|l| l.starts_with("(\""))
        .filter_map(|l| l.split(" =>").next())
        .collect();
    lint.check(
        "obs-coverage",
        routes.len() >= 8,
        format!("{} literal routes found in route()", routes.len()),
    );
    for r in &routes {
        // Route patterns bind path segments by name (`id`, `index`); the
        // label arms wildcard them. Normalize bindings to `_` to compare.
        let normalized = r
            .replace(", id,", ", _,")
            .replace(", id]", ", _]")
            .replace(", index]", ", _]");
        lint.check(
            "obs-coverage",
            label_body.contains(&normalized),
            format!("route {r} has an endpoint label"),
        );
    }
    // Every stall bucket must reach both exporters. The exporters render
    // by iterating StallBucket::ALL, so the checks are: no variant is
    // missing from name()/ALL, and both render paths iterate ALL.
    let stall = read("crates/rar-core/src/stall.rs");
    let variants = enum_variants(&stall, "StallBucket");
    lint.check(
        "obs-coverage",
        variants.len() >= 9,
        format!("{} StallBucket variants found", variants.len()),
    );
    for v in &variants {
        lint.check(
            "obs-coverage",
            stall.contains(&format!("StallBucket::{v} =>")),
            format!("StallBucket::{v} has a name() arm"),
        );
        lint.check(
            "obs-coverage",
            stall.contains(&format!("StallBucket::{v},")),
            format!("StallBucket::{v} is listed in StallBucket::ALL"),
        );
    }
    let json = read("crates/rar-sim/src/json.rs");
    let sweep = read("crates/rar-sim/src/sweep.rs");
    lint.check(
        "obs-coverage",
        stall
            .split("pub fn record_into")
            .nth(1)
            .is_some_and(|body| body.contains("StallBucket::ALL")),
        "record_into iterates StallBucket::ALL (Prometheus export)".to_owned(),
    );
    lint.check(
        "obs-coverage",
        json.contains("StallBucket::ALL"),
        "rar-sim json.rs iterates StallBucket::ALL (JSON export)".to_owned(),
    );
    lint.check(
        "obs-coverage",
        sweep.contains("StallBucket::ALL"),
        "bench_json_with_stalls iterates StallBucket::ALL".to_owned(),
    );
}

/// Lint 9: the chaos fail-point catalog stays honest — every site
/// registered in `rar_chaos::sites` is listed in `sites::ALL`,
/// documented by its dotted name in DESIGN.md, and exercised (by const
/// name) in at least one integration test. A fail-point nobody can look
/// up or that no test fires is dead weight pretending to be coverage.
fn lint_chaos_coverage(lint: &mut Lint) {
    println!("chaos-coverage");
    let failpoint = read("crates/rar-chaos/src/failpoint.rs");
    let module = failpoint
        .split("pub mod sites")
        .nth(1)
        .and_then(|rest| rest.split("\n}").next())
        .unwrap_or("");
    // (const ident, dotted site name) pairs; ALL itself is `[&str; N]`
    // so the `: &str =` filter skips it.
    let sites: Vec<(&str, &str)> = module
        .lines()
        .map(str::trim_start)
        .filter(|l| l.starts_with("pub const ") && l.contains(": &str = \""))
        .filter_map(|l| {
            let ident = l.strip_prefix("pub const ")?.split(':').next()?;
            let name = l.split('"').nth(1)?;
            Some((ident, name))
        })
        .collect();
    lint.check(
        "chaos-coverage",
        sites.len() >= 11,
        format!("{} fail-point sites registered", sites.len()),
    );
    let all_body = module.split("pub const ALL").nth(1).unwrap_or("");
    let design = read("DESIGN.md");
    let mut tests = String::new();
    if let Ok(crates) = std::fs::read_dir(root().join("crates")) {
        for krate in crates.flatten() {
            if let Ok(files) = std::fs::read_dir(krate.path().join("tests")) {
                for file in files.flatten() {
                    if file.path().extension().is_some_and(|e| e == "rs") {
                        tests.push_str(&std::fs::read_to_string(file.path()).unwrap_or_default());
                    }
                }
            }
        }
    }
    for (ident, name) in &sites {
        lint.check(
            "chaos-coverage",
            all_body.contains(ident),
            format!("site {ident} is listed in sites::ALL"),
        );
        lint.check(
            "chaos-coverage",
            design.contains(name),
            format!("site {name} is documented in DESIGN.md"),
        );
        lint.check(
            "chaos-coverage",
            tests.contains(ident),
            format!("site {ident} is exercised by an integration test"),
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut lint = Lint::new();
            lint_structure_bits(&mut lint);
            lint_stat_coverage(&mut lint);
            lint_trace_coverage(&mut lint);
            lint_metric_coverage(&mut lint);
            lint_inject_target_bits(&mut lint);
            lint_bit_transfer_coverage(&mut lint);
            lint_serve_panic_paths(&mut lint);
            lint_obs_coverage(&mut lint);
            lint_chaos_coverage(&mut lint);
            if lint.failures.is_empty() {
                println!("xtask lint: all checks passed");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} failure(s)", lint.failures.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variant_extraction_handles_struct_variants() {
        let src = "pub enum TraceEvent {\n    /// doc\n    UopDispatched {\n        seq: u64,\n    },\n    Sample(SampleRow),\n}\n";
        assert_eq!(
            enum_variants(src, "TraceEvent"),
            vec!["UopDispatched", "Sample"]
        );
    }

    #[test]
    fn struct_field_extraction_skips_private_and_docs() {
        let src = "pub struct CoreStats {\n    /// Elapsed cycles.\n    pub cycles: u64,\n    hidden: u64,\n    pub committed: u64,\n}\n";
        assert_eq!(struct_fields(src, "CoreStats"), vec!["cycles", "committed"]);
    }

    #[test]
    fn repo_lints_pass() {
        let mut lint = Lint::new();
        lint_structure_bits(&mut lint);
        lint_stat_coverage(&mut lint);
        lint_trace_coverage(&mut lint);
        lint_metric_coverage(&mut lint);
        lint_inject_target_bits(&mut lint);
        lint_bit_transfer_coverage(&mut lint);
        lint_serve_panic_paths(&mut lint);
        lint_obs_coverage(&mut lint);
        lint_chaos_coverage(&mut lint);
        assert!(lint.failures.is_empty(), "{:?}", lint.failures);
    }

    #[test]
    fn const_fn_body_stops_at_the_next_function() {
        let src = "pub const fn first(x: u64) -> u64 {\n    match x { _ => 1 }\n}\n\npub const fn second(x: u64) -> u64 {\n    x\n}\n\n#[cfg(test)]\nmod tests {\n    fn helper() -> u64 { match 0 { _ => 2 } }\n}\n";
        let body = const_fn_body(src, "first");
        assert!(body.contains("match x"));
        assert!(!body.contains("second"));
        let last = const_fn_body(src, "second");
        assert!(last.contains('x'));
        assert!(!last.contains("helper"), "must stop at the test module");
    }

    #[test]
    fn const_u64_parses_declared_values() {
        let src = "pub const MASK_BITS: u64 = 64;\npub const OTHER: u64 = 128;\n";
        assert_eq!(const_u64(src, "MASK_BITS"), 64);
        assert_eq!(const_u64(src, "OTHER"), 128);
    }
}
