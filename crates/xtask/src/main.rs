//! Repo-local custom lints, run as `cargo xtask lint`.
//!
//! These are cross-file consistency checks the compiler cannot see,
//! implemented as plain source scans so the driver needs no dependencies:
//!
//! 1. **structure-bits** — every `Structure` variant in `rar-ace` has a
//!    Table III per-entry bit width in `bits.rs`.
//! 2. **stat-coverage** — every counter field declared in `CoreStats` /
//!    `MemStats` is actually incremented somewhere in its crate AND
//!    exported by `rar-sim`'s JSON writer. (A counter that is tallied but
//!    never reported — or declared but never tallied — has happened.)
//! 3. **trace-coverage** — every `TraceEvent` variant has a `kind()` tag
//!    and is handled by at least one exporter (chrome/konata/csv/jsonv).
//! 4. **metric-coverage** — every canonical metric name declared in
//!    `rar-telemetry`'s `names.rs` is actually registered by the sweep
//!    engine or the fault-injection campaign runner, both telemetry
//!    exporters (JSON and Prometheus) handle every metric kind — so a
//!    registered metric can never appear in one format and not the
//!    other — and every `CoreStats`/`MemStats` field is published into
//!    the registry by its `record_into`.
//! 5. **inject-target-bits** — every injectable `FaultTarget` variant in
//!    `rar-core` enumerates its per-entry bit width in `per_entry_bits`
//!    (a new injectable structure must never silently default to an
//!    arbitrary width) and appears in `FaultTarget::ALL`.
//!
//! Each lint prints `ok`/`FAIL` per rule; any failure exits nonzero so CI
//! can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn read(rel: &str) -> String {
    let path = root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extracts the variant names of `pub enum <name>` from `src` by brace
/// tracking: identifiers that open a line at depth 1 inside the enum body.
fn enum_variants(src: &str, name: &str) -> Vec<String> {
    let start = src
        .find(&format!("pub enum {name} {{"))
        .unwrap_or_else(|| panic!("enum {name} not found"));
    let mut depth = 0usize;
    let mut variants = Vec::new();
    for line in src[start..].lines() {
        let trimmed = line.trim();
        if depth == 1
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let ident: String = trimmed
                .chars()
                .take_while(char::is_ascii_alphanumeric)
                .collect();
            if !ident.is_empty() {
                variants.push(ident);
            }
        }
        depth += line.matches('{').count();
        depth = depth.saturating_sub(line.matches('}').count());
        if depth == 0 && line.contains('}') {
            break;
        }
    }
    variants
}

/// Extracts the `pub <field>:` names of `pub struct <name>` from `src`.
fn struct_fields(src: &str, name: &str) -> Vec<String> {
    let start = src
        .find(&format!("pub struct {name} {{"))
        .unwrap_or_else(|| panic!("struct {name} not found"));
    let mut fields = Vec::new();
    for line in src[start..].lines().skip(1) {
        let trimmed = line.trim();
        if trimmed.starts_with('}') {
            break;
        }
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            if let Some(colon) = rest.find(':') {
                fields.push(rest[..colon].trim().to_owned());
            }
        }
    }
    fields
}

/// All `.rs` sources under `rel` (non-recursive is enough: every crate
/// here keeps its sources flat in `src/`).
fn crate_sources(rel: &str) -> String {
    let dir = root().join(rel);
    let mut all = String::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        all.push_str(&std::fs::read_to_string(&path).expect("readable source"));
        all.push('\n');
    }
    all
}

struct Lint {
    failures: Vec<String>,
}

impl Lint {
    fn new() -> Self {
        Lint {
            failures: Vec::new(),
        }
    }

    fn check(&mut self, rule: &str, ok: bool, detail: String) {
        if ok {
            println!("  ok   {rule}: {detail}");
        } else {
            println!("  FAIL {rule}: {detail}");
            self.failures.push(format!("{rule}: {detail}"));
        }
    }
}

/// Lint 1: every ACE `Structure` variant has a Table III bit width.
fn lint_structure_bits(lint: &mut Lint) {
    println!("structure-bits");
    let structure = read("crates/rar-ace/src/structure.rs");
    let bits = read("crates/rar-ace/src/bits.rs");
    let variants = enum_variants(&structure, "Structure");
    lint.check(
        "structure-bits",
        variants.len() >= 7,
        format!("{} Structure variants found", variants.len()),
    );
    for v in &variants {
        lint.check(
            "structure-bits",
            bits.contains(&format!("Structure::{v}")),
            format!("Structure::{v} has a per-entry width in bits.rs"),
        );
    }
}

/// Lint 2: every declared stat counter is tallied and exported.
fn lint_stat_coverage(lint: &mut Lint) {
    println!("stat-coverage");
    let json = read("crates/rar-sim/src/json.rs");
    let cases = [
        (
            "CoreStats",
            "crates/rar-core/src/stats.rs",
            "crates/rar-core/src",
        ),
        (
            "MemStats",
            "crates/rar-mem/src/stats.rs",
            "crates/rar-mem/src",
        ),
    ];
    for (name, decl, src_dir) in cases {
        let decl_src = read(decl);
        let crate_src = crate_sources(src_dir);
        for f in struct_fields(&decl_src, name) {
            let tallied =
                crate_src.contains(&format!(".{f} +=")) || crate_src.contains(&format!(".{f} ="));
            lint.check(
                "stat-coverage",
                tallied,
                format!("{name}.{f} is incremented in {src_dir}"),
            );
            lint.check(
                "stat-coverage",
                json.contains(&format!(".{f}")),
                format!("{name}.{f} is exported by rar-sim json.rs"),
            );
        }
    }
}

/// Lint 3: every trace event has a kind tag and an exporter that
/// understands it.
fn lint_trace_coverage(lint: &mut Lint) {
    println!("trace-coverage");
    let event = read("crates/rar-trace/src/event.rs");
    let variants = enum_variants(&event, "TraceEvent");
    lint.check(
        "trace-coverage",
        variants.len() >= 10,
        format!("{} TraceEvent variants found", variants.len()),
    );
    let exporters = [
        "crates/rar-trace/src/chrome.rs",
        "crates/rar-trace/src/konata.rs",
        "crates/rar-trace/src/csv.rs",
        "crates/rar-trace/src/jsonv.rs",
    ];
    let exporter_src: String = exporters.iter().map(|p| read(p)).collect();
    for v in &variants {
        // kind() lives in event.rs itself; a variant missing there would
        // be a compile error, so only the exporter side can silently rot.
        lint.check(
            "trace-coverage",
            exporter_src.contains(&format!("TraceEvent::{v}")),
            format!("TraceEvent::{v} is handled by at least one exporter"),
        );
    }
}

/// Lint 4: the telemetry registry, its canonical names, and both
/// exporters stay consistent.
fn lint_metric_coverage(lint: &mut Lint) {
    println!("metric-coverage");
    let names_src = read("crates/rar-telemetry/src/names.rs");
    let mut metrics = Vec::new();
    for line in names_src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((ident, tail)) = rest.split_once(':') {
                if let Some(value) = tail.split('"').nth(1) {
                    metrics.push((ident.trim().to_owned(), value.to_owned()));
                }
            }
        }
    }
    lint.check(
        "metric-coverage",
        metrics.len() >= 12,
        format!("{} canonical metric names declared", metrics.len()),
    );
    // Every declared name must be registered by a consumer — a
    // declared-but-unregistered metric silently vanishes from manifests
    // and dashboards. Sweep metrics register in rar-sim, campaign
    // metrics in rar-inject, daemon metrics in rar-serve.
    let consumer_src = crate_sources("crates/rar-sim/src")
        + &crate_sources("crates/rar-inject/src")
        + &crate_sources("crates/rar-serve/src");
    for (ident, _) in &metrics {
        lint.check(
            "metric-coverage",
            consumer_src.contains(&format!("names::{ident}")),
            format!("names::{ident} is registered by rar-sim, rar-inject or rar-serve"),
        );
    }
    // Both exporters walk the same sorted registry snapshot, so "appears
    // in both formats" reduces to: each exporter handles every metric
    // kind. Each MetricValue variant must therefore be matched at least
    // twice in export.rs (once per exporter).
    let export_src = read("crates/rar-telemetry/src/export.rs");
    for kind in ["Counter", "Gauge", "Histogram"] {
        let uses = export_src.matches(&format!("MetricValue::{kind}")).count();
        lint.check(
            "metric-coverage",
            uses >= 2,
            format!("MetricValue::{kind} is handled by both exporters ({uses} match arms)"),
        );
    }
    // Every guest-side stat field must be published into the registry.
    for (name, decl) in [
        ("CoreStats", "crates/rar-core/src/stats.rs"),
        ("MemStats", "crates/rar-mem/src/stats.rs"),
    ] {
        let src = read(decl);
        for f in struct_fields(&src, name) {
            lint.check(
                "metric-coverage",
                src.contains(&format!("(\"{f}\", self.{f})")),
                format!("{name}.{f} is published by record_into"),
            );
        }
    }
}

/// Lint 5: every injectable `FaultTarget` enumerates its bit width.
fn lint_inject_target_bits(lint: &mut Lint) {
    println!("inject-target-bits");
    let inject = read("crates/rar-core/src/inject.rs");
    let variants = enum_variants(&inject, "FaultTarget");
    lint.check(
        "inject-target-bits",
        variants.len() >= 10,
        format!("{} FaultTarget variants found", variants.len()),
    );
    // The per_entry_bits body: from the fn to the next fn. A variant
    // absent from the match would be a compile error only if the match
    // had no catch-all; this lint forbids the catch-all from ever being
    // introduced by requiring each variant to appear explicitly.
    let body_start = inject
        .find("pub const fn per_entry_bits")
        .expect("per_entry_bits exists");
    let body = &inject[body_start..];
    let body_end = body[1..].find("pub fn").map_or(body.len(), |i| i + 1);
    let body = &body[..body_end];
    for v in &variants {
        lint.check(
            "inject-target-bits",
            body.contains(&format!("FaultTarget::{v} =>")),
            format!("FaultTarget::{v} enumerates its width in per_entry_bits"),
        );
        lint.check(
            "inject-target-bits",
            inject.matches(&format!("FaultTarget::{v},")).count() >= 1,
            format!("FaultTarget::{v} is listed in FaultTarget::ALL"),
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut lint = Lint::new();
            lint_structure_bits(&mut lint);
            lint_stat_coverage(&mut lint);
            lint_trace_coverage(&mut lint);
            lint_metric_coverage(&mut lint);
            lint_inject_target_bits(&mut lint);
            if lint.failures.is_empty() {
                println!("xtask lint: all checks passed");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} failure(s)", lint.failures.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variant_extraction_handles_struct_variants() {
        let src = "pub enum TraceEvent {\n    /// doc\n    UopDispatched {\n        seq: u64,\n    },\n    Sample(SampleRow),\n}\n";
        assert_eq!(
            enum_variants(src, "TraceEvent"),
            vec!["UopDispatched", "Sample"]
        );
    }

    #[test]
    fn struct_field_extraction_skips_private_and_docs() {
        let src = "pub struct CoreStats {\n    /// Elapsed cycles.\n    pub cycles: u64,\n    hidden: u64,\n    pub committed: u64,\n}\n";
        assert_eq!(struct_fields(src, "CoreStats"), vec!["cycles", "committed"]);
    }

    #[test]
    fn repo_lints_pass() {
        let mut lint = Lint::new();
        lint_structure_bits(&mut lint);
        lint_stat_coverage(&mut lint);
        lint_trace_coverage(&mut lint);
        lint_metric_coverage(&mut lint);
        lint_inject_target_bits(&mut lint);
        assert!(lint.failures.is_empty(), "{:?}", lint.failures);
    }
}
