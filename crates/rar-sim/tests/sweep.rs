//! Integration tests for the memoizing sweep engine and its disk cache:
//! warm-rerun bit-identity, thread-count independence, and cache-defect
//! recovery, exercised through the public `rar_sim` API exactly as the
//! binaries use it.

use rar_core::Technique;
use rar_sim::{SimConfig, Simulation, SweepSession, CACHE_VERSION};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rar-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> Vec<SimConfig> {
    let mut v = Vec::new();
    for w in ["mcf", "libquantum", "milc"] {
        for t in [Technique::Ooo, Technique::Flush, Technique::Rar] {
            v.push(
                SimConfig::builder()
                    .workload(w)
                    .technique(t)
                    .warmup(300)
                    .instructions(1_500)
                    .build(),
            );
        }
    }
    v
}

#[test]
fn warm_cache_rerun_is_bit_identical() {
    let dir = tmp_dir("warm");
    let grid = grid();

    let cold = SweepSession::with_disk_cache(&dir);
    let first = cold.run_all(&grid);
    let cs = cold.stats();
    assert_eq!(cs.simulated as usize, grid.len());
    assert_eq!(cs.cache_hits, 0);

    // A brand-new session over the same directory must replay every cell
    // from disk, bit for bit — including the derived floating-point
    // figures and the exported JSON.
    let warm = SweepSession::with_disk_cache(&dir);
    let second = warm.run_all(&grid);
    let ws = warm.stats();
    assert_eq!(ws.simulated, 0, "warm rerun must not simulate");
    assert_eq!(ws.cache_hits as usize, grid.len());
    assert_eq!(ws.cache_hit_rate(), 1.0);
    for ((cfg, a), b) in grid.iter().zip(&first).zip(&second) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a, b, "{}", cfg.fingerprint());
        assert_eq!(
            rar_sim::json::to_json_for(cfg, a),
            rar_sim::json::to_json_for(cfg, b)
        );
        assert_eq!(a.ipc().to_bits(), b.ipc().to_bits());
        assert_eq!(
            a.reliability.refined_avf().to_bits(),
            b.reliability.refined_avf().to_bits()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn results_are_independent_of_thread_count() {
    let grid = grid();
    let serial = SweepSession::new().threads(1).run_all(&grid);
    let parallel = SweepSession::new().threads(8).run_all(&grid);
    assert_eq!(serial.len(), parallel.len());
    for ((cfg, s), p) in grid.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            s.as_ref().unwrap(),
            p.as_ref().unwrap(),
            "{}",
            cfg.fingerprint()
        );
    }
}

#[test]
fn sweep_cells_match_standalone_runs() {
    // Memoized artifacts and work stealing must be invisible in the
    // results: each cell equals a from-scratch Simulation::run.
    let grid = grid();
    let swept = SweepSession::new().run_all(&grid);
    for (cfg, r) in grid.iter().zip(&swept) {
        assert_eq!(
            r.as_ref().unwrap(),
            &Simulation::run(cfg),
            "{}",
            cfg.fingerprint()
        );
    }
}

#[test]
fn corrupted_and_stale_entries_are_resimulated() {
    let dir = tmp_dir("defects");
    let grid = &grid()[..3];

    let first = SweepSession::with_disk_cache(&dir);
    let baseline = first.run_all(grid);

    // Corrupt one entry, version-strand another, leave the third intact.
    let cache = first.cache().unwrap();
    std::fs::write(cache.entry_path(&grid[0]), "{ truncated garbage").unwrap();
    let stale_path = cache.entry_path(&grid[1]);
    let stale = std::fs::read_to_string(&stale_path).unwrap().replace(
        &format!("\"rar_cache_version\": {CACHE_VERSION}"),
        &format!("\"rar_cache_version\": {}", CACHE_VERSION + 1),
    );
    std::fs::write(&stale_path, stale).unwrap();

    let second = SweepSession::with_disk_cache(&dir);
    let replayed = second.run_all(grid);
    let s = second.stats();
    assert_eq!(s.simulated, 2, "both defective entries must re-simulate");
    assert_eq!(s.cache_hits, 1, "the intact entry must replay");
    for (a, b) in baseline.iter().zip(&replayed) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }

    // Re-simulation repaired the defective entries on disk.
    let third = SweepSession::with_disk_cache(&dir);
    let _ = third.run_all(grid);
    assert_eq!(third.stats().cache_hits, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiment_options_share_one_session_across_matrices() {
    // Two figure-style matrices over one session: the second reuses the
    // memoized traces of the first (same workload/seed/horizon keys).
    let opts = rar_sim::ExperimentOptions {
        instructions: 1_000,
        warmup: 200,
        ..rar_sim::ExperimentOptions::default()
    };
    let cfg = |t: Technique| {
        SimConfig::builder()
            .workload("mcf")
            .technique(t)
            .instructions(opts.instructions)
            .warmup(opts.warmup)
            .build()
    };
    let session = Arc::clone(&opts.session);
    let _ = session.run_all(&[cfg(Technique::Ooo)]);
    let _ = session.run_all(&[cfg(Technique::Rar), cfg(Technique::Flush)]);
    let s = session.stats();
    assert_eq!(s.trace_memo_misses, 1, "one workload key, one generation");
    assert_eq!(s.trace_memo_hits, 2);
    assert_eq!(s.refinement_memo_misses, 1);
    assert_eq!(s.refinement_memo_hits, 2);
}
