// Chaos builds only: `cargo test -p rar-sim --features chaos --test chaos`.
#![cfg(feature = "chaos")]
//! Convergence under the chaos fabric: with each disk-cache and
//! campaign-journal fail-point class armed on a deterministic schedule,
//! sweep results and injection tallies must stay byte-identical to a
//! clean run. The fabric may cost retries, re-simulations and opened
//! circuit breakers — never different bytes.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use rar_chaos::{sites, ChaosPlan};
use rar_inject::CampaignSpec;
use rar_sim::inject::{run_injection_campaign, InjectionHarness};
use rar_sim::{json, SimConfig, SweepSession};

/// The chaos fabric is process-global; armed tests serialize on this.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unique scratch dir per test; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("rar-sim-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cfg() -> SimConfig {
    SimConfig::builder()
        .workload("mcf")
        .technique(rar_core::Technique::Rar)
        .instructions(2_000)
        .warmup(300)
        .build()
}

/// A few cells, so per-site call counters advance far enough for every
/// scheduled offset to fire (e.g. corrupt-on-read only triggers on reads
/// of an entry that exists).
fn grid() -> Vec<SimConfig> {
    ["mcf", "libquantum", "milc"]
        .into_iter()
        .map(|w| {
            SimConfig::builder()
                .workload(w)
                .technique(rar_core::Technique::Rar)
                .instructions(2_000)
                .warmup(300)
                .build()
        })
        .collect()
}

/// One populate-then-replay pair over the grid against a fresh cache
/// dir, returning both concatenated result documents (replay cells may
/// be cache hits or chaos-degraded re-simulations — the bytes must not
/// care).
fn sweep_pair(scratch: &Scratch) -> (String, String) {
    let run_all = || {
        let session = SweepSession::with_disk_cache(scratch.0.join("cache"));
        grid()
            .iter()
            .map(|cfg| {
                let r = session.run(cfg).expect("sweep cell");
                json::to_json_for(cfg, &r)
            })
            .collect::<String>()
    };
    (run_all(), run_all())
}

fn injected(site: &str) -> u64 {
    rar_chaos::injected_counts()
        .into_iter()
        .find(|(s, _)| s == site)
        .map_or(0, |(_, n)| n)
}

#[test]
fn cache_read_errors_and_corruption_converge_byte_identical() {
    let _guard = lock();
    rar_chaos::clear();
    let clean = sweep_pair(&Scratch::new("read-clean"));
    assert_eq!(clean.0, clean.1, "clean cache replay must be stable");

    // Alternate an I/O error (even probes) with a corrupted entry (odd
    // probes): both degrade the probe to a miss and re-simulate.
    rar_chaos::install(
        &ChaosPlan::single(sites::SIM_CACHE_READ_ERR, 2, 0)
            .with_site(sites::SIM_CACHE_READ_CORRUPT, 2, 1)
            .with_seed(7),
    );
    let chaotic = sweep_pair(&Scratch::new("read-chaos"));
    let fired = (
        injected(sites::SIM_CACHE_READ_ERR),
        injected(sites::SIM_CACHE_READ_CORRUPT),
    );
    rar_chaos::clear();
    assert!(fired.0 > 0, "read-error fail-point never fired");
    assert!(fired.1 > 0, "corruption fail-point never fired");
    assert_eq!(clean.0, chaotic.0);
    assert_eq!(clean.0, chaotic.1);
}

#[test]
fn cache_write_errors_and_slow_io_converge_byte_identical() {
    let _guard = lock();
    rar_chaos::clear();
    let clean = sweep_pair(&Scratch::new("write-clean"));

    rar_chaos::install(
        &ChaosPlan::single(sites::SIM_CACHE_WRITE_ERR, 2, 0)
            .with_site(sites::SIM_CACHE_IO_SLOW, 2, 0)
            .with_seed(11),
    );
    let chaotic = sweep_pair(&Scratch::new("write-chaos"));
    let fired = (
        injected(sites::SIM_CACHE_WRITE_ERR),
        injected(sites::SIM_CACHE_IO_SLOW),
    );
    rar_chaos::clear();
    assert!(fired.0 > 0, "write-error fail-point never fired");
    assert!(fired.1 > 0, "slow-I/O fail-point never fired");
    assert_eq!(clean.0, chaotic.0);
    assert_eq!(clean.0, chaotic.1);
}

#[test]
fn campaign_journal_append_errors_converge_byte_identical() {
    let _guard = lock();
    rar_chaos::clear();
    let harness = InjectionHarness::prepare(&cfg()).expect("harness");
    let run = |scratch: &Scratch| {
        let spec = CampaignSpec {
            samples: 40,
            threads: 1,
            journal: Some(scratch.0.join("campaign.jsonl")),
            fsync_every: 2,
            ..CampaignSpec::default()
        };
        run_injection_campaign(&harness, &spec, 7, None, None).expect("campaign")
    };

    let clean_scratch = Scratch::new("inject-clean");
    let clean = run(&clean_scratch);

    // Every other journal flush fails before any bytes land; the writer
    // keeps the records buffered and the shared retry re-flushes them.
    rar_chaos::install(&ChaosPlan::single(sites::INJECT_JOURNAL_APPEND_ERR, 2, 0).with_seed(13));
    let chaos_scratch = Scratch::new("inject-chaos");
    let chaotic = run(&chaos_scratch);
    let fired = injected(sites::INJECT_JOURNAL_APPEND_ERR);
    rar_chaos::clear();

    assert!(fired > 0, "journal-append fail-point never fired");
    assert_eq!(clean.completed, chaotic.completed);
    assert_eq!(clean.failed, chaotic.failed);
    assert_eq!(
        clean.tally.to_json(),
        chaotic.tally.to_json(),
        "injection tallies diverged under journal chaos"
    );
}
