//! Sanitizer sweep: every bundled workload model must complete a
//! sanitize-enabled run with zero invariant violations.
//!
//! Compiled only with `--features sanitize`; the default build skips it
//! (the checks live behind `rar-core/sanitize` and a violation panics
//! inside `Core::cycle`, so "the run finished" is the assertion).
#![cfg(feature = "sanitize")]

use rar_core::Technique;
use rar_sim::{SimConfig, Simulation};

fn run(workload: &str, technique: Technique) -> rar_sim::SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .instructions(4_000)
            .warmup(800)
            .build(),
    )
}

#[test]
fn all_workloads_pass_the_sanitizer_on_the_baseline_core() {
    for b in rar_workloads::all_benchmarks() {
        let r = run(b, Technique::Ooo);
        assert!(r.stats.committed >= 4_000, "{b}: run did not complete");
    }
}

#[test]
fn every_technique_passes_the_sanitizer_on_a_memory_bound_workload() {
    for t in [
        Technique::Ooo,
        Technique::Flush,
        Technique::Tr,
        Technique::Pre,
        Technique::Rar,
        Technique::RarLate,
        Technique::Throttle,
        Technique::Rab,
        Technique::Cre,
        Technique::Vr,
    ] {
        let r = run("mcf", t);
        assert!(r.stats.committed >= 4_000, "{t}: run did not complete");
    }
}
