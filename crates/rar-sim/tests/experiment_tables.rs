//! Shape tests for the experiment runners: every table has the rows and
//! columns its figure needs, at a tiny instruction budget. These guard
//! the harness against silently dropping benchmarks, techniques, or
//! aggregate rows.

use rar_sim::experiment::{self, ExperimentOptions, Suite};

fn tiny() -> ExperimentOptions {
    ExperimentOptions {
        instructions: 800,
        warmup: 150,
        seed: 1,
        suite: Suite::Memory,
        ..ExperimentOptions::default()
    }
}

#[test]
fn fig1_has_all_four_techniques() {
    let t = experiment::fig1(&tiny());
    let csv = t.to_csv();
    assert_eq!(t.len(), 4);
    for name in ["FLUSH", "TR", "PRE", "RAR"] {
        assert!(csv.contains(name), "missing {name}");
    }
}

#[test]
fn fig3_covers_every_memory_benchmark_plus_compute_avg() {
    let t = experiment::fig3(&tiny());
    assert_eq!(t.len(), 1 + Suite::Memory.benchmarks().len());
    let csv = t.to_csv();
    assert!(csv.starts_with("benchmark,ROB,IQ,LQ,SQ,RF(int),RF(fp),FU,total"));
    assert!(csv.contains("compute-avg"));
    assert!(csv.contains("mcf"));
}

#[test]
fn fig4_and_fig10_cover_the_scaling_sweep() {
    let f4 = experiment::fig4(&tiny());
    assert_eq!(f4.len(), 4, "the four Table I cores");
    let f10 = experiment::fig10(&tiny());
    assert_eq!(f10.len(), 5, "Table I plus the Core-5 extension");
    assert!(f10.to_csv().contains("Core-5*"));
}

#[test]
fn fig5_reports_shares_with_mean() {
    let t = experiment::fig5(&tiny());
    assert_eq!(t.len(), Suite::Memory.benchmarks().len() + 1);
    assert!(t.to_csv().lines().last().unwrap().starts_with("amean"));
}

#[test]
fn fig7_fig8_report_per_suite_means() {
    let opts = ExperimentOptions {
        suite: Suite::All,
        ..tiny()
    };
    let [mttf, abc, ipc, mlp] = experiment::fig7_fig8(&opts);
    for t in [&mttf, &abc, &ipc, &mlp] {
        let csv = t.to_csv();
        assert!(csv.contains("mem-mean"));
        assert!(csv.contains("cpu-mean"));
        assert!(csv.lines().last().unwrap().starts_with("mean"));
        assert_eq!(t.len(), Suite::All.benchmarks().len() + 3);
    }
}

#[test]
fn fig9_covers_the_design_space() {
    let t = experiment::fig9(&tiny());
    assert_eq!(t.len(), 7, "FLUSH plus the six Table IV variants");
}

#[test]
fn fig11_covers_every_prefetch_placement() {
    let t = experiment::fig11(&tiny());
    // 3 placements x 3 techniques, minus the baseline cell itself.
    assert_eq!(t.len(), 8);
    let csv = t.to_csv();
    for cfg in ["PRE none", "RAR none", "OoO +L3", "RAR +ALL"] {
        assert!(csv.contains(cfg), "missing {cfg}");
    }
}

#[test]
fn extension_tables_have_expected_rows() {
    let ext = experiment::extensions(&tiny());
    assert_eq!(
        ext.len(),
        7,
        "FLUSH, PRE, RAR + the four extension variants"
    );
    assert!(ext.to_csv().contains("VR"));

    let en = experiment::energy(&tiny());
    assert_eq!(en.len(), 4);

    let st = experiment::structures(&tiny());
    assert_eq!(st.len(), rar_ace::Structure::COUNT);

    let seeds = experiment::seed_sweep(&tiny(), 2);
    assert_eq!(seeds.len(), 3);
}

#[test]
fn classification_covers_both_suites() {
    let t = experiment::mpki_check(&tiny());
    assert_eq!(t.len(), Suite::All.benchmarks().len());
}
