//! The memoizing parallel sweep engine.
//!
//! A [`SweepSession`] executes batches of [`SimConfig`] cells and is the
//! single entry point the experiment runners and binaries use. It layers
//! three mechanisms, each independently sound:
//!
//! 1. **Artifact memoization.** A sweep grid re-uses one (workload, seed)
//!    stream across many techniques and cores. The session keeps every
//!    generated [`TracePrefix`] and every [`rar_verify`] dead-value
//!    refinement in `Arc`-shared stores, so each trace is generated — and
//!    each refinement computed — at most once per session, no matter how
//!    many cells consume it. Sound because both are pure functions of
//!    (workload, seed, horizon).
//! 2. **On-disk result cache.** With [`SweepSession::with_disk_cache`],
//!    finished cells are persisted through [`DiskCache`] keyed by
//!    [`SimConfig::fingerprint`]; warm reruns replay bit-identically
//!    without simulating.
//! 3. **Work-stealing scheduling.** Cells are dealt round-robin onto
//!    per-worker deques; an idle worker steals from the back of its
//!    peers. Long cells (big cores, slow workloads) no longer gate a
//!    whole chunk. Results land in a slot indexed by cell position, so
//!    the output order — and, since every cell is deterministic, every
//!    value — is independent of thread count and steal order.
//! 4. **Single-flight deduplication.** Concurrent requests for the same
//!    [`SimConfig::fingerprint`] collapse onto one simulation: the first
//!    caller leads, later callers subscribe and receive a clone of the
//!    leader's result the moment it lands. This is what lets a serve
//!    daemon multiplex overlapping grids from independent clients over
//!    one session without ever simulating a shared cell twice
//!    (`rar_sweep_inflight_waits_total` counts the shared cells).
//!
//! Sessions are **long-lived, multi-client and cancellable**: every
//! method takes `&self`, so one `Arc<SweepSession>` can serve many
//! concurrent sweeps, and [`SweepSession::run_all_cancellable`] threads a
//! [`CancelToken`] through the work-stealing scheduler — a canceled sweep
//! stops claiming cells at the next cell boundary, leaving every already
//! finished cell published (and cached) and every unclaimed cell `None`.
//!
//! # Telemetry
//!
//! Every session counter lives in a [`MetricsRegistry`] under the
//! canonical names of [`rar_telemetry::names`], exported via
//! [`SweepSession::telemetry_json`] / [`SweepSession::telemetry_prometheus`]
//! and embedded in the run manifest ([`SweepSession::manifest_json`]).
//! The session is additionally generic over a [`Profiler`]: the default
//! [`NullProfiler`] compiles every timing scope away (a default build is
//! bit-identical to an uninstrumented one), while
//! [`SweepSession::into_profiled`] swaps in a [`WallProfiler`] that
//! attributes wall-clock time to trace generation, liveness refinement,
//! core simulation, cache probes/stores and serialization. Long sweeps
//! report a heartbeat line (completed/total, cache hit rate, runs/sec,
//! ETA, thread utilization) every `RAR_PROGRESS_SECS` seconds.

use crate::cache::DiskCache;
use crate::config::SimConfig;
use crate::run::{refinement_horizon, RunArtifacts, SimResult, Simulation};
use rar_chaos::{retry_with_backoff, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use rar_core::{RunVerdict, StallBucket, StallProfile};
use rar_telemetry::names;
use rar_telemetry::{
    sanitize_f64, CancelToken, Counter, FlightRecorder, Gauge, Histogram, ManifestBuilder,
    MetricsRegistry, NullProfiler, Phase, Profiler, ProgressReporter, ProgressSnapshot, ScopeTimer,
    WallProfiler,
};
use rar_trace::NullSink;
use rar_verify::{AceRefinement, ConfigError};
use rar_workloads::{workload, TracePrefix};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-run watchdog bounds for session-executed cells.
///
/// The cycle budget scales with the cell's instruction budget —
/// `cycle_factor * (warmup + instructions) + cycle_slack` — so a wedged or
/// pathologically slow simulation (IPC below `1/cycle_factor`) is cut off
/// instead of hanging an unattended sweep forever; an optional wall-clock
/// bound additionally caps host time per cell. The defaults are far above
/// anything a healthy cell reaches (the slowest modeled workloads run at
/// IPC ≈ 0.1), so hitting the watchdog is evidence of a model bug, which
/// the typed [`RunError::Timeout`] reports without poisoning the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Cycles allowed per instruction of total budget.
    pub cycle_factor: u64,
    /// Flat additional cycle allowance (covers drain/startup effects on
    /// tiny budgets).
    pub cycle_slack: u64,
    /// Optional wall-clock bound per cell.
    pub wall: Option<Duration>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            cycle_factor: 2_000,
            cycle_slack: 1_000_000,
            wall: None,
        }
    }
}

impl Watchdog {
    /// The cycle budget this watchdog grants `cfg`.
    #[must_use]
    pub fn max_cycles(&self, cfg: &SimConfig) -> u64 {
        self.cycle_factor
            .saturating_mul(cfg.warmup + cfg.instructions)
            .saturating_add(self.cycle_slack)
            .max(1)
    }

    /// The wall-clock deadline for a cell starting now.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.wall.map(|d| Instant::now() + d)
    }
}

/// Why a session-executed run produced no result.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The configuration failed validation; nothing was simulated.
    Config(ConfigError),
    /// The per-run watchdog expired ([`Watchdog`]): the simulation
    /// exhausted its cycle budget or wall-clock bound before committing
    /// its instruction budget.
    Timeout {
        /// Workload of the timed-out cell.
        workload: String,
        /// Technique of the timed-out cell.
        technique: rar_core::Technique,
        /// Which bound expired ([`RunVerdict::CycleBudget`] or
        /// [`RunVerdict::Deadline`]).
        verdict: RunVerdict,
        /// The cycle budget that was in force.
        max_cycles: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => e.fmt(f),
            RunError::Timeout {
                workload,
                technique,
                verdict,
                max_cycles,
            } => {
                let bound = match verdict {
                    RunVerdict::Deadline => "wall-clock deadline".to_owned(),
                    _ => format!("cycle budget ({max_cycles})"),
                };
                write!(f, "{workload}/{technique} timed out: {bound} exhausted")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

/// Session-lifetime store of memoized sweep artifacts.
#[derive(Debug, Default)]
struct ArtifactStore {
    /// Longest generated prefix per (workload, seed).
    traces: Mutex<HashMap<(String, u64), Arc<TracePrefix>>>,
    /// Refinements per (workload, seed, horizon) — the horizon is part of
    /// the key because the analysis classifies exactly that many uops.
    refinements: Mutex<HashMap<(String, u64, usize), AceRefinement>>,
}

impl ArtifactStore {
    /// The run artifacts for `cfg`, computed at most once per key.
    ///
    /// Generation happens *under the store lock*: concurrent cells that
    /// need the same trace wait for one generation instead of racing to
    /// duplicate it (the memoization guarantee). Trace generation and
    /// liveness analysis are orders of magnitude cheaper than the
    /// simulation itself, so the serialization is immaterial.
    fn artifacts_for<P: Profiler>(
        &self,
        cfg: &SimConfig,
        counters: &SweepCounters,
        profiler: &P,
    ) -> RunArtifacts {
        let horizon = refinement_horizon(cfg);
        let trace_key = (cfg.workload.clone(), cfg.seed);
        let prefix = {
            let mut traces = self.traces.lock().expect("trace store lock");
            match traces.get(&trace_key) {
                Some(p) if p.len() >= horizon => {
                    counters.trace_hits.inc();
                    Arc::clone(p)
                }
                Some(p) => {
                    // A shorter prefix exists: grow it from its stored
                    // generator state — the already-generated uops are
                    // not regenerated.
                    counters.trace_misses.inc();
                    let scope = ScopeTimer::start(profiler, Phase::TraceGen);
                    let grown = Arc::new(p.extended(horizon));
                    drop(scope);
                    traces.insert(trace_key, Arc::clone(&grown));
                    grown
                }
                None => {
                    counters.trace_misses.inc();
                    let spec = workload(&cfg.workload).expect("validated workload exists");
                    let scope = ScopeTimer::start(profiler, Phase::TraceGen);
                    let fresh = Arc::new(TracePrefix::generate(&spec, cfg.seed, horizon));
                    drop(scope);
                    traces.insert(trace_key, Arc::clone(&fresh));
                    fresh
                }
            }
        };
        let ref_key = (cfg.workload.clone(), cfg.seed, horizon);
        let refinement = {
            let mut refinements = self.refinements.lock().expect("refinement store lock");
            if let Some(r) = refinements.get(&ref_key) {
                counters.refinement_hits.inc();
                r.clone() // Arc-backed: O(1)
            } else {
                counters.refinement_misses.inc();
                let scope = ScopeTimer::start(profiler, Phase::Liveness);
                let fresh = rar_verify::analyze(&prefix.uops()[..horizon]);
                drop(scope);
                refinements.insert(ref_key, fresh.clone());
                fresh
            }
        };
        RunArtifacts { prefix, refinement }
    }
}

/// Registered handles for every session counter (see
/// [`rar_telemetry::names`] for the canonical metric names).
#[derive(Debug)]
struct SweepCounters {
    simulated: Counter,
    cache_hits: Counter,
    rejected: Counter,
    failed: Counter,
    trace_hits: Counter,
    trace_misses: Counter,
    refinement_hits: Counter,
    refinement_misses: Counter,
    wall_nanos: Counter,
    busy_nanos: Counter,
    threads: Gauge,
    cell_nanos: Histogram,
    run_timeouts: Counter,
    cache_io_errors: Counter,
    cache_disabled: Gauge,
    inflight_waits: Counter,
    canceled: Counter,
    breaker_state: Gauge,
    breaker_trips: Counter,
}

impl SweepCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        SweepCounters {
            simulated: registry.counter(names::SWEEP_CELLS_SIMULATED),
            cache_hits: registry.counter(names::SWEEP_CACHE_HITS),
            rejected: registry.counter(names::SWEEP_CELLS_REJECTED),
            failed: registry.counter(names::SWEEP_CELLS_FAILED),
            trace_hits: registry.counter(names::SWEEP_TRACE_MEMO_HITS),
            trace_misses: registry.counter(names::SWEEP_TRACE_MEMO_MISSES),
            refinement_hits: registry.counter(names::SWEEP_REFINEMENT_MEMO_HITS),
            refinement_misses: registry.counter(names::SWEEP_REFINEMENT_MEMO_MISSES),
            wall_nanos: registry.counter(names::SWEEP_WALL_NANOS),
            busy_nanos: registry.counter(names::SWEEP_BUSY_NANOS),
            threads: registry.gauge(names::SWEEP_THREADS),
            cell_nanos: registry.histogram(names::SWEEP_CELL_NANOS),
            run_timeouts: registry.counter(names::SWEEP_RUN_TIMEOUTS),
            cache_io_errors: registry.counter(names::SWEEP_CACHE_IO_ERRORS),
            cache_disabled: registry.gauge(names::SWEEP_CACHE_DISABLED),
            inflight_waits: registry.counter(names::SWEEP_INFLIGHT_WAITS),
            canceled: registry.counter(names::SWEEP_CELLS_CANCELED),
            breaker_state: registry.gauge(names::SWEEP_CACHE_BREAKER_STATE),
            breaker_trips: registry.counter(names::SWEEP_CACHE_BREAKER_TRIPS),
        }
    }
}

/// One in-flight simulation: the leader publishes into `state` and wakes
/// subscribers through `ready`.
#[derive(Debug, Default)]
struct Inflight {
    state: Mutex<InflightState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
enum InflightState {
    /// The leader is still simulating.
    #[default]
    Running,
    /// The leader finished; subscribers clone this result. Boxed so the
    /// idle `Running`/`Abandoned` states don't pay `SimResult`'s size.
    Done(Box<SimResult>),
    /// The leader failed (config rejection, timeout, panic). Subscribers
    /// re-enter the single-flight gate and run the cell themselves so the
    /// typed error (or panic) surfaces per caller instead of being
    /// smuggled across threads.
    Abandoned,
}

/// Removes the leader's single-flight slot and wakes subscribers even if
/// the simulation panics; the leader marks success via
/// [`InflightLead::publish`], anything else abandons the slot on drop.
struct InflightLead<'s> {
    slots: &'s Mutex<HashMap<String, Arc<Inflight>>>,
    key: String,
    cell: Arc<Inflight>,
    published: bool,
}

impl InflightLead<'_> {
    fn publish(mut self, result: &SimResult) {
        self.finish(InflightState::Done(Box::new(result.clone())));
        self.published = true;
    }

    fn finish(&self, state: InflightState) {
        // Unlink first so late arrivals start a fresh flight instead of
        // subscribing to a settled one; the map and state locks are never
        // held together.
        self.slots.lock().expect("inflight lock").remove(&self.key);
        *self.cell.state.lock().expect("inflight state lock") = state;
        self.cell.ready.notify_all();
    }
}

impl Drop for InflightLead<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.finish(InflightState::Abandoned);
        }
    }
}

/// A run session: shared memoization stores, an optional disk cache, a
/// metrics registry, an (optionally enabled) self-profiler, and the sweep
/// scheduler. Cheap to share behind an [`Arc`]; every method takes
/// `&self`.
#[derive(Debug)]
pub struct SweepSession<P: Profiler = NullProfiler> {
    cache: Option<DiskCache>,
    threads: Option<usize>,
    watchdog: Watchdog,
    artifacts: ArtifactStore,
    registry: MetricsRegistry,
    counters: SweepCounters,
    profiler: P,
    /// Circuit breaker guarding disk-cache I/O: it trips open once an
    /// exhausted retry loop proves the disk broken (the sweep then runs
    /// cache-off instead of hammering it per cell) and re-admits a single
    /// probe after a cooldown, closing again if the disk recovered —
    /// generalizing the old permanently-latched cache-off bit.
    cache_breaker: CircuitBreaker,
    /// Workloads and config fingerprints seen by this session, for the
    /// run manifest.
    seen: Mutex<SeenInputs>,
    /// Single-flight table: fingerprint → the in-flight simulation any
    /// concurrent request for the same cell subscribes to.
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    /// Running sums of the three AVF tiers over every completed cell,
    /// for the manifest's mean-AVF fields.
    avf: Mutex<AvfAccum>,
    /// Guest-side per-cycle stall profiling ([`SweepSession::stall_profiling`]).
    /// Stall-profiled sessions bypass the disk cache entirely: cached
    /// entries carry no profile, and profiled results must never pollute
    /// the byte-pinned cache goldens.
    stalls: bool,
    /// Stall taxonomy summed over every simulated cell (empty unless
    /// `stalls`).
    stall_accum: Mutex<StallProfile>,
    /// Optional crash flight recorder: cell boundaries, timeouts and
    /// panics are noted so a post-mortem dump explains a dead sweep.
    flight: Option<Arc<FlightRecorder>>,
}

/// Sum of each AVF tier over completed cells (cache hits included), for
/// manifest-level means.
#[derive(Debug, Default)]
struct AvfAccum {
    unrefined: f64,
    refined: f64,
    bit_refined: f64,
    cells: u64,
}

/// A profiled session: every host-side phase is wall-clock attributed.
pub type ProfiledSweepSession = SweepSession<WallProfiler>;

#[derive(Debug, Default)]
struct SeenInputs {
    workloads: BTreeSet<String>,
    fingerprints: BTreeSet<String>,
}

/// Snapshot of a session's counters (see [`SweepSession::stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Cells actually simulated (cache misses).
    pub simulated: u64,
    /// Cells replayed from the on-disk cache.
    pub cache_hits: u64,
    /// Cells rejected by [`SimConfig::validate`] before simulation.
    pub rejected: u64,
    /// Cells whose simulation panicked (model bugs; excluded, not fatal).
    pub failed: u64,
    /// Trace prefixes served from the in-memory store.
    pub trace_memo_hits: u64,
    /// Trace prefixes generated (or grown) because no long-enough prefix
    /// existed yet.
    pub trace_memo_misses: u64,
    /// Refinements served from the in-memory store.
    pub refinement_memo_hits: u64,
    /// Refinements computed fresh.
    pub refinement_memo_misses: u64,
    /// Wall-clock seconds spent inside [`SweepSession::run_all`].
    pub wall_seconds: f64,
    /// Worker threads used by the most recent sweep.
    pub threads: u64,
}

impl SweepStats {
    /// Completed cells: simulated plus replayed from cache.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.simulated + self.cache_hits
    }

    /// Fraction of completed cells served by the disk cache. Always
    /// finite: a session with no completed cells reports `0.0`.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        sanitize_f64(self.cache_hits as f64 / self.completed() as f64)
    }

    /// Completed cells per wall-clock second. Always finite: a session
    /// that never swept (or whose clock read zero) reports `0.0`.
    #[must_use]
    pub fn runs_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        sanitize_f64(self.completed() as f64 / self.wall_seconds)
    }
}

/// The outcome of one validated cell: the result plus where it came from.
struct CellOutcome {
    result: SimResult,
    cache_hit: bool,
}

impl Default for SweepSession<NullProfiler> {
    fn default() -> Self {
        SweepSession::new()
    }
}

impl SweepSession<NullProfiler> {
    /// A session with in-memory memoization only (no disk cache) and
    /// profiling compiled out.
    #[must_use]
    pub fn new() -> Self {
        SweepSession::build(None, None, NullProfiler)
    }

    /// A session that additionally persists every finished cell to `dir`
    /// and replays from it on later runs.
    #[must_use]
    pub fn with_disk_cache(dir: impl Into<PathBuf>) -> Self {
        SweepSession::build(Some(DiskCache::new(dir)), None, NullProfiler)
    }
}

impl<P: Profiler> SweepSession<P> {
    fn build(cache: Option<DiskCache>, threads: Option<usize>, profiler: P) -> Self {
        let registry = MetricsRegistry::new();
        let counters = SweepCounters::register(&registry);
        SweepSession {
            cache,
            threads,
            watchdog: Watchdog::default(),
            artifacts: ArtifactStore::default(),
            registry,
            counters,
            profiler,
            cache_breaker: CircuitBreaker::new(BreakerConfig::default()),
            seen: Mutex::new(SeenInputs::default()),
            inflight: Mutex::new(HashMap::new()),
            avf: Mutex::new(AvfAccum::default()),
            stalls: false,
            stall_accum: Mutex::new(StallProfile::default()),
            flight: None,
        }
    }

    /// A session recording through an arbitrary [`Profiler`] (e.g. a
    /// [`rar_telemetry::SpanProfiler`] turning phase scopes into causal
    /// leaf spans), with in-memory memoization only.
    #[must_use]
    pub fn with_profiler(profiler: P) -> Self {
        SweepSession::build(None, None, profiler)
    }

    /// [`SweepSession::with_profiler`] plus an on-disk result cache.
    #[must_use]
    pub fn with_profiler_and_disk_cache(dir: impl Into<PathBuf>, profiler: P) -> Self {
        SweepSession::build(Some(DiskCache::new(dir)), None, profiler)
    }

    /// Converts this session into one that attributes wall-clock time per
    /// [`Phase`] with a [`WallProfiler`]. Call before running anything:
    /// memoization stores and counters restart from empty.
    #[must_use]
    pub fn into_profiled(self) -> SweepSession<WallProfiler> {
        let profiled = SweepSession::build(self.cache, self.threads, WallProfiler::new());
        SweepSession {
            watchdog: self.watchdog,
            stalls: self.stalls,
            flight: self.flight,
            ..profiled
        }
    }

    /// Enables guest-side per-cycle stall/occupancy profiling for every
    /// cell this session simulates (see [`rar_core::StallProfile`]).
    /// Stall-profiled sessions bypass the disk cache in both directions,
    /// so warm caches stay byte-identical to unprofiled runs.
    #[must_use]
    pub fn stall_profiling(mut self, on: bool) -> Self {
        self.stalls = on;
        self
    }

    /// Whether guest-side stall profiling is on.
    #[must_use]
    pub fn stall_profiling_enabled(&self) -> bool {
        self.stalls
    }

    /// The stall taxonomy summed over every cell simulated so far, when
    /// stall profiling is on.
    #[must_use]
    pub fn stall_profile(&self) -> Option<StallProfile> {
        if !self.stalls {
            return None;
        }
        Some(self.stall_accum.lock().expect("stall accum lock").clone())
    }

    /// Attaches a crash flight recorder: the session notes cell starts,
    /// completions, timeouts and panics into it, so a post-mortem dump
    /// shows what the sweep was doing when it died.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// The attached flight recorder, if any.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Replaces the disk-cache circuit-breaker configuration (default:
    /// trip after one exhausted retry loop, re-probe after 30 s). Tests
    /// use a zero cooldown to exercise the half-open recovery path
    /// without waiting.
    #[must_use]
    pub fn cache_breaker_config(mut self, config: BreakerConfig) -> Self {
        self.cache_breaker = CircuitBreaker::new(config);
        self
    }

    /// Replaces the per-run [`Watchdog`] (default: generous cycle budget,
    /// no wall-clock bound).
    #[must_use]
    pub fn watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Pins the worker-thread count (default: available parallelism,
    /// capped by the number of runnable cells). Thread count never
    /// affects results — only throughput — which the test suite asserts.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// The disk cache, if this session has one.
    #[must_use]
    pub fn cache(&self) -> Option<&DiskCache> {
        self.cache.as_ref()
    }

    /// The session's metrics registry (every counter the session keeps).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Whether this session's profiler observes anything.
    #[must_use]
    pub fn profiling_enabled(&self) -> bool {
        P::ENABLED
    }

    /// Runs a single cell through the session: disk cache, then memoized
    /// artifacts, then simulation, under the session [`Watchdog`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Config`] if [`SimConfig::validate`] rejects the
    /// configuration (nothing is simulated), or [`RunError::Timeout`] if
    /// the watchdog's cycle budget or wall-clock bound expired before the
    /// cell committed its instruction budget.
    pub fn run(&self, cfg: &SimConfig) -> Result<SimResult, RunError> {
        cfg.validate()?;
        Ok(self.run_validated(cfg)?.result)
    }

    /// Folds one completed cell's AVF tiers into the manifest means
    /// (every completed cell counts once per request, cache hits
    /// included, so the means weight cells the way the sweep did).
    fn note_avf(&self, r: &SimResult) {
        let mut a = self.avf.lock().expect("avf lock");
        a.unrefined += r.reliability.avf();
        a.refined += r.reliability.refined_avf();
        a.bit_refined += r.reliability.bit_refined_avf();
        a.cells += 1;
    }

    /// The usable disk cache, if any: `None` while the cache circuit
    /// breaker is open (it re-admits one probe per cooldown), and `None`
    /// whenever stall profiling is on (cached entries carry no stall
    /// profile, and profiled runs must not overwrite the byte-pinned
    /// cache entries).
    fn live_cache(&self) -> Option<&DiskCache> {
        let cache = self.cache.as_ref()?;
        if self.stalls || !self.cache_breaker.allow() {
            return None;
        }
        Some(cache)
    }

    /// Publishes the breaker's state into the session gauges. The legacy
    /// `rar_sweep_cache_disabled` gauge stays meaningful: 1 whenever the
    /// cache is not flowing normally (open or probing), 0 when closed.
    fn publish_breaker_state(&self) {
        let state = self.cache_breaker.state();
        self.counters.breaker_state.set(state.as_gauge());
        self.counters
            .cache_disabled
            .set(if state == BreakerState::Closed {
                0.0
            } else {
                1.0
            });
    }

    /// Runs one fallible cache I/O operation under the shared
    /// [`retry_with_backoff`] helper ([`RetryPolicy::quick`]: 3 attempts,
    /// jittered 1–16 ms sleeps, each failed attempt counted in
    /// `rar_sweep_cache_io_errors_total`). Exhausting the retries records
    /// a failure against the cache circuit breaker — tripping it open, so
    /// the sweep continues uncached instead of hammering a broken disk —
    /// and any success closes the breaker again (the half-open probe's
    /// recovery path).
    fn cache_io<T>(
        &self,
        what: &str,
        cfg: &SimConfig,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> Option<T> {
        // Fixed jitter seed: sleep schedules never influence results,
        // they only need to be reproducible for chaos-run replay.
        const CACHE_RETRY_SEED: u64 = 0x5eed_cac4e;
        let outcome = retry_with_backoff(
            RetryPolicy::quick(),
            CACHE_RETRY_SEED,
            Some(&self.counters.cache_io_errors),
            |_| op(),
        );
        match outcome {
            Ok(v) => {
                self.cache_breaker.record_success();
                self.publish_breaker_state();
                Some(v)
            }
            Err(e) => {
                if self.cache_breaker.record_failure() {
                    self.counters.breaker_trips.inc();
                    eprintln!(
                        "[rar-sim] warning: disk-cache circuit breaker opened after \
                         repeated I/O errors ({what} {}/{}): {e}",
                        cfg.workload, cfg.technique
                    );
                }
                self.publish_breaker_state();
                None
            }
        }
    }

    /// Cache → single-flight gate → memoize → simulate for one
    /// pre-validated cell.
    fn run_validated(&self, cfg: &SimConfig) -> Result<CellOutcome, RunError> {
        let key = cfg.fingerprint();
        {
            let mut seen = self.seen.lock().expect("seen lock");
            if !seen.workloads.contains(&cfg.workload) {
                seen.workloads.insert(cfg.workload.clone());
            }
            seen.fingerprints.insert(key.clone());
        }
        if let Some(cache) = self.live_cache() {
            let probe = ScopeTimer::start(&self.profiler, Phase::CacheProbe);
            let hit = self
                .cache_io("probing", cfg, || cache.try_load(cfg))
                .flatten();
            drop(probe);
            if let Some(result) = hit {
                self.counters.cache_hits.inc();
                self.note_avf(&result);
                return Ok(CellOutcome {
                    result,
                    cache_hit: true,
                });
            }
        }
        // Single-flight gate: concurrent requests for one fingerprint
        // collapse onto one simulation. The first caller leads; later
        // callers subscribe and clone the leader's result (counted in
        // `rar_sweep_inflight_waits_total`, never as simulated or cached).
        // A failed leader abandons the slot and every subscriber retries
        // the gate, so errors surface per caller with full type fidelity.
        loop {
            let lead = {
                let mut slots = self.inflight.lock().expect("inflight lock");
                match slots.get(&key) {
                    Some(cell) => Err(Arc::clone(cell)),
                    None => {
                        let cell = Arc::new(Inflight::default());
                        slots.insert(key.clone(), Arc::clone(&cell));
                        Ok(cell)
                    }
                }
            };
            match lead {
                Ok(cell) => {
                    let lead = InflightLead {
                        slots: &self.inflight,
                        key: key.clone(),
                        cell,
                        published: false,
                    };
                    // On error (or panic) `lead` drops unpublished and
                    // abandons the slot for the subscribers.
                    let outcome = self.simulate_validated(cfg)?;
                    lead.publish(&outcome.result);
                    self.note_avf(&outcome.result);
                    return Ok(outcome);
                }
                Err(cell) => {
                    self.counters.inflight_waits.inc();
                    let mut state = cell.state.lock().expect("inflight state lock");
                    let settled = loop {
                        match &*state {
                            InflightState::Running => {
                                state = cell.ready.wait(state).expect("inflight state lock");
                            }
                            InflightState::Done(r) => break Some(r.as_ref().clone()),
                            InflightState::Abandoned => break None,
                        }
                    };
                    if let Some(result) = settled {
                        self.note_avf(&result);
                        return Ok(CellOutcome {
                            result,
                            cache_hit: false,
                        });
                    }
                    // Leader failed: loop back and run the cell ourselves.
                }
            }
        }
    }

    /// Memoized artifacts → watchdogged simulation → cache store for one
    /// cell that lost the cache probe and won the single-flight gate.
    fn simulate_validated(&self, cfg: &SimConfig) -> Result<CellOutcome, RunError> {
        if let Some(flight) = &self.flight {
            flight.note("cell_start", &format!("{}/{}", cfg.workload, cfg.technique));
        }
        let artifacts = self
            .artifacts
            .artifacts_for(cfg, &self.counters, &self.profiler);
        let max_cycles = self.watchdog.max_cycles(cfg);
        let deadline = self.watchdog.deadline();
        let sim = ScopeTimer::start(&self.profiler, Phase::CoreSim);
        let run = Simulation::run_prepared_budgeted(
            cfg,
            NullSink,
            &artifacts,
            self.stalls,
            max_cycles,
            deadline,
        );
        drop(sim);
        let result = match run {
            Ok(out) => out.result,
            Err(verdict) => {
                self.counters.run_timeouts.inc();
                if let Some(flight) = &self.flight {
                    flight.note(
                        "cell_timeout",
                        &format!("{}/{} ({verdict:?})", cfg.workload, cfg.technique),
                    );
                }
                return Err(RunError::Timeout {
                    workload: cfg.workload.clone(),
                    technique: cfg.technique,
                    verdict,
                    max_cycles,
                });
            }
        };
        self.counters.simulated.inc();
        // Aggregate guest-side work into the registry (simulated cells
        // only: replayed cells did no guest work in this session).
        result.stats.record_into(&self.registry);
        result.mem.record_into(&self.registry);
        if let Some(profile) = &result.stalls {
            profile.record_into(&self.registry);
            self.stall_accum
                .lock()
                .expect("stall accum lock")
                .merge(profile);
        }
        if let Some(flight) = &self.flight {
            flight.note("cell_done", &format!("{}/{}", cfg.workload, cfg.technique));
        }
        if let Some(cache) = self.live_cache() {
            let store = ScopeTimer::start(&self.profiler, Phase::CacheStore);
            self.cache_io("storing", cfg, || cache.store(cfg, &result));
            drop(store);
        }
        Ok(CellOutcome {
            result,
            cache_hit: false,
        })
    }

    /// Runs `configs` across worker threads, preserving order.
    ///
    /// Every configuration is validated up front: a config that fails
    /// [`SimConfig::validate`] is reported on stderr with its typed
    /// [`ConfigError`] and returned as `None` without ever being
    /// scheduled. Runnable cells are dealt round-robin onto per-worker
    /// deques; idle workers steal work from their peers, so stragglers
    /// never leave threads idle. A cell whose simulation panics or trips
    /// the [`Watchdog`] is surfaced on stderr *immediately* (via a
    /// never-rate-limited [`ProgressReporter::failure`] line) and
    /// excluded (`None`) rather than poisoning the sweep.
    /// Progress is reported as a heartbeat line on stderr every
    /// `RAR_PROGRESS_SECS` seconds (default 5; `0` disables), plus one
    /// summary line when the sweep finishes.
    pub fn run_all(&self, configs: &[SimConfig]) -> Vec<Option<SimResult>> {
        self.run_all_cancellable(configs, &CancelToken::new())
    }

    /// [`SweepSession::run_all`] with a cooperative [`CancelToken`].
    ///
    /// Workers poll the token before claiming each cell: a cell already
    /// simulating runs to completion (and lands in the result cache),
    /// while unclaimed cells are returned as `None` and counted in
    /// `rar_sweep_cells_canceled_total`. Completed cells keep their
    /// results, so a canceled sweep leaves the disk cache consistent and
    /// a resubmitted grid replays the finished prefix for free.
    pub fn run_all_cancellable(
        &self,
        configs: &[SimConfig],
        cancel: &CancelToken,
    ) -> Vec<Option<SimResult>> {
        let valid: Vec<bool> = configs
            .iter()
            .map(|cfg| match cfg.validate() {
                Ok(()) => true,
                Err(e) => {
                    self.counters.rejected.inc();
                    eprintln!(
                        "[rar-sim] {}/{} rejected before simulation: {e}",
                        cfg.workload, cfg.technique
                    );
                    false
                }
            })
            .collect();
        let runnable = valid.iter().filter(|&&v| v).count();
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
            })
            .min(runnable.max(1));
        self.counters.threads.set(threads as f64);

        // Deal cells round-robin so each deque starts with a spread of
        // workloads (cells of one workload tend to cost the same).
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (n, i) in (0..configs.len()).filter(|&i| valid[i]).enumerate() {
            queues[n % threads].lock().expect("queue lock").push_back(i);
        }

        let results: Vec<Mutex<Option<SimResult>>> =
            configs.iter().map(|_| Mutex::new(None)).collect();
        // Per-run_all progress state, separate from the session counters
        // (one session often serves many sweeps back to back).
        let reporter = ProgressReporter::from_env(runnable as u64);
        let done = AtomicUsize::new(0);
        let local_hits = AtomicU64::new(0);
        let local_failed = AtomicU64::new(0);
        let busy_nanos = AtomicU64::new(0);
        let snapshot = |completed: u64| ProgressSnapshot {
            completed,
            cache_hits: local_hits.load(Ordering::Relaxed),
            failed: local_failed.load(Ordering::Relaxed),
            busy_nanos: busy_nanos.load(Ordering::Relaxed),
            threads: threads as u64,
        };
        let started = std::time::Instant::now();
        std::thread::scope(|s| {
            for me in 0..threads {
                let queues = &queues;
                let results = &results;
                let done = &done;
                let reporter = &reporter;
                let local_hits = &local_hits;
                let local_failed = &local_failed;
                let busy_nanos = &busy_nanos;
                let snapshot = &snapshot;
                s.spawn(move || loop {
                    // Cancellation point: checked once per cell, before
                    // claiming it, so an in-flight cell always finishes.
                    if cancel.is_canceled() {
                        break;
                    }
                    // Own queue first (front), then steal from peers
                    // (back) — the classic deque discipline keeps stolen
                    // work coarse.
                    let mut item = queues[me].lock().expect("queue lock").pop_front();
                    if item.is_none() {
                        for (other, q) in queues.iter().enumerate() {
                            if other == me {
                                continue;
                            }
                            item = q.lock().expect("queue lock").pop_back();
                            if item.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(i) = item else { break };
                    let cfg = &configs[i];
                    let cell_started = std::time::Instant::now();
                    let cell = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.run_validated(cfg)
                    }));
                    let cell_nanos =
                        u64::try_from(cell_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    busy_nanos.fetch_add(cell_nanos, Ordering::Relaxed);
                    if P::ENABLED {
                        self.counters.cell_nanos.observe(cell_nanos);
                    }
                    let finished = done.fetch_add(1, Ordering::Relaxed) as u64 + 1;
                    // Failures surface the moment they happen, carried on
                    // a never-rate-limited reporter line with full
                    // progress context — not silently accumulated until
                    // the end-of-sweep summary.
                    let failure = match cell {
                        Ok(Ok(outcome)) => {
                            if outcome.cache_hit {
                                local_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            *results[i].lock().expect("no poisoned runs") = Some(outcome.result);
                            None
                        }
                        Ok(Err(err)) => Some(format!(
                            "{}/{} FAILED ({err}; excluded from tables)",
                            cfg.workload, cfg.technique
                        )),
                        Err(_) => {
                            if let Some(flight) = &self.flight {
                                flight.note(
                                    "cell_panic",
                                    &format!("{}/{}", cfg.workload, cfg.technique),
                                );
                            }
                            Some(format!(
                                "{}/{} FAILED (panicked; excluded from tables)",
                                cfg.workload, cfg.technique
                            ))
                        }
                    };
                    if let Some(what) = failure {
                        self.counters.failed.inc();
                        local_failed.fetch_add(1, Ordering::Relaxed);
                        eprintln!("{}", reporter.failure(&what, &snapshot(finished)));
                    } else if let Some(line) = reporter.heartbeat(&snapshot(finished)) {
                        eprintln!("{line}");
                    }
                });
            }
        });
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.counters.wall_nanos.add(wall);
        self.counters
            .busy_nanos
            .add(busy_nanos.load(Ordering::Relaxed));
        // Anything still sitting in a deque was abandoned by the
        // cancellation token — account for it so a canceled sweep's
        // telemetry explains its missing cells.
        let unclaimed: usize = queues
            .iter()
            .map(|q| q.lock().expect("queue lock").len())
            .sum();
        if unclaimed > 0 {
            self.counters.canceled.add(unclaimed as u64);
        }
        if runnable > 0 {
            let completed = done.load(Ordering::Relaxed) as u64;
            eprintln!("{}", reporter.final_line(&snapshot(completed)));
        }
        results
            .into_iter()
            .map(|m| m.into_inner().expect("run finished"))
            .collect()
    }

    /// Snapshot of the session's counters so far, read back from the
    /// metrics registry (the registry is the single source of truth; the
    /// struct is just a typed view of it).
    #[must_use]
    pub fn stats(&self) -> SweepStats {
        let c = &self.counters;
        SweepStats {
            simulated: c.simulated.get(),
            cache_hits: c.cache_hits.get(),
            rejected: c.rejected.get(),
            failed: c.failed.get(),
            trace_memo_hits: c.trace_hits.get(),
            trace_memo_misses: c.trace_misses.get(),
            refinement_memo_hits: c.refinement_hits.get(),
            refinement_memo_misses: c.refinement_misses.get(),
            wall_seconds: c.wall_nanos.get() as f64 / 1e9,
            threads: c.threads.get() as u64,
        }
    }

    /// The session's throughput/caching report as a JSON object — the
    /// contents of `BENCH_sweep.json`.
    #[must_use]
    pub fn bench_json(&self) -> String {
        let _scope = ScopeTimer::start(&self.profiler, Phase::Serialize);
        let stats = self.stats();
        if self.stalls {
            let profile = self.stall_accum.lock().expect("stall accum lock").clone();
            bench_json_with_stalls(&stats, &profile)
        } else {
            bench_json_from(&stats)
        }
    }

    /// The full telemetry registry as sorted-key JSON (profiler phase
    /// totals included for profiled sessions).
    #[must_use]
    pub fn telemetry_json(&self) -> String {
        let _scope = ScopeTimer::start(&self.profiler, Phase::Serialize);
        self.profiler.publish(&self.registry);
        rar_telemetry::export::to_json(&self.registry)
    }

    /// The full telemetry registry in Prometheus text format.
    #[must_use]
    pub fn telemetry_prometheus(&self) -> String {
        let _scope = ScopeTimer::start(&self.profiler, Phase::Serialize);
        self.profiler.publish(&self.registry);
        rar_telemetry::export::to_prometheus(&self.registry)
    }

    /// The run manifest: tool identity, inputs (workloads, config
    /// fingerprints, thread count), headline throughput figures, and the
    /// embedded telemetry snapshot. Written beside sweep results so any
    /// table can be traced back to what produced it; validated in CI by
    /// [`rar_telemetry::validate_manifest`].
    #[must_use]
    pub fn manifest_json(&self, tool: &str, version: &str) -> String {
        let _scope = ScopeTimer::start(&self.profiler, Phase::Serialize);
        self.profiler.publish(&self.registry);
        let s = self.stats();
        let (workloads, fingerprints) = {
            let seen = self.seen.lock().expect("seen lock");
            (
                seen.workloads.iter().cloned().collect::<Vec<_>>(),
                seen.fingerprints.iter().cloned().collect::<Vec<_>>(),
            )
        };
        let mut b = ManifestBuilder::new(tool, version);
        b.set_u64("threads", s.threads.max(1))
            .set_u64("cells_completed", s.completed())
            .set_u64("cells_simulated", s.simulated)
            .set_u64("cells_cached", s.cache_hits)
            .set_u64("cells_rejected", s.rejected)
            .set_u64("cells_failed", s.failed)
            .set_f64("cache_hit_rate", s.cache_hit_rate())
            .set_f64("runs_per_second", s.runs_per_second())
            .set_f64("wall_seconds", s.wall_seconds)
            .set_str("profiled", if P::ENABLED { "yes" } else { "no" })
            .set_str_array("workloads", workloads)
            .set_str_array("fingerprints", fingerprints);
        // Mean AVF tiers over this session's completed cells (optional:
        // omitted for a session that never completed a cell, so older
        // manifests stay valid byte for byte).
        {
            let a = self.avf.lock().expect("avf lock");
            if a.cells > 0 {
                let n = a.cells as f64;
                b.set_f64("avf_unrefined_mean", sanitize_f64(a.unrefined / n))
                    .set_f64("avf_refined_mean", sanitize_f64(a.refined / n))
                    .set_f64("avf_bit_refined_mean", sanitize_f64(a.bit_refined / n));
            }
        }
        // Stall attribution headline (optional: present only for sessions
        // that ran with the cycle-loop stall profiler on).
        if self.stalls {
            let p = self.stall_accum.lock().expect("stall accum lock");
            b.set_f64("quiescent_fraction", sanitize_f64(p.quiescent_fraction()))
                .set_u64("stall_total_cycles", p.total());
        }
        if let Some(flight) = &self.flight {
            b.set_u64("flight_events", flight.len() as u64);
        }
        b.render(&self.registry)
    }
}

/// Renders [`SweepStats`] as the `BENCH_sweep.json` object. Keys are
/// emitted in sorted order and every float is finite, so bench diffs are
/// byte-stable across thread counts and machines (pinned by a golden
/// test).
#[must_use]
pub fn bench_json_from(s: &SweepStats) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"cache_hit_rate\": {:.6},", s.cache_hit_rate());
    let _ = writeln!(out, "  \"cache_hits\": {},", s.cache_hits);
    let _ = writeln!(out, "  \"completed\": {},", s.completed());
    let _ = writeln!(out, "  \"failed\": {},", s.failed);
    let _ = writeln!(
        out,
        "  \"refinement_memo_hits\": {},",
        s.refinement_memo_hits
    );
    let _ = writeln!(
        out,
        "  \"refinement_memo_misses\": {},",
        s.refinement_memo_misses
    );
    let _ = writeln!(out, "  \"rejected\": {},", s.rejected);
    let _ = writeln!(out, "  \"runs_per_second\": {:.3},", s.runs_per_second());
    out.push_str("  \"schema\": \"rar-bench-sweep-v1\",\n");
    let _ = writeln!(out, "  \"simulated\": {},", s.simulated);
    let _ = writeln!(out, "  \"threads\": {},", s.threads);
    let _ = writeln!(out, "  \"trace_memo_hits\": {},", s.trace_memo_hits);
    let _ = writeln!(out, "  \"trace_memo_misses\": {},", s.trace_memo_misses);
    let _ = writeln!(
        out,
        "  \"wall_seconds\": {:.6}",
        sanitize_f64(s.wall_seconds.max(0.0))
    );
    out.push_str("}\n");
    out
}

/// [`bench_json_from`] plus the session's aggregate stall attribution:
/// one `stall_<bucket>_cycles` key per taxonomy bucket, the quiescent
/// fraction, and the conservation total. Keys stay sorted — the stall
/// block slots between `"simulated"` and `"threads"` — so the output
/// remains diff-stable line by line.
#[must_use]
pub fn bench_json_with_stalls(s: &SweepStats, p: &StallProfile) -> String {
    let mut lines: Vec<String> = StallBucket::ALL
        .iter()
        .map(|&b| format!("  \"stall_{}_cycles\": {},\n", b.name(), p.count(b)))
        .collect();
    lines.push(format!(
        "  \"stall_quiescent_fraction\": {:.6},\n",
        sanitize_f64(p.quiescent_fraction())
    ));
    lines.push(format!("  \"stall_total_cycles\": {},\n", p.total()));
    lines.sort_unstable();
    let mut block: String = lines.concat();
    let base = bench_json_from(s);
    debug_assert!(base.contains("  \"threads\":"));
    block.push_str("  \"threads\":");
    base.replacen("  \"threads\":", &block, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_core::Technique;

    fn grid() -> Vec<SimConfig> {
        let mut v = Vec::new();
        for t in [Technique::Ooo, Technique::Flush, Technique::Rar] {
            for w in ["mcf", "milc"] {
                v.push(
                    SimConfig::builder()
                        .workload(w)
                        .technique(t)
                        .warmup(300)
                        .instructions(1_500)
                        .build(),
                );
            }
        }
        v
    }

    #[test]
    fn memoization_generates_each_trace_once() {
        let session = SweepSession::new();
        let rs = session.run_all(&grid());
        assert!(rs.iter().all(Option::is_some));
        let s = session.stats();
        assert_eq!(s.simulated, 6);
        // Two (workload, seed) keys, each generated exactly once and then
        // served from the store; same for refinements (one horizon).
        assert_eq!(s.trace_memo_misses, 2);
        assert_eq!(s.trace_memo_hits, 4);
        assert_eq!(s.refinement_memo_misses, 2);
        assert_eq!(s.refinement_memo_hits, 4);
    }

    #[test]
    fn shared_artifacts_match_private_ones() {
        // A sweep cell must produce exactly what a standalone run does.
        let session = SweepSession::new();
        let grid = grid();
        let swept = session.run_all(&grid);
        for (cfg, got) in grid.iter().zip(&swept) {
            let standalone = Simulation::run(cfg);
            assert_eq!(got.as_ref().unwrap(), &standalone, "{}", cfg.fingerprint());
        }
    }

    #[test]
    fn a_longer_horizon_grows_the_shared_prefix() {
        let session = SweepSession::new();
        let short = SimConfig::builder()
            .workload("mcf")
            .warmup(100)
            .instructions(500)
            .build();
        let long = SimConfig::builder()
            .workload("mcf")
            .warmup(100)
            .instructions(2_000)
            .build();
        let a = session.run(&short).unwrap();
        let b = session.run(&long).unwrap();
        assert_eq!(a, Simulation::run(&short));
        assert_eq!(b, Simulation::run(&long));
        let s = session.stats();
        // One fresh generation plus one growth of the same key.
        assert_eq!(s.trace_memo_misses, 2);
        // Different horizons are distinct refinement keys.
        assert_eq!(s.refinement_memo_misses, 2);
    }

    #[test]
    fn stats_report_throughput_after_a_sweep() {
        let session = SweepSession::new().threads(2);
        let _ = session.run_all(&grid()[..2]);
        let s = session.stats();
        assert_eq!(s.completed(), 2);
        assert_eq!(s.threads, 2);
        assert!(s.wall_seconds > 0.0);
        assert!(s.runs_per_second() > 0.0);
        let json = session.bench_json();
        assert!(json.contains("\"schema\": \"rar-bench-sweep-v1\""));
        assert!(json.contains("\"simulated\": 2"));
    }

    #[test]
    fn profiled_session_is_bit_identical_to_unprofiled() {
        // Profiling observes the host, never the simulation: the same
        // grid through a profiled session must reproduce every result
        // exactly.
        let grid = grid();
        let plain = SweepSession::new().threads(2);
        let profiled = SweepSession::new().threads(2).into_profiled();
        let a = plain.run_all(&grid);
        let b = profiled.run_all(&grid);
        assert_eq!(a, b);
        // And the profiler actually attributed time somewhere:
        // telemetry_json() publishes the phase totals into the registry.
        let telemetry = profiled.telemetry_json();
        assert!(telemetry.contains("rar_profile_core_sim_nanos_total"));
        let sim_nanos = profiled
            .registry()
            .counter("rar_profile_core_sim_nanos_total")
            .get();
        assert!(sim_nanos > 0, "core sim time must be nonzero");
    }

    #[test]
    fn empty_session_exports_finite_numbers_only() {
        // Zero-duration / zero-run sessions must not leak NaN or inf
        // into JSON (which cannot represent them).
        let session = SweepSession::new();
        let s = session.stats();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.runs_per_second(), 0.0);
        // Match non-finite *values* (`: inf`), not the substring `inf`,
        // which legitimately appears in `rar_sweep_inflight_waits_total`.
        let json = session.bench_json();
        assert!(!json.contains("NaN") && !json.contains(": inf"), "{json}");
        let manifest = session.manifest_json("rar-sim-tests", "0.0.0");
        assert!(!manifest.contains("NaN") && !manifest.contains(": inf"));
    }

    #[test]
    fn bench_json_golden_bytes() {
        // Pinned: sorted keys, fixed precision, schema tag in place. If
        // this fails the bench format changed — bump the schema string
        // and update every consumer (CI jq filters, report subcommand).
        let s = SweepStats {
            simulated: 5,
            cache_hits: 15,
            rejected: 1,
            failed: 2,
            trace_memo_hits: 4,
            trace_memo_misses: 2,
            refinement_memo_hits: 4,
            refinement_memo_misses: 2,
            wall_seconds: 2.5,
            threads: 8,
        };
        let expected = "{\n\
            \x20 \"cache_hit_rate\": 0.750000,\n\
            \x20 \"cache_hits\": 15,\n\
            \x20 \"completed\": 20,\n\
            \x20 \"failed\": 2,\n\
            \x20 \"refinement_memo_hits\": 4,\n\
            \x20 \"refinement_memo_misses\": 2,\n\
            \x20 \"rejected\": 1,\n\
            \x20 \"runs_per_second\": 8.000,\n\
            \x20 \"schema\": \"rar-bench-sweep-v1\",\n\
            \x20 \"simulated\": 5,\n\
            \x20 \"threads\": 8,\n\
            \x20 \"trace_memo_hits\": 4,\n\
            \x20 \"trace_memo_misses\": 2,\n\
            \x20 \"wall_seconds\": 2.500000\n\
            }\n";
        assert_eq!(bench_json_from(&s), expected);
        // Keys must be sorted so diffs between runs are positional.
        let keys: Vec<&str> = expected
            .lines()
            .filter_map(|l| l.trim().strip_prefix('"'))
            .filter_map(|l| l.split('"').next())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn bench_json_is_finite_for_degenerate_stats() {
        let s = SweepStats {
            simulated: 0,
            cache_hits: 0,
            rejected: 0,
            failed: 0,
            trace_memo_hits: 0,
            trace_memo_misses: 0,
            refinement_memo_hits: 0,
            refinement_memo_misses: 0,
            wall_seconds: 0.0,
            threads: 0,
        };
        let json = bench_json_from(&s);
        assert!(json.contains("\"cache_hit_rate\": 0.000000"));
        assert!(json.contains("\"runs_per_second\": 0.000"));
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn manifest_records_inputs_and_validates() {
        let session = SweepSession::new().threads(2);
        let _ = session.run_all(&grid());
        let manifest = session.manifest_json("rar-sim-tests", "0.1.0");
        assert_eq!(
            rar_telemetry::validate_manifest(&manifest),
            Vec::<String>::new(),
            "{manifest}"
        );
        assert!(manifest.contains("\"workloads\": [\"mcf\", \"milc\"]"));
        // One fingerprint per distinct configuration in the grid.
        assert_eq!(manifest.matches("\"fingerprints\"").count(), 1);
        for cfg in grid() {
            assert!(
                manifest.contains(&cfg.fingerprint()),
                "{}",
                cfg.fingerprint()
            );
        }
        assert!(manifest.contains(&format!("\"{}\"", rar_telemetry::TELEMETRY_SCHEMA)));
    }

    #[test]
    fn watchdog_timeouts_are_typed_errors_not_hangs() {
        let strangled = Watchdog {
            cycle_factor: 0,
            cycle_slack: 1,
            wall: None,
        };
        let session = SweepSession::new().watchdog(strangled);
        let cfg = &grid()[0];
        match session.run(cfg) {
            Err(RunError::Timeout {
                verdict,
                max_cycles,
                ..
            }) => {
                assert_eq!(verdict, RunVerdict::CycleBudget);
                assert_eq!(max_cycles, 1);
            }
            other => panic!("expected a watchdog timeout, got {other:?}"),
        }
        assert_eq!(
            session.registry().counter(names::SWEEP_RUN_TIMEOUTS).get(),
            1
        );
        // run_all excludes timed-out cells instead of hanging or dying.
        let rs = session.run_all(&grid()[..2]);
        assert!(rs.iter().all(Option::is_none));
        assert_eq!(session.stats().failed, 2);
        // A default watchdog never fires on healthy cells.
        let healthy = SweepSession::new();
        assert!(healthy.run(cfg).is_ok());
        assert_eq!(
            healthy.registry().counter(names::SWEEP_RUN_TIMEOUTS).get(),
            0
        );
    }

    #[test]
    fn broken_cache_disk_degrades_to_cache_off() {
        // Point the cache "directory" at an existing *file*: every probe
        // and store then fails with a genuine I/O error (not NotFound,
        // which is an ordinary miss).
        let path = std::env::temp_dir().join(format!("rar-sweep-cachefile-{}", std::process::id()));
        std::fs::write(&path, b"not a directory").unwrap();
        let session = SweepSession::with_disk_cache(&path);
        let cfg = &grid()[0];
        let result = session.run(cfg).expect("sweep must survive a broken disk");
        assert_eq!(&result, &Simulation::run(cfg), "results stay correct");
        // The probe retried (3 attempts), then tripped the breaker open —
        // the store phase never touched the broken disk.
        let io_errors = session.registry().counter(names::SWEEP_CACHE_IO_ERRORS);
        assert_eq!(io_errors.get(), 3);
        assert_eq!(
            session.registry().gauge(names::SWEEP_CACHE_DISABLED).get(),
            1.0
        );
        assert_eq!(
            session
                .registry()
                .counter(names::SWEEP_CACHE_BREAKER_TRIPS)
                .get(),
            1
        );
        // Later cells skip the cache entirely while the breaker is open
        // (the default 30 s cooldown dwarfs this test): no further I/O.
        let again = session.run(cfg).unwrap();
        assert_eq!(again, result);
        assert_eq!(io_errors.get(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_breaker_reprobes_and_recovers_after_cooldown() {
        // Break the disk (a file where the cache directory should be),
        // trip the breaker, then fix the disk: with a zero cooldown the
        // next cell's probe is the half-open probe, and its success must
        // close the breaker and resume normal caching.
        let path = std::env::temp_dir().join(format!("rar-sweep-breaker-{}", std::process::id()));
        std::fs::write(&path, b"not a directory").unwrap();
        let session = SweepSession::with_disk_cache(&path).cache_breaker_config(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        });
        let cfg = &grid()[0];
        let expected = Simulation::run(cfg);
        assert_eq!(session.run(cfg).unwrap(), expected);
        // Zero cooldown means the store path re-probed immediately and
        // tripped the breaker a second time (probe trip + store trip).
        assert_eq!(
            session
                .registry()
                .counter(names::SWEEP_CACHE_BREAKER_TRIPS)
                .get(),
            2
        );
        // Fix the disk and rerun: the probe recovers, the breaker closes,
        // and the store path persists the entry for the warm rerun.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(session.run(cfg).unwrap(), expected);
        assert_eq!(
            session.registry().gauge(names::SWEEP_CACHE_DISABLED).get(),
            0.0
        );
        assert_eq!(
            session
                .registry()
                .gauge(names::SWEEP_CACHE_BREAKER_STATE)
                .get(),
            0.0
        );
        // Warm rerun replays from disk: the recovered cache really works.
        assert_eq!(session.run(cfg).unwrap(), expected);
        assert_eq!(session.stats().cache_hits, 1);
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn inflight_subscribers_reuse_the_leaders_result() {
        // Deterministic single-flight mechanics: occupy the slot by hand
        // (as a leader would), let a subscriber block on it, publish, and
        // check the subscriber returned the published result without
        // simulating anything itself.
        let session = SweepSession::new();
        let cfg = grid()[0].clone();
        let key = cfg.fingerprint();
        let cell = Arc::new(Inflight::default());
        session
            .inflight
            .lock()
            .unwrap()
            .insert(key.clone(), Arc::clone(&cell));
        let expected = Simulation::run(&cfg);
        std::thread::scope(|s| {
            let subscriber = s.spawn(|| session.run_validated(&cfg).unwrap());
            while session.counters.inflight_waits.get() == 0 {
                std::thread::yield_now();
            }
            let lead = InflightLead {
                slots: &session.inflight,
                key,
                cell: Arc::clone(&cell),
                published: false,
            };
            lead.publish(&expected);
            let got = subscriber.join().unwrap();
            assert!(
                !got.cache_hit,
                "a shared in-flight result is not a cache hit"
            );
            assert_eq!(got.result, expected);
        });
        assert_eq!(
            session.stats().simulated,
            0,
            "the subscriber never simulated"
        );
        assert_eq!(session.counters.inflight_waits.get(), 1);
        assert!(session.inflight.lock().unwrap().is_empty(), "slot released");
    }

    #[test]
    fn abandoned_leader_lets_subscribers_run_the_cell_themselves() {
        // A leader that dies without publishing (the Drop guard fires on
        // panic or error) must not strand its subscribers: they retry the
        // gate and one of them runs the cell.
        let session = SweepSession::new();
        let cfg = grid()[0].clone();
        let key = cfg.fingerprint();
        let cell = Arc::new(Inflight::default());
        session
            .inflight
            .lock()
            .unwrap()
            .insert(key.clone(), Arc::clone(&cell));
        std::thread::scope(|s| {
            let subscriber = s.spawn(|| session.run_validated(&cfg).unwrap());
            while session.counters.inflight_waits.get() == 0 {
                std::thread::yield_now();
            }
            drop(InflightLead {
                slots: &session.inflight,
                key,
                cell: Arc::clone(&cell),
                published: false,
            });
            let got = subscriber.join().unwrap();
            assert_eq!(got.result, Simulation::run(&cfg));
        });
        assert_eq!(
            session.stats().simulated,
            1,
            "the subscriber re-ran the cell"
        );
    }

    #[test]
    fn concurrent_identical_cells_collapse_to_one_simulation() {
        // End to end: two requests for the same fingerprint, guaranteed
        // to overlap (the follower waits until the leader holds the
        // slot), produce one simulation and two identical results.
        let session = SweepSession::new();
        let cfg = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(300)
            .instructions(30_000)
            .build();
        let (a, b) = std::thread::scope(|s| {
            let leader = s.spawn(|| session.run_validated(&cfg).unwrap());
            while session.inflight.lock().unwrap().is_empty() {
                std::thread::yield_now();
            }
            let follower = session.run_validated(&cfg).unwrap();
            (leader.join().unwrap(), follower)
        });
        assert_eq!(a.result, b.result);
        assert_eq!(session.stats().simulated, 1, "exactly one simulation ran");
        assert_eq!(session.counters.inflight_waits.get(), 1);
    }

    #[test]
    fn pre_canceled_sweep_claims_no_cells() {
        let session = SweepSession::new();
        let token = CancelToken::new();
        token.cancel();
        let rs = session.run_all_cancellable(&grid(), &token);
        assert!(rs.iter().all(Option::is_none));
        assert_eq!(session.stats().simulated, 0);
        assert_eq!(
            session.counters.canceled.get(),
            6,
            "every runnable cell counted"
        );
    }

    #[test]
    fn cancel_mid_sweep_keeps_finished_results_and_cache_consistent() {
        let dir = std::env::temp_dir().join(format!("rar-sweep-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid: Vec<SimConfig> = ["mcf", "milc", "lbm"]
            .iter()
            .flat_map(|w| {
                [Technique::Ooo, Technique::Rar].map(|t| {
                    SimConfig::builder()
                        .workload(w)
                        .technique(t)
                        .warmup(300)
                        .instructions(5_000)
                        .build()
                })
            })
            .collect();
        let session = SweepSession::with_disk_cache(&dir).threads(1);
        let token = CancelToken::new();
        let simulated = session.registry().counter(names::SWEEP_CELLS_SIMULATED);
        let rs = std::thread::scope(|s| {
            s.spawn(|| {
                // Cancel as soon as the first cell lands: with one worker
                // the sweep winds down after at most the cell in flight.
                while simulated.get() == 0 {
                    std::thread::yield_now();
                }
                token.cancel();
            });
            session.run_all_cancellable(&grid, &token)
        });
        let completed: Vec<usize> = (0..grid.len()).filter(|&i| rs[i].is_some()).collect();
        assert!(!completed.is_empty(), "the first cell always finishes");
        assert!(
            session.counters.canceled.get() >= 1,
            "cancellation dropped cells"
        );
        assert_eq!(
            completed.len() as u64 + session.counters.canceled.get(),
            grid.len() as u64,
            "every cell is either completed or counted canceled"
        );
        // Finished cells are correct and durable: a fresh session over
        // the same cache replays exactly them as hits and simulates only
        // the canceled remainder.
        for &i in &completed {
            assert_eq!(rs[i].as_ref().unwrap(), &Simulation::run(&grid[i]));
        }
        let resumed = SweepSession::with_disk_cache(&dir).threads(1);
        let rerun = resumed.run_all(&grid);
        assert!(rerun.iter().all(Option::is_some));
        let s2 = resumed.stats();
        assert_eq!(s2.cache_hits, completed.len() as u64);
        assert_eq!(s2.simulated, (grid.len() - completed.len()) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_exports_cover_every_canonical_metric() {
        let session = SweepSession::new();
        let json = session.telemetry_json();
        let prom = session.telemetry_prometheus();
        for name in names::ALL {
            assert!(json.contains(name), "{name} missing from telemetry JSON");
            assert!(prom.contains(name), "{name} missing from Prometheus text");
        }
    }

    #[test]
    fn stall_profiled_sweep_conserves_cycles_and_matches_plain_results() {
        // The stall classifier observes the pipeline, never steers it:
        // the profiled sweep reproduces every result bit for bit, and the
        // aggregate bucket tallies sum exactly to the total simulated
        // cycles (one tally per cycle, by construction).
        let grid = grid();
        let plain = SweepSession::new();
        let stalled = SweepSession::new().stall_profiling(true);
        assert!(stalled.stall_profiling_enabled());
        let a = plain.run_all(&grid);
        let b = stalled.run_all(&grid);
        // Identical modulo the stall-profile carrier field itself.
        let stripped: Vec<_> = b
            .iter()
            .map(|r| {
                r.clone().map(|mut r| {
                    assert!(r.stalls.is_some(), "profiled cells carry a profile");
                    r.stalls = None;
                    r
                })
            })
            .collect();
        assert_eq!(a, stripped);
        assert!(plain.stall_profile().is_none());
        let profile = stalled.stall_profile().expect("profiling was on");
        let total_cycles: u64 = b
            .iter()
            .map(|r| r.as_ref().expect("cell completed").stats.cycles)
            .sum();
        assert_eq!(profile.total(), total_cycles, "conservation violated");
        assert!(profile.count(StallBucket::Retiring) > 0);
        // The registry carries the same tallies for exporters.
        let recorded: u64 = StallBucket::ALL
            .iter()
            .map(|b| {
                stalled
                    .registry()
                    .counter(&format!("rar_stall_{}_cycles_total", b.name()))
                    .get()
            })
            .sum();
        assert_eq!(recorded, total_cycles);
    }

    #[test]
    fn stall_tallies_are_thread_count_invariant() {
        let grid = grid();
        let one = SweepSession::new().threads(1).stall_profiling(true);
        let four = SweepSession::new().threads(4).stall_profiling(true);
        let _ = one.run_all(&grid);
        let _ = four.run_all(&grid);
        assert_eq!(
            one.stall_profile().unwrap(),
            four.stall_profile().unwrap(),
            "stall attribution must not depend on worker scheduling"
        );
    }

    #[test]
    fn bench_json_with_stalls_inserts_sorted_stall_block() {
        let session = SweepSession::new().stall_profiling(true);
        let _ = session.run_all(&grid()[..2]);
        let json = session.bench_json();
        for bucket in StallBucket::ALL {
            assert!(
                json.contains(&format!("\"stall_{}_cycles\":", bucket.name())),
                "{json}"
            );
        }
        assert!(json.contains("\"stall_quiescent_fraction\":"));
        assert!(json.contains("\"stall_total_cycles\":"));
        // The stall block keeps the whole document sorted by key.
        let keys: Vec<&str> = json
            .lines()
            .filter_map(|l| l.trim().strip_prefix('"'))
            .filter_map(|l| l.split('"').next())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "{json}");
        // Without profiling, the pinned plain format is untouched.
        let off = SweepSession::new();
        let _ = off.run_all(&grid()[..2]);
        assert!(!off.bench_json().contains("stall_"));
    }

    #[test]
    fn stall_profiling_bypasses_the_disk_cache() {
        // Cached entries carry no stall profile, so a profiled session
        // must simulate every cell itself — and must not overwrite the
        // cache a plain session will replay from.
        let dir = std::env::temp_dir().join(format!("rar-sweep-stalls-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = grid();
        let warm = SweepSession::with_disk_cache(&dir);
        let _ = warm.run_all(&grid);
        let stalled = SweepSession::with_disk_cache(&dir).stall_profiling(true);
        let _ = stalled.run_all(&grid);
        let s = stalled.stats();
        assert_eq!(s.cache_hits, 0, "profiled cells must not replay");
        assert_eq!(s.simulated, grid.len() as u64);
        assert!(stalled.stall_profile().unwrap().total() > 0);
        let replay = SweepSession::with_disk_cache(&dir);
        let _ = replay.run_all(&grid);
        assert_eq!(replay.stats().cache_hits, grid.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_carries_quiescent_fraction_when_profiled() {
        let session = SweepSession::new().stall_profiling(true);
        let _ = session.run_all(&grid());
        let manifest = session.manifest_json("rar-sim-tests", "0.1.0");
        assert_eq!(
            rar_telemetry::validate_manifest(&manifest),
            Vec::<String>::new(),
            "{manifest}"
        );
        assert!(manifest.contains("\"quiescent_fraction\":"), "{manifest}");
        assert!(manifest.contains("\"stall_total_cycles\":"), "{manifest}");
        let off = SweepSession::new();
        let _ = off.run_all(&grid()[..1]);
        assert!(!off
            .manifest_json("rar-sim-tests", "0.1.0")
            .contains("quiescent_fraction"));
    }

    #[test]
    fn span_recorded_sweep_is_bit_identical_and_nests_phases() {
        // Span recording is host-side observation only — results match a
        // plain session exactly — and every recorded phase leaf hangs off
        // whatever parent the worker thread had adopted.
        let grid = grid();
        let log = Arc::new(rar_telemetry::SpanLog::new());
        let recorded =
            SweepSession::with_profiler(rar_telemetry::SpanProfiler::new(Arc::clone(&log)));
        let plain = SweepSession::new();
        let a = plain.run_all(&grid);
        let b = recorded.run_all(&grid);
        assert_eq!(a, b);
        let spans = log.snapshot();
        assert!(!spans.is_empty(), "phase leaves were recorded");
        assert!(spans.iter().any(|s| s.name == "core_sim"));
        assert!(spans.iter().all(|s| s.dur_nanos.is_some()));
    }

    #[test]
    fn flight_recorder_captures_cell_lifecycle_and_timeouts() {
        let flight = Arc::new(rar_telemetry::FlightRecorder::new(64));
        let session = SweepSession::new().with_flight_recorder(Arc::clone(&flight));
        assert!(session.flight_recorder().is_some());
        let _ = session.run(&grid()[0]);
        let kinds: Vec<String> = flight.snapshot().iter().map(|e| e.kind.clone()).collect();
        assert!(kinds.contains(&"cell_start".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"cell_done".to_string()), "{kinds:?}");
        // A watchdog timeout leaves a cell_timeout breadcrumb.
        let strangled = Watchdog {
            cycle_factor: 0,
            cycle_slack: 1,
            wall: None,
        };
        let session = SweepSession::new()
            .watchdog(strangled)
            .with_flight_recorder(Arc::clone(&flight));
        assert!(session.run(&grid()[0]).is_err());
        let kinds: Vec<String> = flight.snapshot().iter().map(|e| e.kind.clone()).collect();
        assert!(kinds.contains(&"cell_timeout".to_string()), "{kinds:?}");
        let dump = flight.dump_json("test");
        assert!(dump.contains(rar_telemetry::FLIGHT_SCHEMA));
    }
}
