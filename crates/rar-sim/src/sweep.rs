//! The memoizing parallel sweep engine.
//!
//! A [`SweepSession`] executes batches of [`SimConfig`] cells and is the
//! single entry point the experiment runners and binaries use. It layers
//! three mechanisms, each independently sound:
//!
//! 1. **Artifact memoization.** A sweep grid re-uses one (workload, seed)
//!    stream across many techniques and cores. The session keeps every
//!    generated [`TracePrefix`] and every [`rar_verify`] dead-value
//!    refinement in `Arc`-shared stores, so each trace is generated — and
//!    each refinement computed — at most once per session, no matter how
//!    many cells consume it. Sound because both are pure functions of
//!    (workload, seed, horizon).
//! 2. **On-disk result cache.** With [`SweepSession::with_disk_cache`],
//!    finished cells are persisted through [`DiskCache`] keyed by
//!    [`SimConfig::fingerprint`]; warm reruns replay bit-identically
//!    without simulating.
//! 3. **Work-stealing scheduling.** Cells are dealt round-robin onto
//!    per-worker deques; an idle worker steals from the back of its
//!    peers. Long cells (big cores, slow workloads) no longer gate a
//!    whole chunk. Results land in a slot indexed by cell position, so
//!    the output order — and, since every cell is deterministic, every
//!    value — is independent of thread count and steal order.

use crate::cache::DiskCache;
use crate::config::SimConfig;
use crate::run::{refinement_horizon, RunArtifacts, SimResult, Simulation};
use rar_trace::NullSink;
use rar_verify::{AceRefinement, ConfigError};
use rar_workloads::{workload, TracePrefix};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Session-lifetime store of memoized sweep artifacts.
#[derive(Debug, Default)]
struct ArtifactStore {
    /// Longest generated prefix per (workload, seed).
    traces: Mutex<HashMap<(String, u64), Arc<TracePrefix>>>,
    /// Refinements per (workload, seed, horizon) — the horizon is part of
    /// the key because the analysis classifies exactly that many uops.
    refinements: Mutex<HashMap<(String, u64, usize), AceRefinement>>,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    refinement_hits: AtomicU64,
    refinement_misses: AtomicU64,
}

impl ArtifactStore {
    /// The run artifacts for `cfg`, computed at most once per key.
    ///
    /// Generation happens *under the store lock*: concurrent cells that
    /// need the same trace wait for one generation instead of racing to
    /// duplicate it (the memoization guarantee). Trace generation and
    /// liveness analysis are orders of magnitude cheaper than the
    /// simulation itself, so the serialization is immaterial.
    fn artifacts_for(&self, cfg: &SimConfig) -> RunArtifacts {
        let horizon = refinement_horizon(cfg);
        let trace_key = (cfg.workload.clone(), cfg.seed);
        let prefix = {
            let mut traces = self.traces.lock().expect("trace store lock");
            match traces.get(&trace_key) {
                Some(p) if p.len() >= horizon => {
                    self.trace_hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(p)
                }
                Some(p) => {
                    // A shorter prefix exists: grow it from its stored
                    // generator state — the already-generated uops are
                    // not regenerated.
                    self.trace_misses.fetch_add(1, Ordering::Relaxed);
                    let grown = Arc::new(p.extended(horizon));
                    traces.insert(trace_key, Arc::clone(&grown));
                    grown
                }
                None => {
                    self.trace_misses.fetch_add(1, Ordering::Relaxed);
                    let spec = workload(&cfg.workload).expect("validated workload exists");
                    let fresh = Arc::new(TracePrefix::generate(&spec, cfg.seed, horizon));
                    traces.insert(trace_key, Arc::clone(&fresh));
                    fresh
                }
            }
        };
        let ref_key = (cfg.workload.clone(), cfg.seed, horizon);
        let refinement = {
            let mut refinements = self.refinements.lock().expect("refinement store lock");
            if let Some(r) = refinements.get(&ref_key) {
                self.refinement_hits.fetch_add(1, Ordering::Relaxed);
                r.clone() // Arc-backed: O(1)
            } else {
                self.refinement_misses.fetch_add(1, Ordering::Relaxed);
                let fresh = rar_verify::analyze(&prefix.uops()[..horizon]);
                refinements.insert(ref_key, fresh.clone());
                fresh
            }
        };
        RunArtifacts { prefix, refinement }
    }
}

/// A run session: shared memoization stores, an optional disk cache, and
/// the sweep scheduler. Cheap to share behind an [`Arc`]; every method
/// takes `&self`.
#[derive(Debug, Default)]
pub struct SweepSession {
    cache: Option<DiskCache>,
    threads: Option<usize>,
    artifacts: ArtifactStore,
    simulated: AtomicU64,
    cache_hits: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    wall_nanos: AtomicU64,
    threads_used: AtomicU64,
}

/// Snapshot of a session's counters (see [`SweepSession::stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Cells actually simulated (cache misses).
    pub simulated: u64,
    /// Cells replayed from the on-disk cache.
    pub cache_hits: u64,
    /// Cells rejected by [`SimConfig::validate`] before simulation.
    pub rejected: u64,
    /// Cells whose simulation panicked (model bugs; excluded, not fatal).
    pub failed: u64,
    /// Trace prefixes served from the in-memory store.
    pub trace_memo_hits: u64,
    /// Trace prefixes generated (or grown) because no long-enough prefix
    /// existed yet.
    pub trace_memo_misses: u64,
    /// Refinements served from the in-memory store.
    pub refinement_memo_hits: u64,
    /// Refinements computed fresh.
    pub refinement_memo_misses: u64,
    /// Wall-clock seconds spent inside [`SweepSession::run_all`].
    pub wall_seconds: f64,
    /// Worker threads used by the most recent sweep.
    pub threads: u64,
}

impl SweepStats {
    /// Completed cells: simulated plus replayed from cache.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.simulated + self.cache_hits
    }

    /// Fraction of completed cells served by the disk cache.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.completed() as f64
    }

    /// Completed cells per wall-clock second.
    #[must_use]
    pub fn runs_per_second(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            return 0.0;
        }
        self.completed() as f64 / self.wall_seconds
    }
}

impl SweepSession {
    /// A session with in-memory memoization only (no disk cache).
    #[must_use]
    pub fn new() -> Self {
        SweepSession::default()
    }

    /// A session that additionally persists every finished cell to `dir`
    /// and replays from it on later runs.
    #[must_use]
    pub fn with_disk_cache(dir: impl Into<PathBuf>) -> Self {
        SweepSession {
            cache: Some(DiskCache::new(dir)),
            ..SweepSession::default()
        }
    }

    /// Pins the worker-thread count (default: available parallelism,
    /// capped by the number of runnable cells). Thread count never
    /// affects results — only throughput — which the test suite asserts.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// The disk cache, if this session has one.
    #[must_use]
    pub fn cache(&self) -> Option<&DiskCache> {
        self.cache.as_ref()
    }

    /// Runs a single cell through the session: disk cache, then memoized
    /// artifacts, then simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if [`SimConfig::validate`] rejects the
    /// configuration; nothing is simulated in that case.
    pub fn run(&self, cfg: &SimConfig) -> Result<SimResult, ConfigError> {
        cfg.validate()?;
        Ok(self.run_validated(cfg))
    }

    /// Cache → memoize → simulate for one pre-validated cell.
    fn run_validated(&self, cfg: &SimConfig) -> SimResult {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.load(cfg) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        let artifacts = self.artifacts.artifacts_for(cfg);
        let result = Simulation::run_prepared(cfg, NullSink, &artifacts).result;
        self.simulated.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            if let Err(e) = cache.store(cfg, &result) {
                eprintln!(
                    "[rar-sim] warning: could not cache {}/{}: {e}",
                    cfg.workload, cfg.technique
                );
            }
        }
        result
    }

    /// Runs `configs` across worker threads, preserving order.
    ///
    /// Every configuration is validated up front: a config that fails
    /// [`SimConfig::validate`] is reported on stderr with its typed
    /// [`ConfigError`] and returned as `None` without ever being
    /// scheduled. Runnable cells are dealt round-robin onto per-worker
    /// deques; idle workers steal work from their peers, so stragglers
    /// never leave threads idle. A cell whose simulation panics is
    /// reported and excluded (`None`) rather than poisoning the sweep;
    /// each completed cell logs a progress/ETA line to stderr.
    pub fn run_all(&self, configs: &[SimConfig]) -> Vec<Option<SimResult>> {
        let valid: Vec<bool> = configs
            .iter()
            .map(|cfg| match cfg.validate() {
                Ok(()) => true,
                Err(e) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[rar-sim] {}/{} rejected before simulation: {e}",
                        cfg.workload, cfg.technique
                    );
                    false
                }
            })
            .collect();
        let runnable = valid.iter().filter(|&&v| v).count();
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
            })
            .min(runnable.max(1));
        self.threads_used.store(threads as u64, Ordering::Relaxed);

        // Deal cells round-robin so each deque starts with a spread of
        // workloads (cells of one workload tend to cost the same).
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (n, i) in (0..configs.len()).filter(|&i| valid[i]).enumerate() {
            queues[n % threads].lock().expect("queue lock").push_back(i);
        }

        let results: Vec<Mutex<Option<SimResult>>> =
            configs.iter().map(|_| Mutex::new(None)).collect();
        let done = AtomicUsize::new(0);
        let started = std::time::Instant::now();
        std::thread::scope(|s| {
            for me in 0..threads {
                let queues = &queues;
                let results = &results;
                let done = &done;
                s.spawn(move || loop {
                    // Own queue first (front), then steal from peers
                    // (back) — the classic deque discipline keeps stolen
                    // work coarse.
                    let mut item = queues[me].lock().expect("queue lock").pop_front();
                    if item.is_none() {
                        for (other, q) in queues.iter().enumerate() {
                            if other == me {
                                continue;
                            }
                            item = q.lock().expect("queue lock").pop_back();
                            if item.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(i) = item else { break };
                    let cfg = &configs[i];
                    let cell = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.run_validated(cfg)
                    }));
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    let elapsed = started.elapsed().as_secs_f64();
                    let eta = elapsed / finished as f64 * (runnable - finished) as f64;
                    match cell {
                        Ok(r) => {
                            eprintln!(
                                "[rar-sim] {finished}/{runnable} {}/{} done \
                                 ({elapsed:.1}s elapsed, ~{eta:.0}s left)",
                                cfg.workload, cfg.technique
                            );
                            *results[i].lock().expect("no poisoned runs") = Some(r);
                        }
                        Err(_) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "[rar-sim] {finished}/{runnable} {}/{} FAILED \
                                 (panicked; excluded from tables)",
                                cfg.workload, cfg.technique
                            );
                        }
                    }
                });
            }
        });
        self.wall_nanos.fetch_add(
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        results
            .into_iter()
            .map(|m| m.into_inner().expect("run finished"))
            .collect()
    }

    /// Snapshot of the session's counters so far.
    #[must_use]
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            simulated: self.simulated.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            trace_memo_hits: self.artifacts.trace_hits.load(Ordering::Relaxed),
            trace_memo_misses: self.artifacts.trace_misses.load(Ordering::Relaxed),
            refinement_memo_hits: self.artifacts.refinement_hits.load(Ordering::Relaxed),
            refinement_memo_misses: self.artifacts.refinement_misses.load(Ordering::Relaxed),
            wall_seconds: self.wall_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            threads: self.threads_used.load(Ordering::Relaxed),
        }
    }

    /// The session's throughput/caching report as a JSON object — the
    /// contents of `BENCH_sweep.json`.
    #[must_use]
    pub fn bench_json(&self) -> String {
        let s = self.stats();
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"schema\": \"rar-bench-sweep-v1\",\n");
        let _ = writeln!(out, "  \"completed\": {},", s.completed());
        let _ = writeln!(out, "  \"simulated\": {},", s.simulated);
        let _ = writeln!(out, "  \"cache_hits\": {},", s.cache_hits);
        let _ = writeln!(out, "  \"cache_hit_rate\": {:.6},", s.cache_hit_rate());
        let _ = writeln!(out, "  \"rejected\": {},", s.rejected);
        let _ = writeln!(out, "  \"failed\": {},", s.failed);
        let _ = writeln!(out, "  \"trace_memo_hits\": {},", s.trace_memo_hits);
        let _ = writeln!(out, "  \"trace_memo_misses\": {},", s.trace_memo_misses);
        let _ = writeln!(
            out,
            "  \"refinement_memo_hits\": {},",
            s.refinement_memo_hits
        );
        let _ = writeln!(
            out,
            "  \"refinement_memo_misses\": {},",
            s.refinement_memo_misses
        );
        let _ = writeln!(out, "  \"wall_seconds\": {:.6},", s.wall_seconds);
        let _ = writeln!(out, "  \"runs_per_second\": {:.3},", s.runs_per_second());
        let _ = writeln!(out, "  \"threads\": {}", s.threads);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_core::Technique;

    fn grid() -> Vec<SimConfig> {
        let mut v = Vec::new();
        for t in [Technique::Ooo, Technique::Flush, Technique::Rar] {
            for w in ["mcf", "milc"] {
                v.push(
                    SimConfig::builder()
                        .workload(w)
                        .technique(t)
                        .warmup(300)
                        .instructions(1_500)
                        .build(),
                );
            }
        }
        v
    }

    #[test]
    fn memoization_generates_each_trace_once() {
        let session = SweepSession::new();
        let rs = session.run_all(&grid());
        assert!(rs.iter().all(Option::is_some));
        let s = session.stats();
        assert_eq!(s.simulated, 6);
        // Two (workload, seed) keys, each generated exactly once and then
        // served from the store; same for refinements (one horizon).
        assert_eq!(s.trace_memo_misses, 2);
        assert_eq!(s.trace_memo_hits, 4);
        assert_eq!(s.refinement_memo_misses, 2);
        assert_eq!(s.refinement_memo_hits, 4);
    }

    #[test]
    fn shared_artifacts_match_private_ones() {
        // A sweep cell must produce exactly what a standalone run does.
        let session = SweepSession::new();
        let grid = grid();
        let swept = session.run_all(&grid);
        for (cfg, got) in grid.iter().zip(&swept) {
            let standalone = Simulation::run(cfg);
            assert_eq!(got.as_ref().unwrap(), &standalone, "{}", cfg.fingerprint());
        }
    }

    #[test]
    fn a_longer_horizon_grows_the_shared_prefix() {
        let session = SweepSession::new();
        let short = SimConfig::builder()
            .workload("mcf")
            .warmup(100)
            .instructions(500)
            .build();
        let long = SimConfig::builder()
            .workload("mcf")
            .warmup(100)
            .instructions(2_000)
            .build();
        let a = session.run(&short).unwrap();
        let b = session.run(&long).unwrap();
        assert_eq!(a, Simulation::run(&short));
        assert_eq!(b, Simulation::run(&long));
        let s = session.stats();
        // One fresh generation plus one growth of the same key.
        assert_eq!(s.trace_memo_misses, 2);
        // Different horizons are distinct refinement keys.
        assert_eq!(s.refinement_memo_misses, 2);
    }

    #[test]
    fn stats_report_throughput_after_a_sweep() {
        let session = SweepSession::new().threads(2);
        let _ = session.run_all(&grid()[..2]);
        let s = session.stats();
        assert_eq!(s.completed(), 2);
        assert_eq!(s.threads, 2);
        assert!(s.wall_seconds > 0.0);
        assert!(s.runs_per_second() > 0.0);
        let json = session.bench_json();
        assert!(json.contains("\"schema\": \"rar-bench-sweep-v1\""));
        assert!(json.contains("\"simulated\": 2"));
    }
}
