//! Simulation driver and experiment harness.
//!
//! Ties the workspace together: [`SimConfig`] describes one run (workload,
//! technique, core/memory configuration, instruction budget);
//! [`Simulation::run`] executes it and returns a [`SimResult`] with
//! performance, reliability, and memory statistics; [`experiment`]
//! regenerates every table and figure of the paper's evaluation section;
//! [`report`] provides the aggregation rules (arithmetic mean for ABC and
//! MLP, harmonic mean for IPC, geometric mean for MTTF — following John's
//! methodology, as the paper does) and table/CSV formatting.
//!
//! # Examples
//!
//! ```
//! use rar_sim::{SimConfig, Simulation};
//! use rar_core::Technique;
//!
//! let cfg = SimConfig::builder()
//!     .workload("libquantum")
//!     .technique(Technique::Rar)
//!     .instructions(3_000)
//!     .warmup(500)
//!     .build();
//! let result = Simulation::run(&cfg);
//! assert!(result.ipc() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod dashboard;
pub mod energy;
pub mod experiment;
pub mod inject;
pub mod json;
pub mod protection;
pub mod report;
pub mod run;
pub mod sweep;

pub use cache::{DiskCache, CACHE_VERSION};
pub use config::{SimConfig, SimConfigBuilder, TraceSettings};
pub use energy::EnergyModel;
pub use experiment::{ExperimentOptions, Suite};
pub use inject::{run_injection_campaign, InjectionHarness};
pub use report::{amean, gmean, hmean, Table};
pub use run::{RunOutput, SimResult, Simulation};
pub use sweep::{ProfiledSweepSession, RunError, SweepSession, SweepStats, Watchdog};
