//! Experiment runners: one function per table/figure of the paper's
//! evaluation section.
//!
//! Every runner returns a [`Table`] whose rows mirror what the paper
//! plots; the `rar-experiments` binary prints them (and optionally writes
//! CSV). Normalizations follow the paper: all reliability/performance
//! numbers are relative to the baseline OoO core on the same workload;
//! averages use geometric mean for MTTF, harmonic mean for IPC, and
//! arithmetic mean for ABC and MLP.

use crate::config::SimConfig;
use crate::report::{amean, fmt2, fmt3, gmean, hmean, Table};
use crate::run::SimResult;
use crate::sweep::SweepSession;
use rar_ace::Structure;
use rar_core::{CoreConfig, Technique};
use rar_mem::{MemConfig, PrefetchPlacement};
use rar_telemetry::{NullProfiler, Profiler};
use rar_workloads::{compute_intensive, memory_intensive};
use std::collections::HashMap;
use std::sync::Arc;

/// Which benchmark suite an experiment runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The 15 memory-intensive benchmarks (MPKI > 8).
    Memory,
    /// The 8 compute-intensive benchmarks.
    Compute,
    /// Both suites.
    All,
}

impl Suite {
    /// Benchmark names in this suite.
    #[must_use]
    pub fn benchmarks(self) -> Vec<&'static str> {
        match self {
            Suite::Memory => memory_intensive().to_vec(),
            Suite::Compute => compute_intensive().to_vec(),
            Suite::All => {
                let mut v = memory_intensive().to_vec();
                v.extend_from_slice(compute_intensive());
                v
            }
        }
    }
}

/// Budget and scope knobs shared by all experiment runners.
///
/// Generic over the session's [`Profiler`] so a profiled binary can feed
/// a `SweepSession<WallProfiler>` through the exact same figure runners;
/// the default [`NullProfiler`] keeps every existing call site (and every
/// timing scope) unchanged and cost-free.
#[derive(Debug)]
pub struct ExperimentOptions<P: Profiler = NullProfiler> {
    /// Measured instructions per run.
    pub instructions: u64,
    /// Warm-up instructions per run.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
    /// Benchmarks to include where the paper uses the memory-intensive
    /// set (figure-specific suites override this).
    pub suite: Suite,
    /// The run session every matrix in this experiment goes through:
    /// shares memoized traces/refinements across figures and, when built
    /// with [`SweepSession::with_disk_cache`], replays previously
    /// completed cells from disk.
    pub session: Arc<SweepSession<P>>,
}

// Manual impl: a derived Clone would demand `P: Clone`, but the session
// is behind an Arc — cloning options never clones the profiler.
impl<P: Profiler> Clone for ExperimentOptions<P> {
    fn clone(&self) -> Self {
        ExperimentOptions {
            instructions: self.instructions,
            warmup: self.warmup,
            seed: self.seed,
            suite: self.suite,
            session: Arc::clone(&self.session),
        }
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            instructions: 60_000,
            warmup: 25_000,
            seed: 1,
            suite: Suite::Memory,
            session: Arc::new(SweepSession::new()),
        }
    }
}

impl ExperimentOptions {
    /// A tiny budget for smoke tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentOptions {
            instructions: 4_000,
            warmup: 500,
            ..ExperimentOptions::default()
        }
    }
}

fn run_one<P: Profiler>(
    workload: &str,
    technique: Technique,
    core: CoreConfig,
    mem: MemConfig,
    opts: &ExperimentOptions<P>,
) -> SimResult {
    opts.session
        .run(
            &SimConfig::builder()
                .workload(workload)
                .technique(technique)
                .core(core)
                .mem(mem)
                .instructions(opts.instructions)
                .warmup(opts.warmup)
                .seed(opts.seed)
                .build(),
        )
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Runs a benchmarks × techniques matrix through the options' session.
fn run_matrix<P: Profiler>(
    benchmarks: &[&str],
    techniques: &[Technique],
    core: &CoreConfig,
    mem: &MemConfig,
    opts: &ExperimentOptions<P>,
) -> HashMap<(String, Technique), SimResult> {
    let mut configs = Vec::new();
    for &b in benchmarks {
        for &t in techniques {
            configs.push(
                SimConfig::builder()
                    .workload(b)
                    .technique(t)
                    .core(core.clone())
                    .mem(mem.clone())
                    .instructions(opts.instructions)
                    .warmup(opts.warmup)
                    .seed(opts.seed)
                    .build(),
            );
        }
    }
    let results = opts.session.run_all(&configs);
    let mut map = HashMap::new();
    for r in results.into_iter().flatten() {
        map.insert((r.workload.clone(), r.technique), r);
    }
    map
}

/// Looks up one matrix cell; `None` when that run failed (figure builders
/// then skip the benchmark rather than panic).
fn cell<'a>(
    m: &'a HashMap<(String, Technique), SimResult>,
    b: &str,
    t: Technique,
) -> Option<&'a SimResult> {
    m.get(&(b.to_owned(), t))
}

/// Figure 1: the headline IPC-versus-MTTF trade-off of FLUSH, TR, PRE and
/// RAR relative to the OoO baseline (memory-intensive average).
#[must_use]
pub fn fig1<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let benchmarks = Suite::Memory.benchmarks();
    let techniques = [
        Technique::Ooo,
        Technique::Flush,
        Technique::Tr,
        Technique::Pre,
        Technique::Rar,
    ];
    let m = run_matrix(
        &benchmarks,
        &techniques,
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );

    let mut table = Table::new(vec![
        "technique".into(),
        "norm_MTTF".into(),
        "norm_IPC".into(),
    ]);
    table.titled("Figure 1: performance vs reliability (memory-intensive, relative to OoO)");
    for t in [
        Technique::Flush,
        Technique::Tr,
        Technique::Pre,
        Technique::Rar,
    ] {
        let (mut mttfs, mut ipcs) = (Vec::new(), Vec::new());
        for &b in &benchmarks {
            let (Some(base), Some(r)) = (cell(&m, b, Technique::Ooo), cell(&m, b, t)) else {
                continue;
            };
            mttfs.push(r.mttf_vs(base));
            ipcs.push(r.ipc_vs(base));
        }
        table.row(vec![t.to_string(), fmt2(gmean(&mttfs)), fmt2(hmean(&ipcs))]);
    }
    table
}

/// Figure 3: ABC stacks per benchmark, broken down by structure, plus the
/// compute-intensive average. Values are ACE bit-cycles per committed
/// kilo-instruction.
#[must_use]
pub fn fig3<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let mut header = vec!["benchmark".into()];
    header.extend(Structure::ALL.iter().map(std::string::ToString::to_string));
    header.push("total".into());
    let mut table = Table::new(header);
    table.titled("Figure 3: ABC stacks (ACE bit-cycles per kilo-instruction)");

    let mem_benchmarks = Suite::Memory.benchmarks();
    let m = run_matrix(
        &mem_benchmarks,
        &[Technique::Ooo],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    let c = run_matrix(
        &Suite::Compute.benchmarks(),
        &[Technique::Ooo],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );

    // Compute-intensive average first, as in the paper's plot.
    let mut avg = [0.0f64; Structure::COUNT];
    for r in c.values() {
        for (i, &abc) in r.abc_by_structure.iter().enumerate() {
            avg[i] += abc as f64 / r.stats.committed as f64 * 1000.0 / c.len() as f64;
        }
    }
    let mut row = vec!["compute-avg".to_owned()];
    row.extend(avg.iter().map(|v| format!("{v:.0}")));
    row.push(format!("{:.0}", avg.iter().sum::<f64>()));
    table.row(row);

    for &b in &mem_benchmarks {
        let Some(r) = cell(&m, b, Technique::Ooo) else {
            continue;
        };
        let per_ki = |abc: u128| abc as f64 / r.stats.committed as f64 * 1000.0;
        let mut row = vec![b.to_owned()];
        row.extend(
            r.abc_by_structure
                .iter()
                .map(|&a| format!("{:.0}", per_ki(a))),
        );
        row.push(format!("{:.0}", per_ki(r.reliability.total_abc())));
        table.row(row);
    }
    table
}

/// Figure 4: total ABC of the four Table I cores, normalized to Core-1
/// (memory-intensive average).
#[must_use]
pub fn fig4<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let mut table = Table::new(vec!["core".into(), "ROB".into(), "norm_ABC".into()]);
    table.titled("Figure 4: ABC vs back-end size (normalized to Core-1, memory-intensive)");
    let benchmarks = Suite::Memory.benchmarks();
    let cores = CoreConfig::table_i();

    // Per-benchmark ABC for each core, then normalize per benchmark and
    // average (arithmetic mean, as for ABC).
    let mut per_core: Vec<HashMap<String, f64>> = Vec::new();
    for core in &cores {
        let m = run_matrix(
            &benchmarks,
            &[Technique::Ooo],
            core,
            &MemConfig::baseline(),
            opts,
        );
        per_core.push(
            m.into_iter()
                .map(|((b, _), r)| (b, r.reliability.total_abc() as f64))
                .collect(),
        );
    }
    for (i, core) in cores.iter().enumerate() {
        let ratios: Vec<f64> = benchmarks
            .iter()
            .filter_map(|&b| Some(per_core[i].get(b)? / per_core[0].get(b)?))
            .collect();
        table.row(vec![
            format!("Core-{}", i + 1),
            core.rob_size.to_string(),
            fmt2(amean(&ratios)),
        ]);
    }
    table
}

/// Figure 5: fraction of total ABC exposed during full-ROB stalls and
/// while the ROB head is blocked by an LLC miss (OoO baseline).
#[must_use]
pub fn fig5<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "full_rob_stall_%".into(),
        "head_blocked_%".into(),
    ]);
    table.titled("Figure 5: share of ACE bits exposed under blocking misses (OoO)");
    let benchmarks = Suite::Memory.benchmarks();
    let m = run_matrix(
        &benchmarks,
        &[Technique::Ooo],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    let (mut f_shares, mut h_shares) = (Vec::new(), Vec::new());
    for &b in &benchmarks {
        let Some(r) = cell(&m, b, Technique::Ooo) else {
            continue;
        };
        let total = r.reliability.total_abc() as f64;
        let f = r.window_abc[0] as f64 / total * 100.0;
        let h = r.window_abc[1] as f64 / total * 100.0;
        f_shares.push(f);
        h_shares.push(h);
        table.row(vec![b.to_owned(), format!("{f:.1}"), format!("{h:.1}")]);
    }
    table.row(vec![
        "amean".to_owned(),
        format!("{:.1}", amean(&f_shares)),
        format!("{:.1}", amean(&h_shares)),
    ]);
    table
}

/// Figures 7 and 8: per-benchmark MTTF, ABC, IPC and MLP for FLUSH, PRE,
/// RAR-LATE and RAR relative to OoO, over the given suite.
#[must_use]
pub fn fig7_fig8<P: Profiler>(opts: &ExperimentOptions<P>) -> [Table; 4] {
    let benchmarks = opts.suite.benchmarks();
    let techniques = [
        Technique::Ooo,
        Technique::Flush,
        Technique::Pre,
        Technique::RarLate,
        Technique::Rar,
    ];
    let m = run_matrix(
        &benchmarks,
        &techniques,
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );

    let evaluated = [
        Technique::Flush,
        Technique::Pre,
        Technique::RarLate,
        Technique::Rar,
    ];
    let mut header = vec!["benchmark".into()];
    header.extend(evaluated.iter().map(ToString::to_string));

    let make = |title: &str,
                metric: &dyn Fn(&SimResult, &SimResult) -> f64,
                avg: &dyn Fn(&[f64]) -> f64| {
        let mut t = Table::new(header.clone());
        t.titled(title);
        let mut mem_cols: Vec<Vec<f64>> = vec![Vec::new(); evaluated.len()];
        let mut cpu_cols: Vec<Vec<f64>> = vec![Vec::new(); evaluated.len()];
        for &b in &benchmarks {
            let Some(base) = cell(&m, b, Technique::Ooo) else {
                continue;
            };
            let mut row = vec![b.to_owned()];
            let is_mem = memory_intensive().contains(&b);
            let vals: Option<Vec<f64>> = evaluated
                .iter()
                .map(|&tech| cell(&m, b, tech).map(|r| metric(r, base)))
                .collect();
            let Some(vals) = vals else {
                continue;
            };
            for (i, v) in vals.into_iter().enumerate() {
                if is_mem {
                    mem_cols[i].push(v);
                } else {
                    cpu_cols[i].push(v);
                }
                row.push(fmt2(v));
            }
            t.row(row);
        }
        // The paper reports memory- and compute-intensive averages
        // separately (Section V-A), plus the overall mean.
        for (label, cols) in [("mem-mean", &mem_cols), ("cpu-mean", &cpu_cols)] {
            if cols[0].is_empty() {
                continue;
            }
            let mut row = vec![label.to_owned()];
            for c in cols {
                row.push(fmt2(avg(c)));
            }
            t.row(row);
        }
        let mut row = vec!["mean".to_owned()];
        for (mc, cc) in mem_cols.iter().zip(&cpu_cols) {
            let all: Vec<f64> = mc.iter().chain(cc.iter()).copied().collect();
            row.push(fmt2(avg(&all)));
        }
        t.row(row);
        t
    };

    [
        make(
            "Figure 7a: normalized MTTF (higher is better)",
            &|r, b| r.mttf_vs(b),
            &|c| gmean(c),
        ),
        make(
            "Figure 7b: normalized ABC (lower is better)",
            &|r, b| r.abc_vs(b),
            &|c| amean(c),
        ),
        make(
            "Figure 8a: normalized IPC (higher is better)",
            &|r, b| r.ipc_vs(b),
            &|c| hmean(c),
        ),
        make("Figure 8b: normalized MLP", &|r, b| r.mlp_vs(b), &|c| {
            amean(c)
        }),
    ]
}

/// Figure 9: the full runahead design space (Table IV variants) plus
/// FLUSH — average MTTF, ABC and IPC relative to OoO (memory-intensive).
#[must_use]
pub fn fig9<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let benchmarks = Suite::Memory.benchmarks();
    let mut techniques = vec![Technique::Ooo, Technique::Flush];
    techniques.extend(Technique::RUNAHEAD_VARIANTS);
    let m = run_matrix(
        &benchmarks,
        &techniques,
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );

    let mut table = Table::new(vec![
        "technique".into(),
        "norm_MTTF".into(),
        "norm_ABC".into(),
        "norm_IPC".into(),
    ]);
    table.titled("Figure 9: runahead design space (memory-intensive averages vs OoO)");
    for t in techniques.iter().skip(1) {
        let (mut mttf, mut abc, mut ipc) = (Vec::new(), Vec::new(), Vec::new());
        for &b in &benchmarks {
            let (Some(base), Some(r)) = (cell(&m, b, Technique::Ooo), cell(&m, b, *t)) else {
                continue;
            };
            mttf.push(r.mttf_vs(base));
            abc.push(r.abc_vs(base));
            ipc.push(r.ipc_vs(base));
        }
        table.row(vec![
            t.to_string(),
            fmt2(gmean(&mttf)),
            fmt3(amean(&abc)),
            fmt2(hmean(&ipc)),
        ]);
    }
    table
}

/// Figure 10: ABC of OoO versus RAR across the four Table I cores,
/// normalized to Core-1 OoO (memory-intensive average). Extended with an
/// M1-class 600-entry-ROB core (marked `*`) — the scaling endpoint the
/// paper's Section II-B cites.
#[must_use]
pub fn fig10<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let mut table = Table::new(vec![
        "core".into(),
        "ROB".into(),
        "OoO_ABC".into(),
        "RAR_ABC".into(),
    ]);
    table.titled("Figure 10: back-end scaling (ABC normalized to Core-1 OoO; * = extension)");
    let benchmarks = Suite::Memory.benchmarks();
    let mut cores: Vec<(String, CoreConfig)> = CoreConfig::table_i()
        .into_iter()
        .enumerate()
        .map(|(i, c)| (format!("Core-{}", i + 1), c))
        .collect();
    cores.push(("Core-5*".to_owned(), CoreConfig::core5_m1()));
    let mut per_core: Vec<HashMap<(String, Technique), SimResult>> = Vec::new();
    for (_, core) in &cores {
        per_core.push(run_matrix(
            &benchmarks,
            &[Technique::Ooo, Technique::Rar],
            core,
            &MemConfig::baseline(),
            opts,
        ));
    }
    for (i, (name, core)) in cores.iter().enumerate() {
        let (mut ooo, mut rar) = (Vec::new(), Vec::new());
        for &b in &benchmarks {
            let (Some(bl), Some(o), Some(r)) = (
                cell(&per_core[0], b, Technique::Ooo),
                cell(&per_core[i], b, Technique::Ooo),
                cell(&per_core[i], b, Technique::Rar),
            ) else {
                continue;
            };
            let base = bl.reliability.total_abc() as f64;
            ooo.push(o.reliability.total_abc() as f64 / base);
            rar.push(r.reliability.total_abc() as f64 / base);
        }
        table.row(vec![
            name.clone(),
            core.rob_size.to_string(),
            fmt2(amean(&ooo)),
            fmt2(amean(&rar)),
        ]);
    }
    table
}

/// Figure 11: hardware prefetching (none, +L3, +ALL) for OoO, PRE and
/// RAR — MTTF, ABC, IPC relative to the no-prefetch OoO baseline
/// (memory-intensive averages).
#[must_use]
pub fn fig11<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let benchmarks = Suite::Memory.benchmarks();
    let placements = [
        ("none", PrefetchPlacement::None),
        ("+L3", PrefetchPlacement::L3),
        ("+ALL", PrefetchPlacement::All),
    ];
    let techniques = [Technique::Ooo, Technique::Pre, Technique::Rar];

    let mut table = Table::new(vec![
        "config".into(),
        "norm_MTTF".into(),
        "norm_ABC".into(),
        "norm_IPC".into(),
    ]);
    table.titled("Figure 11: hardware prefetching (relative to no-prefetch OoO)");

    let base = run_matrix(
        &benchmarks,
        &[Technique::Ooo],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    for (pname, placement) in placements {
        let mem = MemConfig::with_prefetch(placement);
        let m = run_matrix(
            &benchmarks,
            &techniques,
            &CoreConfig::baseline(),
            &mem,
            opts,
        );
        for t in techniques {
            if t == Technique::Ooo && placement == PrefetchPlacement::None {
                continue; // that's the baseline itself
            }
            let (mut mttf, mut abc, mut ipc) = (Vec::new(), Vec::new(), Vec::new());
            for &b in &benchmarks {
                let (Some(bl), Some(r)) = (cell(&base, b, Technique::Ooo), cell(&m, b, t)) else {
                    continue;
                };
                mttf.push(r.mttf_vs(bl));
                abc.push(r.abc_vs(bl));
                ipc.push(r.ipc_vs(bl));
            }
            table.row(vec![
                format!("{t} {pname}"),
                fmt2(gmean(&mttf)),
                fmt3(amean(&abc)),
                fmt2(hmean(&ipc)),
            ]);
        }
    }
    table
}

/// Table IV: the runahead-variant feature matrix, derived from
/// [`Technique::features`].
#[must_use]
pub fn table4() -> Table {
    let mut table = Table::new(vec![
        "variant".into(),
        "early".into(),
        "flush".into(),
        "lean".into(),
    ]);
    table.titled("Table IV: runahead variants");
    for t in Technique::RUNAHEAD_VARIANTS {
        let f = t.features().expect("runahead variants have features");
        let mark = |b: bool| if b { "yes" } else { "-" }.to_owned();
        table.row(vec![
            t.to_string(),
            mark(f.early),
            mark(f.flush_at_exit),
            mark(f.lean),
        ]);
    }
    table
}

/// Per-benchmark MPKI on the baseline core — the workload classification
/// check (the paper's memory-intensive threshold is MPKI > 8).
#[must_use]
pub fn mpki_check<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let mut table = Table::new(vec!["benchmark".into(), "class".into(), "MPKI".into()]);
    table.titled("Workload classification (baseline OoO)");
    let benchmarks = Suite::All.benchmarks();
    let m = run_matrix(
        &benchmarks,
        &[Technique::Ooo],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    for &b in &benchmarks {
        let Some(r) = cell(&m, b, Technique::Ooo) else {
            continue;
        };
        let class = if memory_intensive().contains(&b) {
            "memory"
        } else {
            "compute"
        };
        table.row(vec![
            b.to_owned(),
            class.to_owned(),
            format!("{:.1}", r.mpki()),
        ]);
    }
    table
}

/// Per-structure AVF breakdown for OoO versus RAR (extension; where does
/// RAR remove exposure?). AVF of structure `s` is `ABC_s / (bits_s x T)`.
#[must_use]
pub fn structures<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let benchmarks = Suite::Memory.benchmarks();
    let m = run_matrix(
        &benchmarks,
        &[Technique::Ooo, Technique::Rar],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    let caps = CoreConfig::baseline().capacities();
    let mut table = Table::new(vec![
        "structure".into(),
        "OoO_AVF".into(),
        "RAR_AVF".into(),
        "removed_%".into(),
    ]);
    table.titled("Per-structure AVF (memory-intensive averages)");
    for st in Structure::ALL {
        let avg = |tech: Technique| {
            let vals: Vec<f64> = benchmarks
                .iter()
                .filter_map(|&b| {
                    let r = cell(&m, b, tech)?;
                    let denom = caps.bits(st) as f64 * r.stats.cycles as f64;
                    if denom == 0.0 {
                        Some(0.0)
                    } else {
                        Some(r.abc_by_structure[st.index()] as f64 / denom)
                    }
                })
                .collect();
            amean(&vals)
        };
        let (o, r) = (avg(Technique::Ooo), avg(Technique::Rar));
        let removed = if o > 0.0 { (1.0 - r / o) * 100.0 } else { 0.0 };
        table.row(vec![
            st.to_string(),
            fmt3(o),
            fmt3(r),
            format!("{removed:.0}"),
        ]);
    }
    table
}

/// Static un-ACE refinement (extension; Section III of the verification
/// layer): unrefined versus statically-refined AVF per benchmark on the
/// baseline OoO core. The refinement subtracts dynamically-dead
/// destination-register bit-cycles (FDD/TDD values, dead address bits)
/// found by `rar-verify`'s liveness pass; the unrefined column is exactly
/// what every other table reports, so the default figures are unchanged.
#[must_use]
pub fn refinement<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let benchmarks = opts.suite.benchmarks();
    let m = run_matrix(
        &benchmarks,
        &[Technique::Ooo],
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    let mut table = Table::new(vec![
        "benchmark".into(),
        "AVF".into(),
        "refined_AVF".into(),
        "removed_%".into(),
        "bit_refined_AVF".into(),
        "bit_removed_%".into(),
    ]);
    table.titled("Static un-ACE refinement (OoO; refined = minus dead destination bits)");
    let mut removed = Vec::new();
    let mut bit_removed = Vec::new();
    for &b in &benchmarks {
        let Some(r) = cell(&m, b, Technique::Ooo) else {
            continue;
        };
        let (avf, ravf, bravf) = (
            r.reliability.avf(),
            r.reliability.refined_avf(),
            r.reliability.bit_refined_avf(),
        );
        let pct = if avf > 0.0 {
            (1.0 - ravf / avf) * 100.0
        } else {
            0.0
        };
        let bit_pct = if avf > 0.0 {
            (1.0 - bravf / avf) * 100.0
        } else {
            0.0
        };
        removed.push(pct);
        bit_removed.push(bit_pct);
        table.row(vec![
            b.to_owned(),
            fmt3(avf),
            fmt3(ravf),
            format!("{pct:.1}"),
            fmt3(bravf),
            format!("{bit_pct:.1}"),
        ]);
    }
    table.row(vec![
        "amean".to_owned(),
        String::new(),
        String::new(),
        format!("{:.1}", amean(&removed)),
        String::new(),
        format!("{:.1}", amean(&bit_removed)),
    ]);
    table
}

/// Extension design space: the paper's headline techniques next to the
/// workspace's extension variants (THROTTLE, RAB) on the memory-intensive
/// set.
#[must_use]
pub fn extensions<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let benchmarks = Suite::Memory.benchmarks();
    let techniques = [
        Technique::Ooo,
        Technique::Flush,
        Technique::Pre,
        Technique::Rar,
        Technique::Throttle,
        Technique::Rab,
        Technique::Cre,
        Technique::Vr,
    ];
    let m = run_matrix(
        &benchmarks,
        &techniques,
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    let mut table = Table::new(vec![
        "technique".into(),
        "norm_MTTF".into(),
        "norm_ABC".into(),
        "norm_IPC".into(),
    ]);
    table.titled("Extension design space (memory-intensive averages vs OoO)");
    for t in techniques.into_iter().skip(1) {
        let (mut mttf, mut abc, mut ipc) = (Vec::new(), Vec::new(), Vec::new());
        for &b in &benchmarks {
            let (Some(base), Some(r)) = (cell(&m, b, Technique::Ooo), cell(&m, b, t)) else {
                continue;
            };
            mttf.push(r.mttf_vs(base));
            abc.push(r.abc_vs(base));
            ipc.push(r.ipc_vs(base));
        }
        table.row(vec![
            t.to_string(),
            fmt2(gmean(&mttf)),
            fmt3(amean(&abc)),
            fmt2(hmean(&ipc)),
        ]);
    }
    table
}

/// Energy comparison across techniques (extension; first-order event
/// model from [`crate::energy`]): energy per instruction relative to the
/// OoO baseline, memory-intensive set. Lean runahead (PRE/RAR) should pay
/// far less energy than traditional runahead for similar speculation.
#[must_use]
pub fn energy<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let model = crate::energy::EnergyModel::default_22nm();
    let benchmarks = Suite::Memory.benchmarks();
    let techniques = [
        Technique::Ooo,
        Technique::Flush,
        Technique::Tr,
        Technique::Pre,
        Technique::Rar,
    ];
    let m = run_matrix(
        &benchmarks,
        &techniques,
        &CoreConfig::baseline(),
        &MemConfig::baseline(),
        opts,
    );
    let mut table = Table::new(vec![
        "technique".into(),
        "rel_EPI".into(),
        "rel_IPC".into(),
        "ra_uops/instr".into(),
    ]);
    table.titled("Energy per instruction vs OoO (extension; memory-intensive)");
    for t in techniques.into_iter().skip(1) {
        let (mut epi, mut ipc, mut ra) = (Vec::new(), Vec::new(), Vec::new());
        for &b in &benchmarks {
            let (Some(base), Some(r)) = (cell(&m, b, Technique::Ooo), cell(&m, b, t)) else {
                continue;
            };
            epi.push(model.epi_vs(r, base));
            ipc.push(r.ipc_vs(base));
            ra.push(r.stats.runahead_uops as f64 / r.stats.committed as f64);
        }
        table.row(vec![
            t.to_string(),
            fmt2(amean(&epi)),
            fmt2(hmean(&ipc)),
            fmt2(amean(&ra)),
        ]);
    }
    table
}

/// Multi-seed robustness check: the headline techniques' normalized MTTF
/// and IPC (memory-intensive geomean/hmean) across `seeds` workload
/// seeds, reported as mean ± sample standard deviation. Synthetic
/// workloads are seed-parameterized, so this quantifies how much of each
/// result is model noise versus mechanism.
#[must_use]
pub fn seed_sweep<P: Profiler>(opts: &ExperimentOptions<P>, seeds: u64) -> Table {
    let benchmarks = Suite::Memory.benchmarks();
    let techniques = [Technique::Flush, Technique::Pre, Technique::Rar];
    let mut per_seed: Vec<HashMap<Technique, (f64, f64)>> = Vec::new();
    for seed in 1..=seeds {
        let mut o = opts.clone();
        o.seed = seed;
        let mut all = vec![Technique::Ooo];
        all.extend(techniques);
        let m = run_matrix(
            &benchmarks,
            &all,
            &CoreConfig::baseline(),
            &MemConfig::baseline(),
            &o,
        );
        let mut row = HashMap::new();
        for t in techniques {
            let (mut mttf, mut ipc) = (Vec::new(), Vec::new());
            for &b in &benchmarks {
                let (Some(base), Some(r)) = (cell(&m, b, Technique::Ooo), cell(&m, b, t)) else {
                    continue;
                };
                mttf.push(r.mttf_vs(base));
                ipc.push(r.ipc_vs(base));
            }
            row.insert(t, (gmean(&mttf), hmean(&ipc)));
        }
        per_seed.push(row);
    }

    let stats = |xs: &[f64]| -> (f64, f64) {
        let mean = amean(xs);
        if xs.len() < 2 {
            return (mean, 0.0);
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        (mean, var.sqrt())
    };

    let mut table = Table::new(vec![
        "technique".into(),
        "MTTF mean".into(),
        "MTTF sd".into(),
        "IPC mean".into(),
        "IPC sd".into(),
        "seeds".into(),
    ]);
    table.titled("Seed robustness (memory-intensive averages vs OoO)");
    for t in techniques {
        let mttfs: Vec<f64> = per_seed.iter().map(|r| r[&t].0).collect();
        let ipcs: Vec<f64> = per_seed.iter().map(|r| r[&t].1).collect();
        let (mm, ms) = stats(&mttfs);
        let (im, is) = stats(&ipcs);
        table.row(vec![
            t.to_string(),
            fmt2(mm),
            fmt2(ms),
            fmt2(im),
            fmt2(is),
            seeds.to_string(),
        ]);
    }
    table
}

/// Convenience: `run_one` with baseline core/memory — used by the binary.
#[must_use]
pub fn single<P: Profiler>(
    workload: &str,
    technique: Technique,
    opts: &ExperimentOptions<P>,
) -> SimResult {
    run_one(
        workload,
        technique,
        CoreConfig::baseline(),
        MemConfig::baseline(),
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentOptions {
        ExperimentOptions {
            instructions: 2_000,
            warmup: 300,
            seed: 1,
            suite: Suite::Memory,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn table4_matches_paper() {
        let t = table4();
        assert_eq!(t.len(), 6);
        let csv = t.to_csv();
        assert!(csv.contains("RAR,yes,yes,yes"));
        assert!(csv.contains("PRE,-,-,yes"));
        assert!(csv.contains("TR,-,yes,-"));
    }

    #[test]
    fn fig1_produces_four_rows() {
        // Tiny budget: just checks plumbing, not magnitudes.
        let opts = ExperimentOptions {
            suite: Suite::Memory,
            ..tiny()
        };
        // Restrict to a single benchmark through a focused matrix by
        // running the full fig1 at tiny scale would be slow; instead run
        // the matrix machinery directly.
        let m = run_matrix(
            &["libquantum"],
            &[Technique::Ooo, Technique::Rar],
            &CoreConfig::baseline(),
            &MemConfig::baseline(),
            &opts,
        );
        assert_eq!(m.len(), 2);
        let base = &m[&("libquantum".to_owned(), Technique::Ooo)];
        let rar = &m[&("libquantum".to_owned(), Technique::Rar)];
        assert!(rar.mttf_vs(base) > 0.0);
    }

    #[test]
    fn parallel_runs_preserve_order_and_determinism() {
        let mk = |t| {
            SimConfig::builder()
                .workload("milc")
                .technique(t)
                .instructions(1_500)
                .warmup(200)
                .build()
        };
        let rs = SweepSession::new().run_all(&[
            mk(Technique::Ooo),
            mk(Technique::Rar),
            mk(Technique::Ooo),
        ]);
        assert_eq!(rs.len(), 3);
        let rs: Vec<&SimResult> = rs.iter().map(|r| r.as_ref().expect("run ok")).collect();
        assert_eq!(rs[0].technique, Technique::Ooo);
        assert_eq!(rs[1].technique, Technique::Rar);
        assert_eq!(
            rs[0].stats.cycles, rs[2].stats.cycles,
            "same config, same result"
        );
    }

    #[test]
    fn panicking_run_does_not_poison_the_sweep() {
        let good = SimConfig::builder()
            .workload("milc")
            .instructions(1_000)
            .warmup(100)
            .build();
        let bad = SimConfig::builder().workload("no-such-workload").build();
        let rs = SweepSession::new().run_all(&[good.clone(), bad, good]);
        assert_eq!(rs.len(), 3);
        assert!(rs[0].is_some());
        assert!(rs[1].is_none(), "bad workload must be a reported failure");
        assert!(rs[2].is_some());
    }

    #[test]
    fn invalid_config_is_rejected_before_simulation() {
        let mut core = CoreConfig::baseline();
        core.width = 0; // structurally impossible; caught by validate()
        let bad = SimConfig::builder().core(core).build();
        let good = SimConfig::builder()
            .workload("milc")
            .instructions(1_000)
            .warmup(100)
            .build();
        let rs = SweepSession::new().run_all(&[bad, good]);
        assert!(rs[0].is_none(), "invalid config must be rejected up front");
        assert!(rs[1].is_some());
    }

    #[test]
    fn refinement_table_reports_bounded_refined_avf() {
        let opts = ExperimentOptions {
            suite: Suite::Compute,
            ..tiny()
        };
        let t = refinement(&opts);
        // One row per compute benchmark plus the mean row.
        assert_eq!(t.len(), Suite::Compute.benchmarks().len() + 1);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            let (Ok(avf), Ok(ravf)) = (cols[1].parse::<f64>(), cols[2].parse::<f64>()) else {
                continue; // header/mean rows
            };
            assert!(ravf <= avf, "{line}: refined AVF must not exceed AVF");
            let bravf: f64 = cols[4].parse().expect("bit-refined column present");
            assert!(
                bravf <= ravf,
                "{line}: bit-refined AVF must not exceed refined AVF"
            );
        }
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(Suite::Memory.benchmarks().len(), 15);
        assert_eq!(Suite::Compute.benchmarks().len(), 8);
        assert_eq!(Suite::All.benchmarks().len(), 23);
    }
}
