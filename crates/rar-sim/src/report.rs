//! Aggregation and table formatting.
//!
//! The paper aggregates following John's methodology (Section V):
//! arithmetic mean for ABC and MLP, harmonic mean for IPC, geometric mean
//! for MTTF. The [`Table`] type renders aligned text tables and CSV.

use std::fmt::Write as _;

/// Arithmetic mean; 0 for an empty slice.
#[must_use]
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Harmonic mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics if any element is zero or negative (harmonic mean is undefined).
#[must_use]
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "harmonic mean requires positive values"
    );
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics if any element is zero or negative.
#[must_use]
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean requires positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple column-aligned table with CSV export.
///
/// # Examples
///
/// ```
/// use rar_sim::Table;
/// let mut t = Table::new(vec!["bench".into(), "ipc".into()]);
/// t.row(vec!["mcf".into(), "0.42".into()]);
/// let text = t.render();
/// assert!(text.contains("mcf"));
/// assert!(t.to_csv().starts_with("bench,ipc"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
            title: String::new(),
        }
    }

    /// Sets a title line printed above the table.
    pub fn titled(&mut self, title: &str) -> &mut Self {
        self.title = title.to_owned();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting — cells are numeric or simple
    /// identifiers).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like the paper's figures: two decimals.
#[must_use]
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio with three decimals (for small ABC fractions).
#[must_use]
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_on_known_values() {
        let xs = [1.0, 2.0, 4.0];
        assert!((amean(&xs) - 7.0 / 3.0).abs() < 1e-12);
        assert!((gmean(&xs) - 2.0).abs() < 1e-12);
        assert!((hmean(&xs) - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn means_empty() {
        assert_eq!(amean(&[]), 0.0);
        assert_eq!(hmean(&[]), 0.0);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn hmean_leq_gmean_leq_amean() {
        let xs = [0.5, 1.3, 2.7, 8.1];
        assert!(hmean(&xs) <= gmean(&xs) + 1e-12);
        assert!(gmean(&xs) <= amean(&xs) + 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.titled("demo");
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_export() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }
}
