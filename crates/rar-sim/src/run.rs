//! Running one simulation and collecting its results.
//!
//! [`Simulation::try_run_with`] is the single generic entry point: it
//! drives one configuration to completion against any [`TraceSink`]. The
//! historic `run`/`try_run`/`run_traced`/`try_run_traced` names remain as
//! thin wrappers choosing the sink (and the error handling) for you.

use crate::config::SimConfig;
use rar_ace::{ReliabilityReport, StallKind, Structure};
use rar_core::{Core, CoreStats, RunVerdict, StallProfile, Technique};
use rar_frontend::PredictorStats;
use rar_isa::{TraceWindow, UopSource};
use rar_mem::MemStats;
use rar_trace::{NullSink, RingSink, TraceSink};
use rar_verify::{AceRefinement, ConfigError};
use rar_workloads::{workload, TracePrefix};
use std::sync::Arc;

/// Executes simulations described by [`SimConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Simulation;

/// Everything a run needs besides the configuration: the memoized trace
/// prefix and the dead-value refinement derived from it. Both are pure
/// functions of (workload, seed, horizon), so a sweep engine builds them
/// once and shares them across every cell with the same key; a standalone
/// run builds them privately via [`RunArtifacts::prepare`].
#[derive(Debug, Clone)]
pub(crate) struct RunArtifacts {
    pub prefix: Arc<TracePrefix>,
    pub refinement: AceRefinement,
}

/// Dead-value analysis horizon for `cfg`: warm-up plus the measured
/// budget plus commit-width slack (the last cycle can overshoot the
/// budget); sequence numbers past the horizon stay conservatively live.
pub(crate) fn refinement_horizon(cfg: &SimConfig) -> usize {
    usize::try_from(cfg.warmup + cfg.instructions).expect("budget fits usize") + 4 * cfg.core.width
}

impl RunArtifacts {
    /// Generates the trace prefix once and derives the refinement from
    /// the same materialized stream (the stream is never generated
    /// twice). Expects a validated configuration.
    pub(crate) fn prepare(cfg: &SimConfig) -> Self {
        let spec = workload(&cfg.workload).expect("validated workload exists");
        let prefix = Arc::new(TracePrefix::generate(
            &spec,
            cfg.seed,
            refinement_horizon(cfg),
        ));
        let refinement = rar_verify::analyze(prefix.uops());
        RunArtifacts { prefix, refinement }
    }
}

/// The product of one generic run: the measurements plus the sink that
/// captured the run's trace events (a [`NullSink`] for untraced runs).
#[derive(Debug, Clone)]
pub struct RunOutput<T> {
    /// All measurements from the run.
    pub result: SimResult,
    /// The sink passed to [`Simulation::try_run_with`], after the run.
    pub sink: T,
}

impl Simulation {
    /// Runs one configuration to completion against `sink`, the single
    /// entry point all other run flavors wrap.
    ///
    /// Events from warm-up are scrubbed from the sink at the measurement
    /// boundary ([`TraceSink::scrub`]) so captured traces line up with the
    /// measured statistics. With a [`NullSink`] every emission site folds
    /// away at monomorphization, so an untraced run pays nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if [`SimConfig::validate`] rejects the
    /// configuration; nothing is simulated in that case.
    pub fn try_run_with<T: TraceSink>(
        cfg: &SimConfig,
        sink: T,
    ) -> Result<RunOutput<T>, ConfigError> {
        cfg.validate()?;
        Ok(Simulation::run_prepared(
            cfg,
            sink,
            &RunArtifacts::prepare(cfg),
            false,
        ))
    }

    /// Runs one configuration with the per-cycle stall/occupancy profiler
    /// enabled (see [`rar_core::StallProfile`]): the result's
    /// [`SimResult::stalls`] carries the cycle taxonomy, and everything
    /// else is bit-identical to [`Simulation::try_run`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if [`SimConfig::validate`] rejects the
    /// configuration; nothing is simulated in that case.
    pub fn try_run_stalled(cfg: &SimConfig) -> Result<SimResult, ConfigError> {
        cfg.validate()?;
        Ok(Simulation::run_prepared(cfg, NullSink, &RunArtifacts::prepare(cfg), true).result)
    }

    /// Runs a *validated* configuration with pre-built artifacts. This is
    /// the sweep engine's entry: the artifacts may be shared with other
    /// concurrent runs of the same (workload, seed). With `stalls` the
    /// core's per-cycle stall profiler is enabled over the measured
    /// portion of the run.
    pub(crate) fn run_prepared<T: TraceSink>(
        cfg: &SimConfig,
        sink: T,
        artifacts: &RunArtifacts,
        stalls: bool,
    ) -> RunOutput<T> {
        let trace = TraceWindow::new(TracePrefix::resume(&artifacts.prefix));
        let mut core = Core::with_sink(
            cfg.core.clone(),
            cfg.mem.clone(),
            cfg.technique,
            trace,
            sink,
        );
        core.set_ace_refinement(artifacts.refinement.clone());
        if T::ENABLED {
            core.set_sample_interval(cfg.trace.sample_interval);
        }
        if stalls {
            core.enable_stall_profiling();
        }
        if cfg.warmup > 0 {
            core.run_until_committed(cfg.warmup);
            core.reset_measurement();
            // Drop warm-up events so trace counts line up with the
            // measured statistics.
            core.sink_mut().scrub();
        }
        core.run_until_committed(cfg.instructions);
        let result = collect(cfg, &core);
        RunOutput {
            result,
            sink: core.into_sink(),
        }
    }

    /// Like [`Simulation::run_prepared`], but bounded by a cycle budget
    /// and an optional wall-clock deadline covering the whole run
    /// (warm-up included). A run that exhausts either bound returns the
    /// core's [`RunVerdict`] instead of panicking — the sweep watchdog
    /// maps it to a typed timeout error, the fault-injection harness to a
    /// DUE classification.
    pub(crate) fn run_prepared_budgeted<T: TraceSink>(
        cfg: &SimConfig,
        sink: T,
        artifacts: &RunArtifacts,
        stalls: bool,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<RunOutput<T>, RunVerdict> {
        let trace = TraceWindow::new(TracePrefix::resume(&artifacts.prefix));
        let mut core = Core::with_sink(
            cfg.core.clone(),
            cfg.mem.clone(),
            cfg.technique,
            trace,
            sink,
        );
        core.set_ace_refinement(artifacts.refinement.clone());
        if T::ENABLED {
            core.set_sample_interval(cfg.trace.sample_interval);
        }
        if stalls {
            core.enable_stall_profiling();
        }
        let mut remaining = max_cycles;
        if cfg.warmup > 0 {
            match core.run_budgeted(cfg.warmup, remaining, deadline) {
                RunVerdict::Completed => {}
                verdict => return Err(verdict),
            }
            remaining = remaining.saturating_sub(core.stats().cycles).max(1);
            core.reset_measurement();
            core.sink_mut().scrub();
        }
        match core.run_budgeted(cfg.instructions, remaining, deadline) {
            RunVerdict::Completed => {}
            verdict => return Err(verdict),
        }
        let result = collect(cfg, &core);
        Ok(RunOutput {
            result,
            sink: core.into_sink(),
        })
    }

    /// Runs one configuration to completion with the zero-overhead
    /// [`NullSink`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if [`SimConfig::validate`] rejects the
    /// configuration; nothing is simulated in that case.
    pub fn try_run(cfg: &SimConfig) -> Result<SimResult, ConfigError> {
        Ok(Simulation::try_run_with(cfg, NullSink)?.result)
    }

    /// Runs one configuration to completion.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation (e.g. the workload
    /// name is unknown). Use [`Simulation::try_run`] for a typed error.
    #[must_use]
    pub fn run(cfg: &SimConfig) -> SimResult {
        Simulation::try_run(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one configuration with trace capture (see
    /// [`SimConfig::trace`](crate::TraceSettings)): pipeline, runahead,
    /// memory and sampler events are recorded into a ring buffer covering
    /// the measured portion of the run (warm-up activity is scrubbed).
    /// Returns the measurements together with the captured sink, ready for
    /// the `rar_trace` exporters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if [`SimConfig::validate`] rejects the
    /// configuration; nothing is simulated in that case.
    pub fn try_run_traced(cfg: &SimConfig) -> Result<(SimResult, RingSink), ConfigError> {
        let out = Simulation::try_run_with(cfg, RingSink::new(cfg.trace.capacity))?;
        Ok((out.result, out.sink))
    }

    /// Panicking variant of [`Simulation::try_run_traced`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    #[must_use]
    pub fn run_traced(cfg: &SimConfig) -> (SimResult, RingSink) {
        Simulation::try_run_traced(cfg).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Assembles a [`SimResult`] from a finished core, whatever its sink type.
fn collect<S: UopSource, T: TraceSink>(cfg: &SimConfig, core: &Core<S, T>) -> SimResult {
    let stats = *core.stats();
    let reliability = core.reliability_report();
    let abc_by_structure = core.ace().abc_by_structure();
    let window_abc = [
        core.ace().abc_in_window(StallKind::FullRobStall),
        core.ace().abc_in_window(StallKind::RobHeadBlocked),
    ];
    SimResult {
        workload: cfg.workload.clone(),
        technique: cfg.technique,
        stats,
        reliability,
        mem: *core.mem_stats(),
        predictor: core.predictor_stats(),
        abc_by_structure,
        window_abc,
        stalls: core.stall_profile().map(|p| Box::new(p.clone())),
    }
}

/// All measurements from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Benchmark name.
    pub workload: String,
    /// Technique simulated.
    pub technique: Technique,
    /// Core performance counters.
    pub stats: CoreStats,
    /// Reliability summary (ABC/AVF; compare via
    /// [`ReliabilityReport::mttf_vs`]).
    pub reliability: ReliabilityReport,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Branch-predictor counters.
    pub predictor: PredictorStats,
    /// ABC per structure, in [`Structure::ALL`] order.
    pub abc_by_structure: [u128; Structure::COUNT],
    /// ABC attributed to [full-ROB-stall, ROB-head-blocked] windows.
    pub window_abc: [u128; 2],
    /// Per-cycle stall taxonomy and occupancy shapes; `None` unless the
    /// run enabled stall profiling ([`Simulation::try_run_stalled`]).
    pub stalls: Option<Box<StallProfile>>,
}

impl SimResult {
    /// Useful instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Average memory-level parallelism.
    #[must_use]
    pub fn mlp(&self) -> f64 {
        self.stats.mlp()
    }

    /// LLC misses per kilo-instruction.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        self.mem.mpki(self.stats.committed)
    }

    /// Normalized IPC relative to `baseline` (higher is better).
    #[must_use]
    pub fn ipc_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.ipc() == 0.0 {
            return f64::NAN;
        }
        self.ipc() / baseline.ipc()
    }

    /// Normalized MTTF relative to `baseline` (higher is better).
    #[must_use]
    pub fn mttf_vs(&self, baseline: &SimResult) -> f64 {
        self.reliability.mttf_vs(&baseline.reliability)
    }

    /// Normalized ABC relative to `baseline` (lower is better).
    #[must_use]
    pub fn abc_vs(&self, baseline: &SimResult) -> f64 {
        self.reliability.abc_vs(&baseline.reliability)
    }

    /// Normalized MLP relative to `baseline`. When the baseline exposed no
    /// memory-level parallelism at all (a fully cache-resident workload),
    /// the ratio is reported as 1.0.
    #[must_use]
    pub fn mlp_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.mlp() == 0.0 {
            return 1.0;
        }
        self.mlp() / baseline.mlp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn quick(workload: &str, technique: Technique) -> SimResult {
        Simulation::run(
            &SimConfig::builder()
                .workload(workload)
                .technique(technique)
                .warmup(1_000)
                .instructions(6_000)
                .build(),
        )
    }

    #[test]
    fn baseline_run_produces_sane_results() {
        let r = quick("libquantum", Technique::Ooo);
        assert!(r.ipc() > 0.0 && r.ipc() < 4.0);
        assert!(r.reliability.total_abc() > 0);
        assert!(r.mpki() > 0.0, "libquantum must miss the LLC");
    }

    #[test]
    fn memory_intensive_workload_exceeds_mpki_threshold() {
        let r = quick("mcf", Technique::Ooo);
        assert!(r.mpki() > 8.0, "mcf MPKI = {}", r.mpki());
    }

    #[test]
    fn compute_intensive_workload_below_threshold() {
        // Needs enough warm-up to fill the hot/store regions: the model's
        // misses are purely compulsory for compute-intensive workloads.
        let r = Simulation::run(
            &SimConfig::builder()
                .workload("leela")
                .technique(Technique::Ooo)
                .warmup(25_000)
                .instructions(6_000)
                .build(),
        );
        assert!(r.mpki() < 8.0, "leela MPKI = {}", r.mpki());
    }

    #[test]
    fn rar_beats_baseline_reliability() {
        let base = quick("libquantum", Technique::Ooo);
        let rar = quick("libquantum", Technique::Rar);
        assert!(
            rar.mttf_vs(&base) > 1.0,
            "MTTF ratio {}",
            rar.mttf_vs(&base)
        );
        assert!(rar.abc_vs(&base) < 1.0, "ABC ratio {}", rar.abc_vs(&base));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick("milc", Technique::Rar);
        let b = quick("milc", Technique::Rar);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.reliability.total_abc(), b.reliability.total_abc());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = Simulation::run(&SimConfig::builder().workload("nope").build());
    }

    #[test]
    fn try_run_rejects_bad_configs_without_panicking() {
        let err = Simulation::try_run(&SimConfig::builder().workload("nope").build()).unwrap_err();
        assert_eq!(err.field(), "workload");

        let mut core = rar_core::CoreConfig::baseline();
        core.width = 0;
        let err = Simulation::try_run(&SimConfig::builder().core(core).build()).unwrap_err();
        assert_eq!(err.field(), "width");
    }

    #[test]
    fn refined_avf_reported_and_bounded_on_every_workload() {
        for name in rar_workloads::all_benchmarks() {
            let r = quick(name, Technique::Ooo);
            let rel = &r.reliability;
            assert!(
                rel.refined_total_abc() <= rel.total_abc(),
                "{name}: refined ABC {} > unrefined {}",
                rel.refined_total_abc(),
                rel.total_abc()
            );
            assert!(
                rel.refined_avf() <= rel.avf(),
                "{name}: refined AVF above unrefined"
            );
            assert!(
                rel.refined_total_abc() > 0,
                "{name}: refinement killed all ABC"
            );
        }
    }

    #[test]
    fn bit_refined_avf_ordered_on_every_workload() {
        // The paper-benchmark-wide ordering invariant of the three AVF
        // tiers: bit_refined <= refined <= unrefined, with the bit tier
        // still leaving measurable exposure.
        for name in rar_workloads::all_benchmarks() {
            let r = quick(name, Technique::Ooo);
            let rel = &r.reliability;
            assert!(
                rel.bit_refined_total_abc() <= rel.refined_total_abc(),
                "{name}: bit-refined ABC {} > refined {}",
                rel.bit_refined_total_abc(),
                rel.refined_total_abc()
            );
            assert!(
                rel.bit_refined_avf() <= rel.refined_avf() && rel.refined_avf() <= rel.avf(),
                "{name}: AVF tiers out of order"
            );
            assert!(
                rel.bit_refined_total_abc() > 0,
                "{name}: bit refinement killed all ABC"
            );
        }
    }

    #[test]
    fn bit_refined_figures_are_deterministic_and_thread_invariant() {
        // Same config twice in-process, and once through the parallel
        // sweep engine: all three must agree bit for bit.
        let cfg = SimConfig::builder()
            .workload("lbm")
            .technique(Technique::Rar)
            .warmup(1_000)
            .instructions(6_000)
            .build();
        let a = Simulation::run(&cfg);
        let b = Simulation::run(&cfg);
        assert_eq!(
            a.reliability.bit_refined_total_abc(),
            b.reliability.bit_refined_total_abc()
        );
        let swept = crate::sweep::SweepSession::new().run_all(&[cfg.clone(), cfg.clone()]);
        for r in swept {
            let r = r.expect("sweep run ok");
            assert_eq!(
                r.reliability.bit_refined_total_abc(),
                a.reliability.bit_refined_total_abc()
            );
            assert_eq!(
                r.reliability.bit_refined_avf().to_bits(),
                a.reliability.bit_refined_avf().to_bits()
            );
        }
    }

    #[test]
    fn refinement_finds_dead_values_somewhere() {
        // The synthetic workloads overwrite registers aggressively, so at
        // least one of them must expose statically dead destinations.
        let any_refined = rar_workloads::all_benchmarks().iter().any(|name| {
            let r = quick(name, Technique::Ooo);
            r.reliability.refined_total_abc() < r.reliability.total_abc()
        });
        assert!(any_refined, "dead-value refinement never fired");
    }

    #[test]
    fn traced_run_matches_untraced_statistics() {
        let cfg = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(1_000)
            .instructions(6_000)
            .build();
        let plain = Simulation::run(&cfg);
        let (traced, sink) = Simulation::run_traced(&cfg);
        // Tracing must not perturb the simulation.
        assert_eq!(plain.stats.cycles, traced.stats.cycles);
        assert_eq!(plain.stats.committed, traced.stats.committed);
        assert_eq!(
            plain.reliability.total_abc(),
            traced.reliability.total_abc()
        );
        assert!(sink.emitted() > 0, "traced run captured no events");
    }

    #[test]
    fn stall_profiled_run_matches_unprofiled_bit_for_bit() {
        let cfg = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(1_000)
            .instructions(6_000)
            .build();
        let plain = Simulation::run(&cfg);
        let stalled = Simulation::try_run_stalled(&cfg).expect("valid config");
        let profile = stalled.stalls.as_ref().expect("profile present");
        // Conservation: every measured cycle is attributed exactly once.
        assert_eq!(profile.total(), stalled.stats.cycles);
        // The profiler must not perturb the simulation: stripping the
        // profile leaves a bit-identical result.
        let mut stripped = stalled.clone();
        stripped.stalls = None;
        assert_eq!(plain, stripped);
        assert!(plain.stalls.is_none(), "profiling is opt-in");
    }

    #[test]
    fn traced_runahead_events_match_interval_count() {
        let cfg = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(1_000)
            .instructions(6_000)
            .build();
        let (result, sink) = Simulation::run_traced(&cfg);
        assert!(
            result.stats.runahead_intervals > 0,
            "mcf/RAR must trigger runahead"
        );
        let enters = sink
            .iter()
            .filter(|e| matches!(e, rar_trace::TraceEvent::RunaheadEnter { .. }))
            .count() as u64;
        let exits = sink
            .iter()
            .filter(|e| matches!(e, rar_trace::TraceEvent::RunaheadExit { .. }))
            .count() as u64;
        assert_eq!(enters, result.stats.runahead_intervals);
        // The run may end inside a runahead interval, so exits trail by at
        // most one.
        assert!(
            exits == enters || exits + 1 == enters,
            "enters={enters} exits={exits}"
        );
    }
}
