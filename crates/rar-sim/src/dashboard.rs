//! The sweep dashboard and the CI perf gate behind
//! `rar-experiments report`.
//!
//! Consumes the artifacts a sweep leaves behind — run manifests
//! ([`SweepSession::manifest_json`](crate::SweepSession::manifest_json))
//! and `BENCH_*.json` throughput reports
//! ([`bench_json_from`](crate::sweep::bench_json_from)) — and renders one
//! self-contained HTML page: no external scripts, stylesheets or fonts,
//! so the file can be archived as a CI artifact and opened anywhere. Bars
//! are plain styled `<div>`s.
//!
//! The same inputs drive [`check_bench`], the regression gate CI runs
//! with `report --check`: manifests must validate against the schema, the
//! gated bench must meet the cache-hit-rate floor (a warm CI sweep
//! replays ≥90% of its cells), and throughput must not regress past the
//! allowed slowdown versus a baseline bench.

use rar_core::StallBucket;
use rar_telemetry::manifest::{field_f64, field_str, field_u64, raw_value};
use rar_telemetry::{validate_manifest, Phase};
use std::fmt::Write as _;

/// Reads the value of counter `name` out of a telemetry JSON export or a
/// manifest embedding one (`"<name>": {"kind": "counter", "value": N}`).
#[must_use]
pub fn counter_value(text: &str, name: &str) -> Option<u64> {
    let at = text.find(&format!("\"{name}\":"))?;
    let rest = &text[at..];
    let vat = rest.find("\"value\":")?;
    let digits: String = rest[vat + "\"value\":".len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Escapes text for embedding in HTML.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn human_nanos(nanos: u64) -> String {
    let secs = nanos as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

/// One labeled horizontal bar (`share` in 0..=1).
fn bar(out: &mut String, label: &str, text: &str, share: f64) {
    let pct = (share.clamp(0.0, 1.0) * 100.0).round();
    let _ = writeln!(
        out,
        "<div class=\"row\"><span class=\"lbl\">{}</span>\
         <span class=\"track\"><span class=\"fill\" style=\"width:{pct}%\"></span></span>\
         <span class=\"val\">{}</span></div>",
        esc(label),
        esc(text),
    );
}

/// Renders the manifest summary + self-profile section for one manifest.
fn manifest_section(out: &mut String, name: &str, text: &str) {
    let _ = writeln!(out, "<section><h2>{}</h2>", esc(name));
    let tool = field_str(text, "tool").unwrap_or_else(|| "?".into());
    let version = field_str(text, "version").unwrap_or_else(|| "?".into());
    let _ = writeln!(
        out,
        "<p class=\"meta\">{} v{}</p>",
        esc(&tool),
        esc(&version)
    );
    let _ = writeln!(out, "<table>");
    for key in [
        "cells_completed",
        "cells_simulated",
        "cells_cached",
        "cells_rejected",
        "cells_failed",
        "threads",
    ] {
        if let Some(v) = field_u64(text, key) {
            let _ = writeln!(out, "<tr><td>{key}</td><td>{v}</td></tr>");
        }
    }
    for (key, unit) in [
        ("cache_hit_rate", "%"),
        ("runs_per_second", " runs/s"),
        ("wall_seconds", " s"),
    ] {
        if let Some(v) = field_f64(text, key) {
            let shown = if key == "cache_hit_rate" {
                v * 100.0
            } else {
                v
            };
            let _ = writeln!(out, "<tr><td>{key}</td><td>{shown:.2}{unit}</td></tr>");
        }
    }
    // Mean AVF tiers over the session's completed cells (present when
    // the session completed at least one cell).
    for key in [
        "avf_unrefined_mean",
        "avf_refined_mean",
        "avf_bit_refined_mean",
    ] {
        if let Some(v) = field_f64(text, key) {
            let _ = writeln!(out, "<tr><td>{key}</td><td>{v:.6}</td></tr>");
        }
    }
    // Cycle-accounting headline (present when the sweep ran with the
    // stall profiler on): the quiescent fraction bounds what an
    // event-driven cycle loop could skip.
    if let Some(v) = field_f64(text, "quiescent_fraction") {
        let _ = writeln!(
            out,
            "<tr><td>quiescent_fraction</td><td>{:.2}%</td></tr>",
            v * 100.0
        );
    }
    if let Some(v) = field_u64(text, "stall_total_cycles") {
        let _ = writeln!(out, "<tr><td>stall_total_cycles</td><td>{v}</td></tr>");
    }
    let _ = writeln!(out, "</table>");

    // Stall-taxonomy bars: where the guest cycles went, by bucket. Only
    // rendered when the sweep ran with `--stalls` (the counters exist).
    let stall_rows: Vec<(&str, u64)> = StallBucket::ALL
        .iter()
        .filter_map(|b| {
            let cycles = counter_value(text, &format!("rar_stall_{}_cycles_total", b.name()))?;
            Some((b.name(), cycles))
        })
        .collect();
    let stall_total: u64 = stall_rows.iter().map(|(_, n)| n).sum();
    if stall_total > 0 {
        let _ = writeln!(out, "<h3>Stall breakdown (guest cycles by cause)</h3>");
        let mut sorted = stall_rows;
        sorted.sort_by_key(|&(_, cycles)| std::cmp::Reverse(cycles));
        for (bucket, cycles) in sorted {
            bar(
                out,
                bucket,
                &format!(
                    "{cycles} ({:.1}%)",
                    cycles as f64 / stall_total as f64 * 100.0
                ),
                cycles as f64 / stall_total as f64,
            );
        }
    }

    // Self-profile bars: where the host wall-clock went, by phase. Only
    // rendered when the run was profiled (the counters exist).
    let phases: Vec<(&str, u64)> = Phase::ALL
        .iter()
        .filter_map(|p| {
            let nanos = counter_value(text, &format!("rar_profile_{}_nanos_total", p.name()))?;
            Some((p.name(), nanos))
        })
        .collect();
    let total: u64 = phases.iter().map(|(_, n)| n).sum();
    if total > 0 {
        let _ = writeln!(out, "<h3>Self-profile (host wall-clock by phase)</h3>");
        let mut sorted = phases;
        sorted.sort_by_key(|&(_, nanos)| std::cmp::Reverse(nanos));
        for (phase, nanos) in sorted {
            bar(
                out,
                phase,
                &format!(
                    "{} ({:.1}%)",
                    human_nanos(nanos),
                    nanos as f64 / total as f64 * 100.0
                ),
                nanos as f64 / total as f64,
            );
        }
    } else {
        let _ = writeln!(
            out,
            "<p class=\"meta\">not profiled (run with --profile for phase timings)</p>"
        );
    }
    let _ = writeln!(out, "</section>");
}

/// Renders the `BENCH_*.json` comparison table.
fn bench_section(out: &mut String, benches: &[(String, String)]) {
    let _ = writeln!(out, "<section><h2>Throughput reports</h2><table>");
    let _ = writeln!(
        out,
        "<tr><th>file</th><th>completed</th><th>simulated</th><th>cached</th>\
         <th>hit rate</th><th>runs/s</th><th>wall</th><th>threads</th></tr>"
    );
    for (name, text) in benches {
        let u = |k| field_u64(text, k).unwrap_or(0);
        let f = |k| field_f64(text, k).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{:.0}%</td><td>{:.1}</td><td>{:.2}s</td><td>{}</td></tr>",
            esc(name),
            u("completed"),
            u("simulated"),
            u("cache_hits"),
            f("cache_hit_rate") * 100.0,
            f("runs_per_second"),
            f("wall_seconds"),
            u("threads"),
        );
    }
    let _ = writeln!(out, "</table></section>");
}

/// Renders the self-contained HTML dashboard from `(filename, contents)`
/// pairs of manifests and bench reports.
#[must_use]
pub fn render_dashboard(manifests: &[(String, String)], benches: &[(String, String)]) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>rar-sim sweep dashboard</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;color:#222}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;border-bottom:1px solid #ddd}\n\
         h3{font-size:1rem} .meta{color:#666}\n\
         table{border-collapse:collapse;margin:.5rem 0}\n\
         td,th{border:1px solid #ddd;padding:.2rem .6rem;text-align:left}\n\
         .row{display:flex;align-items:center;gap:.5rem;margin:.15rem 0}\n\
         .lbl{width:8rem;text-align:right;color:#444}\n\
         .track{flex:1;background:#eee;height:.9rem;border-radius:.2rem;display:inline-block}\n\
         .fill{background:#4a7dbd;height:100%;display:block;border-radius:.2rem}\n\
         .val{width:10rem;color:#444}\n\
         </style></head><body>\n<h1>rar-sim sweep dashboard</h1>\n",
    );
    if manifests.is_empty() && benches.is_empty() {
        out.push_str("<p class=\"meta\">no manifests or bench reports found</p>\n");
    }
    for (name, text) in manifests {
        manifest_section(&mut out, name, text);
    }
    if !benches.is_empty() {
        bench_section(&mut out, benches);
    }
    out.push_str("</body></html>\n");
    out
}

/// Default allowed throughput slowdown versus the baseline (fraction).
/// Generous on purpose: CI machines are noisy, and the gate exists to
/// catch order-of-magnitude regressions (a lost cache, accidental
/// serialization), not 5% jitter.
pub const DEFAULT_MAX_SLOWDOWN: f64 = 0.5;

/// The CI gate. Returns the list of failures (empty ⇒ pass):
///
/// * every manifest must satisfy [`validate_manifest`];
/// * if `min_hit_rate` is set, the gated bench's `cache_hit_rate` must
///   meet it (the warm-sweep criterion);
/// * if `baseline` is given, the gated bench's `runs_per_second` must not
///   fall below `baseline × (1 − max_slowdown)`.
#[must_use]
pub fn check_bench(
    manifests: &[(String, String)],
    bench: Option<&str>,
    baseline: Option<&str>,
    min_hit_rate: Option<f64>,
    max_slowdown: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for (name, text) in manifests {
        for p in validate_manifest(text) {
            problems.push(format!("{name}: {p}"));
        }
    }
    let Some(bench) = bench else {
        if min_hit_rate.is_some() || baseline.is_some() {
            problems.push("no bench report to gate on".to_owned());
        }
        return problems;
    };
    if raw_value(bench, "schema").is_none() {
        problems.push("bench report has no schema tag".to_owned());
    }
    if let Some(floor) = min_hit_rate {
        match field_f64(bench, "cache_hit_rate") {
            Some(rate) if rate >= floor => {}
            Some(rate) => problems.push(format!(
                "cache hit rate {:.1}% below the {:.1}% floor",
                rate * 100.0,
                floor * 100.0
            )),
            None => problems.push("bench report has no cache_hit_rate".to_owned()),
        }
    }
    if let Some(base) = baseline {
        let current = field_f64(bench, "runs_per_second").unwrap_or(0.0);
        let reference = field_f64(base, "runs_per_second").unwrap_or(0.0);
        let floor = reference * (1.0 - max_slowdown.clamp(0.0, 1.0));
        if reference > 0.0 && current < floor {
            problems.push(format!(
                "throughput regression: {current:.1} runs/s vs baseline {reference:.1} \
                 (floor {floor:.1} at {:.0}% allowed slowdown)",
                max_slowdown * 100.0
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{bench_json_from, SweepSession, SweepStats};
    use crate::SimConfig;
    use rar_core::Technique;

    fn sample_stats(rps_wall: f64, hits: u64, simulated: u64) -> SweepStats {
        SweepStats {
            simulated,
            cache_hits: hits,
            rejected: 0,
            failed: 0,
            trace_memo_hits: 0,
            trace_memo_misses: simulated.min(1),
            refinement_memo_hits: 0,
            refinement_memo_misses: simulated.min(1),
            wall_seconds: rps_wall,
            threads: 2,
        }
    }

    fn profiled_manifest() -> (String, String) {
        let session = SweepSession::new().threads(2).into_profiled();
        let cfg = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(200)
            .instructions(1_200)
            .build();
        let _ = session.run_all(std::slice::from_ref(&cfg));
        (
            "manifest.json".to_owned(),
            session.manifest_json("rar-experiments", "0.1.0"),
        )
    }

    #[test]
    fn counter_values_scan_out_of_manifests() {
        let (_, manifest) = profiled_manifest();
        assert_eq!(
            counter_value(&manifest, "rar_sweep_cells_simulated_total"),
            Some(1)
        );
        assert!(counter_value(&manifest, "rar_profile_core_sim_nanos_total").is_some_and(|n| n > 0));
        assert_eq!(counter_value(&manifest, "no_such_metric"), None);
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let (name, manifest) = profiled_manifest();
        let bench = (
            "BENCH_sweep.json".to_owned(),
            bench_json_from(&sample_stats(2.0, 18, 2)),
        );
        let html = render_dashboard(&[(name, manifest)], &[bench]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Self-profile"));
        assert!(html.contains("core_sim"));
        assert!(html.contains("BENCH_sweep.json"));
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "<script", "<link", "@import"] {
            assert!(!html.contains(needle), "{needle} found in dashboard");
        }
    }

    #[test]
    fn dashboard_renders_stall_breakdown_for_profiled_sweeps() {
        let session = SweepSession::new().stall_profiling(true);
        let cfg = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(200)
            .instructions(1_200)
            .build();
        let _ = session.run_all(std::slice::from_ref(&cfg));
        let manifest = session.manifest_json("rar-experiments", "0.1.0");
        let html = render_dashboard(&[("m.json".to_owned(), manifest)], &[]);
        assert!(html.contains("Stall breakdown"), "{html}");
        assert!(html.contains("quiescent_fraction"));
        assert!(html.contains("dram_wait") || html.contains("retiring"));
        // An unprofiled manifest renders no stall section.
        let (name, plain) = profiled_manifest();
        let html = render_dashboard(&[(name, plain)], &[]);
        assert!(!html.contains("Stall breakdown"));
    }

    #[test]
    fn dashboard_escapes_untrusted_file_names() {
        let html = render_dashboard(&[("<img src=x>.json".to_owned(), "{}".to_owned())], &[]);
        assert!(!html.contains("<img"));
        assert!(html.contains("&lt;img"));
    }

    #[test]
    fn gate_passes_a_warm_sweep_and_fails_a_cold_one() {
        let warm = bench_json_from(&sample_stats(1.0, 19, 1));
        let cold = bench_json_from(&sample_stats(1.0, 0, 20));
        assert_eq!(
            check_bench(&[], Some(&warm), None, Some(0.9), DEFAULT_MAX_SLOWDOWN),
            Vec::<String>::new()
        );
        let problems = check_bench(&[], Some(&cold), None, Some(0.9), DEFAULT_MAX_SLOWDOWN);
        assert!(
            problems.iter().any(|p| p.contains("hit rate")),
            "{problems:?}"
        );
    }

    #[test]
    fn gate_catches_throughput_regressions_only_past_the_floor() {
        let fast = bench_json_from(&sample_stats(1.0, 0, 100)); // 100 runs/s
        let ok = bench_json_from(&sample_stats(1.0, 0, 60)); // 60 >= 50
        let slow = bench_json_from(&sample_stats(1.0, 0, 40)); // 40 < 50
        assert_eq!(
            check_bench(&[], Some(&ok), Some(&fast), None, DEFAULT_MAX_SLOWDOWN),
            Vec::<String>::new()
        );
        let problems = check_bench(&[], Some(&slow), Some(&fast), None, DEFAULT_MAX_SLOWDOWN);
        assert!(
            problems.iter().any(|p| p.contains("regression")),
            "{problems:?}"
        );
    }

    #[test]
    fn gate_reports_invalid_manifests_with_their_file_name() {
        let (_, manifest) = profiled_manifest();
        let broken = manifest.replace("rar-manifest-v1", "rar-manifest-v0");
        let problems = check_bench(
            &[("runs/m.json".to_owned(), broken)],
            None,
            None,
            None,
            DEFAULT_MAX_SLOWDOWN,
        );
        assert!(
            problems.iter().any(|p| p.starts_with("runs/m.json:")),
            "{problems:?}"
        );
    }
}
