//! Per-run simulation configuration.

use rar_core::{CoreConfig, Technique};
use rar_mem::MemConfig;
use rar_verify::ConfigError;

/// Everything needed to reproduce one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Benchmark model name (see `rar-workloads`).
    pub workload: String,
    /// Microarchitecture technique under test.
    pub technique: Technique,
    /// Core parameters.
    pub core: CoreConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Warm-up instructions (caches/predictors/SST train; not measured).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Trace-capture settings (only consulted by
    /// [`Simulation::run_traced`](crate::Simulation::run_traced); plain
    /// [`Simulation::run`](crate::Simulation::run) always uses the
    /// zero-overhead null sink).
    pub trace: TraceSettings,
}

/// How much event history to keep and how often to sample occupancy when a
/// run is traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSettings {
    /// Ring-buffer capacity in events (0 = unbounded). The ring keeps the
    /// most recent events; older ones are dropped and counted.
    pub capacity: usize,
    /// Emit one occupancy/ACE sample every this many cycles (0 = never).
    pub sample_interval: u64,
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings {
            capacity: 1 << 20,
            sample_interval: 1_000,
        }
    }
}

impl SimConfig {
    /// Starts a builder with paper-baseline core/memory and sensible
    /// defaults (mcf, OoO, 50k+5k instructions, seed 1).
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Validates the whole run description: the workload name must be a
    /// known model, the measured budget nonzero, and the nested core and
    /// memory configurations must pass their own validators.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first inconsistent
    /// parameter, so sweep drivers can reject a configuration before
    /// simulating anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if rar_workloads::workload(&self.workload).is_none() {
            return Err(ConfigError::sim(
                "workload",
                format!(
                    "unknown workload '{}' (known: {})",
                    self.workload,
                    rar_workloads::all_benchmarks().join(", ")
                ),
            ));
        }
        if self.instructions == 0 {
            return Err(ConfigError::sim(
                "instructions",
                "measured instruction budget must be nonzero",
            ));
        }
        self.core.validate()?;
        self.mem.validate()?;
        Ok(())
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            cfg: SimConfig {
                workload: "mcf".to_owned(),
                technique: Technique::Ooo,
                core: CoreConfig::baseline(),
                mem: MemConfig::baseline(),
                warmup: 5_000,
                instructions: 50_000,
                seed: 1,
                trace: TraceSettings::default(),
            },
        }
    }
}

impl SimConfigBuilder {
    /// Selects the benchmark model by name.
    pub fn workload(&mut self, name: &str) -> &mut Self {
        self.cfg.workload = name.to_owned();
        self
    }

    /// Selects the technique under test.
    pub fn technique(&mut self, technique: Technique) -> &mut Self {
        self.cfg.technique = technique;
        self
    }

    /// Overrides the core configuration.
    pub fn core(&mut self, core: CoreConfig) -> &mut Self {
        self.cfg.core = core;
        self
    }

    /// Overrides the memory configuration.
    pub fn mem(&mut self, mem: MemConfig) -> &mut Self {
        self.cfg.mem = mem;
        self
    }

    /// Sets the measured instruction budget.
    pub fn instructions(&mut self, n: u64) -> &mut Self {
        self.cfg.instructions = n;
        self
    }

    /// Sets the warm-up instruction budget.
    pub fn warmup(&mut self, n: u64) -> &mut Self {
        self.cfg.warmup = n;
        self
    }

    /// Sets the workload seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the trace-capture settings.
    pub fn trace(&mut self, trace: TraceSettings) -> &mut Self {
        self.cfg.trace = trace;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(&self) -> SimConfig {
        self.cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let cfg = SimConfig::builder()
            .workload("lbm")
            .technique(Technique::Pre)
            .instructions(1_234)
            .warmup(99)
            .seed(7)
            .build();
        assert_eq!(cfg.workload, "lbm");
        assert_eq!(cfg.technique, Technique::Pre);
        assert_eq!(cfg.instructions, 1_234);
        assert_eq!(cfg.warmup, 99);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn defaults_are_paper_baseline() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.core, CoreConfig::baseline());
        assert_eq!(cfg.mem, MemConfig::baseline());
        assert_eq!(cfg.trace, TraceSettings::default());
    }

    #[test]
    fn validate_accepts_defaults_and_names_bad_fields() {
        assert_eq!(SimConfig::builder().build().validate(), Ok(()));

        let cfg = SimConfig::builder().workload("nope").build();
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field(), "workload");
        assert!(err.to_string().contains("unknown workload 'nope'"));

        let cfg = SimConfig::builder().instructions(0).build();
        assert_eq!(cfg.validate().unwrap_err().field(), "instructions");

        // Nested validators are consulted too.
        let mut core = rar_core::CoreConfig::baseline();
        core.rob_size = 0;
        let cfg = SimConfig::builder().core(core).build();
        assert_eq!(cfg.validate().unwrap_err().field(), "rob_size");

        let mut mem = MemConfig::baseline();
        mem.mshrs = 0;
        let cfg = SimConfig::builder().mem(mem).build();
        assert_eq!(cfg.validate().unwrap_err().field(), "mshrs");
    }

    #[test]
    fn trace_settings_are_configurable() {
        let cfg = SimConfig::builder()
            .trace(TraceSettings {
                capacity: 64,
                sample_interval: 10,
            })
            .build();
        assert_eq!(cfg.trace.capacity, 64);
        assert_eq!(cfg.trace.sample_interval, 10);
    }
}
