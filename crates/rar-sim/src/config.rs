//! Per-run simulation configuration.

use rar_core::{CoreConfig, Technique};
use rar_mem::MemConfig;
use rar_verify::ConfigError;

/// Everything needed to reproduce one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Benchmark model name (see `rar-workloads`).
    pub workload: String,
    /// Microarchitecture technique under test.
    pub technique: Technique,
    /// Core parameters.
    pub core: CoreConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Warm-up instructions (caches/predictors/SST train; not measured).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Trace-capture settings (only consulted by
    /// [`Simulation::run_traced`](crate::Simulation::run_traced); plain
    /// [`Simulation::run`](crate::Simulation::run) always uses the
    /// zero-overhead null sink).
    pub trace: TraceSettings,
}

/// How much event history to keep and how often to sample occupancy when a
/// run is traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSettings {
    /// Ring-buffer capacity in events (0 = unbounded). The ring keeps the
    /// most recent events; older ones are dropped and counted.
    pub capacity: usize,
    /// Emit one occupancy/ACE sample every this many cycles (0 = never).
    pub sample_interval: u64,
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings {
            capacity: 1 << 20,
            sample_interval: 1_000,
        }
    }
}

impl SimConfig {
    /// Starts a builder with paper-baseline core/memory and sensible
    /// defaults (mcf, OoO, 50k+5k instructions, seed 1).
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Validates the whole run description: the workload name must be a
    /// known model, the measured budget nonzero, and the nested core and
    /// memory configurations must pass their own validators.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first inconsistent
    /// parameter, so sweep drivers can reject a configuration before
    /// simulating anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if rar_workloads::workload(&self.workload).is_none() {
            return Err(ConfigError::sim(
                "workload",
                format!(
                    "unknown workload '{}' (known: {})",
                    self.workload,
                    rar_workloads::all_benchmarks().join(", ")
                ),
            ));
        }
        if self.instructions == 0 {
            return Err(ConfigError::sim(
                "instructions",
                "measured instruction budget must be nonzero",
            ));
        }
        self.core.validate()?;
        self.mem.validate()?;
        Ok(())
    }

    /// The canonical serialized form of this configuration: a versioned,
    /// line-oriented key=value text that lists every result-affecting
    /// field in a fixed order, regardless of how the value was built.
    ///
    /// Two configurations have equal canonical forms iff they describe
    /// the same simulation, so the form (via [`SimConfig::fingerprint`])
    /// is the key of the on-disk result cache and is embedded in JSON
    /// exports. [`TraceSettings`] are deliberately excluded: trace
    /// capture never perturbs the measured statistics (a tested
    /// invariant), so two runs differing only in trace settings share
    /// one cache entry.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("rar-simconfig-v1\n");
        out.push_str("workload=");
        out.push_str(&self.workload);
        out.push('\n');
        out.push_str("technique=");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}\n", self.technique));
        self.core.write_canonical(&mut out);
        self.mem.write_canonical(&mut out);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "warmup={}\ninstructions={}\nseed={}\n",
                self.warmup, self.instructions, self.seed
            ),
        );
        out
    }

    /// A stable 64-bit fingerprint of [`SimConfig::canonical`], rendered
    /// as 16 lowercase hex digits (FNV-1a; dependency-free and stable
    /// across platforms and releases). Equal configurations always agree;
    /// distinct configurations collide with probability ~2^-64, which the
    /// result cache additionally guards against by storing the
    /// fingerprint inside the entry and re-checking it on load.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }
}

/// 64-bit FNV-1a over `bytes` — a small, well-specified hash whose value
/// is part of the cache-file contract (do not swap the function without
/// bumping the canonical-form version line).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            cfg: SimConfig {
                workload: "mcf".to_owned(),
                technique: Technique::Ooo,
                core: CoreConfig::baseline(),
                mem: MemConfig::baseline(),
                warmup: 5_000,
                instructions: 50_000,
                seed: 1,
                trace: TraceSettings::default(),
            },
        }
    }
}

impl SimConfigBuilder {
    /// Selects the benchmark model by name.
    pub fn workload(&mut self, name: &str) -> &mut Self {
        self.cfg.workload = name.to_owned();
        self
    }

    /// Selects the technique under test.
    pub fn technique(&mut self, technique: Technique) -> &mut Self {
        self.cfg.technique = technique;
        self
    }

    /// Overrides the core configuration.
    pub fn core(&mut self, core: CoreConfig) -> &mut Self {
        self.cfg.core = core;
        self
    }

    /// Overrides the memory configuration.
    pub fn mem(&mut self, mem: MemConfig) -> &mut Self {
        self.cfg.mem = mem;
        self
    }

    /// Sets the measured instruction budget.
    pub fn instructions(&mut self, n: u64) -> &mut Self {
        self.cfg.instructions = n;
        self
    }

    /// Sets the warm-up instruction budget.
    pub fn warmup(&mut self, n: u64) -> &mut Self {
        self.cfg.warmup = n;
        self
    }

    /// Sets the workload seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the trace-capture settings.
    pub fn trace(&mut self, trace: TraceSettings) -> &mut Self {
        self.cfg.trace = trace;
        self
    }

    /// Finalizes the configuration.
    #[must_use]
    pub fn build(&self) -> SimConfig {
        self.cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let cfg = SimConfig::builder()
            .workload("lbm")
            .technique(Technique::Pre)
            .instructions(1_234)
            .warmup(99)
            .seed(7)
            .build();
        assert_eq!(cfg.workload, "lbm");
        assert_eq!(cfg.technique, Technique::Pre);
        assert_eq!(cfg.instructions, 1_234);
        assert_eq!(cfg.warmup, 99);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn defaults_are_paper_baseline() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.core, CoreConfig::baseline());
        assert_eq!(cfg.mem, MemConfig::baseline());
        assert_eq!(cfg.trace, TraceSettings::default());
    }

    #[test]
    fn validate_accepts_defaults_and_names_bad_fields() {
        assert_eq!(SimConfig::builder().build().validate(), Ok(()));

        let cfg = SimConfig::builder().workload("nope").build();
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field(), "workload");
        assert!(err.to_string().contains("unknown workload 'nope'"));

        let cfg = SimConfig::builder().instructions(0).build();
        assert_eq!(cfg.validate().unwrap_err().field(), "instructions");

        // Nested validators are consulted too.
        let mut core = rar_core::CoreConfig::baseline();
        core.rob_size = 0;
        let cfg = SimConfig::builder().core(core).build();
        assert_eq!(cfg.validate().unwrap_err().field(), "rob_size");

        let mut mem = MemConfig::baseline();
        mem.mshrs = 0;
        let cfg = SimConfig::builder().mem(mem).build();
        assert_eq!(cfg.validate().unwrap_err().field(), "mshrs");
    }

    #[test]
    fn fingerprint_is_independent_of_builder_field_order() {
        // The canonical form fixes the field order, so the *construction*
        // order (and any future struct-literal reordering) cannot change
        // the fingerprint.
        let a = SimConfig::builder()
            .workload("lbm")
            .technique(Technique::Pre)
            .instructions(1_234)
            .warmup(99)
            .seed(7)
            .build();
        let b = SimConfig::builder()
            .seed(7)
            .warmup(99)
            .instructions(1_234)
            .technique(Technique::Pre)
            .workload("lbm")
            .build();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_pins_the_canonical_form() {
        // Pinned against the v1 canonical form of the default (mcf/OoO,
        // paper-baseline core and memory) configuration. If this value
        // changes, the canonical form changed: every existing cache entry
        // is invalidated, and the `rar-simconfig-vN` version line must be
        // bumped so the change is deliberate and documented.
        let cfg = SimConfig::builder().build();
        assert!(cfg
            .canonical()
            .starts_with("rar-simconfig-v1\nworkload=mcf\ntechnique=OoO\n"));
        assert_eq!(
            cfg.fingerprint(),
            SimConfig::builder().build().fingerprint()
        );
        assert_eq!(cfg.fingerprint().len(), 16);
        assert!(cfg.fingerprint().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fingerprint_distinguishes_every_result_affecting_field() {
        let base = SimConfig::builder().build();
        let variants = [
            SimConfig::builder().workload("lbm").build(),
            SimConfig::builder().technique(Technique::Rar).build(),
            SimConfig::builder().instructions(4_321).build(),
            SimConfig::builder().warmup(1).build(),
            SimConfig::builder().seed(99).build(),
            SimConfig::builder().core(CoreConfig::core1()).build(),
            SimConfig::builder()
                .mem(MemConfig::with_prefetch(rar_mem::PrefetchPlacement::L3))
                .build(),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{}", v.canonical());
        }
    }

    #[test]
    fn trace_settings_do_not_affect_the_fingerprint() {
        // Tracing never perturbs measured statistics (tested in run.rs),
        // so traced and untraced runs of one configuration share a cache
        // entry by design.
        let plain = SimConfig::builder().build();
        let traced = SimConfig::builder()
            .trace(TraceSettings {
                capacity: 64,
                sample_interval: 10,
            })
            .build();
        assert_eq!(plain.fingerprint(), traced.fingerprint());
    }

    #[test]
    fn trace_settings_are_configurable() {
        let cfg = SimConfig::builder()
            .trace(TraceSettings {
                capacity: 64,
                sample_interval: 10,
            })
            .build();
        assert_eq!(cfg.trace.capacity, 64);
        assert_eq!(cfg.trace.sample_interval, 10);
    }
}
