//! First-order energy accounting.
//!
//! The paper's introduction frames prior reliability techniques as "too
//! high overhead in terms of chip area, energy consumption and/or
//! performance", and PRE's lean slice execution exists precisely to keep
//! runahead's energy cost down (versus traditional runahead, which
//! re-executes everything). This module quantifies that axis with a
//! McPAT-flavoured event-energy model: each pipeline/memory event is
//! charged a fixed energy, plus a static power term integrated over the
//! run. Absolute joules are not the point — *relative* energy per
//! instruction across techniques is.
//!
//! Event energies (rough 22 nm-class values, in picojoules):
//!
//! | event | pJ | rationale |
//! |---|---|---|
//! | dispatch (rename + ROB/IQ write) | 8 | multi-ported RAM writes |
//! | issue + execute (ALU-class) | 10 | wakeup/select + FU |
//! | L1 access | 15 | 32 KB SRAM read |
//! | L2 access | 30 | 256 KB SRAM |
//! | L3 access | 80 | 1 MB SRAM |
//! | DRAM line fetch | 1500 | ~20 pJ/bit × 64 B off-chip |
//! | branch prediction | 3 | 8 KB tables |
//! | commit | 4 | ROB read + ARF update |
//! | static | 500 pJ/cycle | ~1.3 W at 2.66 GHz |

use crate::run::SimResult;

/// Per-event energies in picojoules. See the module docs for sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Dispatch/rename energy per micro-op.
    pub dispatch_pj: f64,
    /// Issue+execute energy per micro-op (normal or runahead mode).
    pub execute_pj: f64,
    /// L1 (I or D) access.
    pub l1_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// L3 access.
    pub l3_pj: f64,
    /// Main-memory line transfer.
    pub dram_pj: f64,
    /// Branch prediction + update.
    pub branch_pj: f64,
    /// Commit (ROB read, architectural update).
    pub commit_pj: f64,
    /// Static/leakage energy per cycle.
    pub static_pj_per_cycle: f64,
}

impl EnergyModel {
    /// The default 22 nm-class model from the module table.
    #[must_use]
    pub const fn default_22nm() -> Self {
        EnergyModel {
            dispatch_pj: 8.0,
            execute_pj: 10.0,
            l1_pj: 15.0,
            l2_pj: 30.0,
            l3_pj: 80.0,
            dram_pj: 1500.0,
            branch_pj: 3.0,
            commit_pj: 4.0,
            static_pj_per_cycle: 500.0,
        }
    }

    /// Total energy of a finished run, in picojoules.
    #[must_use]
    pub fn total_pj(&self, r: &SimResult) -> f64 {
        let s = &r.stats;
        let m = &r.mem;
        let dynamic = s.dispatched as f64 * self.dispatch_pj
            + (s.issued + s.runahead_uops) as f64 * self.execute_pj
            + (m.l1d_hits + m.l1i_hits) as f64 * self.l1_pj
            + (m.l2_hits + m.l1i_misses) as f64 * self.l2_pj
            + m.l3_hits as f64 * self.l3_pj
            + (m.llc_misses + m.prefetches_issued) as f64 * self.dram_pj
            + r.predictor.predictions as f64 * self.branch_pj
            + s.committed as f64 * self.commit_pj;
        dynamic + s.cycles as f64 * self.static_pj_per_cycle
    }

    /// Energy per committed instruction, in picojoules.
    ///
    /// # Panics
    ///
    /// Panics if the run committed no instructions.
    #[must_use]
    pub fn energy_per_instruction_pj(&self, r: &SimResult) -> f64 {
        assert!(r.stats.committed > 0, "run committed no instructions");
        self.total_pj(r) / r.stats.committed as f64
    }

    /// Relative energy per instruction versus a baseline run.
    #[must_use]
    pub fn epi_vs(&self, r: &SimResult, baseline: &SimResult) -> f64 {
        self.energy_per_instruction_pj(r) / self.energy_per_instruction_pj(baseline)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::run::Simulation;
    use rar_core::Technique;

    fn run(technique: Technique) -> SimResult {
        Simulation::run(
            &SimConfig::builder()
                .workload("fotonik")
                .technique(technique)
                .warmup(2_000)
                .instructions(8_000)
                .build(),
        )
    }

    #[test]
    fn energy_is_positive_and_dominated_by_static_plus_dram() {
        let model = EnergyModel::default_22nm();
        let r = run(Technique::Ooo);
        let total = model.total_pj(&r);
        assert!(total > 0.0);
        let static_part = r.stats.cycles as f64 * model.static_pj_per_cycle;
        assert!(static_part < total, "dynamic energy must contribute");
    }

    #[test]
    fn faster_techniques_cut_static_energy() {
        // PRE commits the same work in fewer cycles: EPI should not
        // explode despite the extra runahead activity. Traditional
        // runahead (non-lean) burns more runahead execution energy than
        // PRE for the same workload.
        let model = EnergyModel::default_22nm();
        let base = run(Technique::Ooo);
        let pre = run(Technique::Pre);
        let tr = run(Technique::Tr);
        let pre_ratio = model.epi_vs(&pre, &base);
        let tr_ratio = model.epi_vs(&tr, &base);
        assert!(pre_ratio < 1.3, "PRE EPI ratio {pre_ratio}");
        assert!((0.5..1.5).contains(&tr_ratio), "TR EPI ratio {tr_ratio}");
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn epi_requires_progress() {
        let model = EnergyModel::default_22nm();
        let mut r = run(Technique::Ooo);
        r.stats.committed = 0;
        let _ = model.energy_per_instruction_pj(&r);
    }
}
