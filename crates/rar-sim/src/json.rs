//! Minimal JSON export of simulation results.
//!
//! The workspace deliberately avoids a JSON dependency; [`SimResult`]
//! contains only numbers, short identifiers, and fixed-shape arrays, so a
//! small hand-rolled writer suffices. Output is stable-keyed and suitable
//! for downstream analysis scripts (`jq`, pandas, ...).

use crate::config::SimConfig;
use crate::run::SimResult;
use rar_ace::Structure;
use rar_core::{StallBucket, OCC_BUCKETS, OCC_STRUCTURES};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    // Identifiers here never contain quotes/backslashes, but escape anyway.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes a [`SimResult`] to a pretty-printed JSON object.
///
/// # Examples
///
/// ```
/// use rar_sim::{SimConfig, Simulation};
/// let r = Simulation::run(
///     &SimConfig::builder().workload("leela").instructions(1_000).warmup(200).build(),
/// );
/// let json = rar_sim::json::to_json(&r);
/// assert!(json.contains("\"workload\": \"leela\""));
/// assert!(json.trim_start().starts_with('{'));
/// ```
#[must_use]
pub fn to_json(r: &SimResult) -> String {
    render(r, None)
}

/// Like [`to_json`], with a provenance header: the originating
/// configuration's stable [`SimConfig::fingerprint`] — the same key the
/// on-disk result cache files this run under — so an export can be traced
/// back to the exact configuration (and cache entry) that produced it.
#[must_use]
pub fn to_json_for(cfg: &SimConfig, r: &SimResult) -> String {
    render(r, Some(cfg))
}

fn render(r: &SimResult, cfg: Option<&SimConfig>) -> String {
    let s = &r.stats;
    let m = &r.mem;
    let mut out = String::with_capacity(2048);
    let _ = writeln!(out, "{{");
    if let Some(cfg) = cfg {
        let _ = writeln!(out, "  \"config_fingerprint\": \"{}\",", cfg.fingerprint());
    }
    let _ = writeln!(out, "  \"workload\": \"{}\",", esc(&r.workload));
    let _ = writeln!(out, "  \"technique\": \"{}\",", r.technique);
    let _ = writeln!(out, "  \"performance\": {{");
    let _ = writeln!(out, "    \"cycles\": {},", s.cycles);
    let _ = writeln!(out, "    \"committed\": {},", s.committed);
    let _ = writeln!(out, "    \"ipc\": {:.6},", r.ipc());
    let _ = writeln!(out, "    \"mlp\": {:.6},", r.mlp());
    let _ = writeln!(out, "    \"mpki\": {:.6}", r.mpki());
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"pipeline\": {{");
    let _ = writeln!(out, "    \"dispatched\": {},", s.dispatched);
    let _ = writeln!(out, "    \"issued\": {},", s.issued);
    let _ = writeln!(out, "    \"branch_mispredicts\": {},", s.branch_mispredicts);
    let _ = writeln!(out, "    \"mlp_sum\": {},", s.mlp_sum);
    let _ = writeln!(out, "    \"mlp_cycles\": {},", s.mlp_cycles);
    let _ = writeln!(out, "    \"rob_full_cycles\": {},", s.rob_full_cycles);
    let _ = writeln!(out, "    \"iq_full_cycles\": {},", s.iq_full_cycles);
    let _ = writeln!(
        out,
        "    \"head_blocked_cycles\": {}",
        s.head_blocked_cycles
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"reliability\": {{");
    let _ = writeln!(out, "    \"avf\": {:.8},", r.reliability.avf());
    let _ = writeln!(
        out,
        "    \"refined_avf\": {:.8},",
        r.reliability.refined_avf()
    );
    let _ = writeln!(
        out,
        "    \"bit_refined_avf\": {:.8},",
        r.reliability.bit_refined_avf()
    );
    let _ = writeln!(out, "    \"total_abc\": {},", r.reliability.total_abc());
    let _ = writeln!(
        out,
        "    \"refined_total_abc\": {},",
        r.reliability.refined_total_abc()
    );
    let _ = writeln!(
        out,
        "    \"bit_refined_total_abc\": {},",
        r.reliability.bit_refined_total_abc()
    );
    let _ = writeln!(
        out,
        "    \"capacity_bits\": {},",
        r.reliability.capacity_bits()
    );
    let _ = writeln!(out, "    \"abc_by_structure\": {{");
    for (i, st) in Structure::ALL.iter().enumerate() {
        let comma = if i + 1 < Structure::ALL.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "      \"{}\": {}{}", st, r.abc_by_structure[i], comma);
    }
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"abc_in_full_rob_stall\": {},", r.window_abc[0]);
    let _ = writeln!(out, "    \"abc_in_head_blocked\": {}", r.window_abc[1]);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"memory\": {{");
    let _ = writeln!(out, "    \"l1d_hits\": {},", m.l1d_hits);
    let _ = writeln!(out, "    \"l2_hits\": {},", m.l2_hits);
    let _ = writeln!(out, "    \"l3_hits\": {},", m.l3_hits);
    let _ = writeln!(out, "    \"llc_misses\": {},", m.llc_misses);
    let _ = writeln!(out, "    \"l1i_hits\": {},", m.l1i_hits);
    let _ = writeln!(out, "    \"l1i_misses\": {},", m.l1i_misses);
    let _ = writeln!(out, "    \"mshr_merges\": {},", m.mshr_merges);
    let _ = writeln!(out, "    \"mshr_stalls\": {},", m.mshr_stalls);
    let _ = writeln!(out, "    \"runahead_loads\": {},", m.runahead_loads);
    let _ = writeln!(out, "    \"prefetches_issued\": {}", m.prefetches_issued);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"branches\": {{");
    let _ = writeln!(out, "    \"predictions\": {},", r.predictor.predictions);
    let _ = writeln!(
        out,
        "    \"mispredictions\": {},",
        r.predictor.mispredictions
    );
    let _ = writeln!(out, "    \"btb_misses\": {}", r.predictor.btb_misses);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"runahead\": {{");
    let _ = writeln!(out, "    \"intervals\": {},", s.runahead_intervals);
    let _ = writeln!(out, "    \"cycles\": {},", s.runahead_cycles);
    let _ = writeln!(out, "    \"uops\": {},", s.runahead_uops);
    let _ = writeln!(out, "    \"prefetches\": {},", s.runahead_prefetches);
    let _ = writeln!(out, "    \"inv_loads\": {},", s.runahead_inv_loads);
    let _ = writeln!(out, "    \"flushes\": {},", s.flushes);
    let _ = writeln!(out, "    \"squashed\": {}", s.squashed);
    // Stall attribution is optional: present only for runs that enabled
    // the cycle-loop stall profiler, so plain exports stay byte-identical.
    if let Some(p) = &r.stalls {
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"stalls\": {{");
        // Exhaustive over StallBucket::ALL (checked by `cargo xtask lint`):
        // every taxonomy bucket reaches this exporter.
        for bucket in StallBucket::ALL {
            let _ = writeln!(out, "    \"{}\": {},", bucket.name(), p.count(bucket));
        }
        let _ = writeln!(
            out,
            "    \"quiescent_fraction\": {:.6},",
            p.quiescent_fraction()
        );
        let _ = writeln!(out, "    \"total_cycles\": {},", p.total());
        let _ = writeln!(out, "    \"occupancy\": {{");
        for (row, structure) in OCC_STRUCTURES.iter().enumerate() {
            let comma = if row + 1 < OCC_STRUCTURES.len() {
                ","
            } else {
                ""
            };
            let cells: Vec<String> = (0..OCC_BUCKETS)
                .map(|j| p.occupancy[row][j].to_string())
                .collect();
            let _ = writeln!(
                out,
                "      \"{}\": [{}]{}",
                structure,
                cells.join(", "),
                comma
            );
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    } else {
        let _ = writeln!(out, "  }}");
    }
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::run::Simulation;

    fn sample() -> SimResult {
        Simulation::run(
            &SimConfig::builder()
                .workload("milc")
                .instructions(1_500)
                .warmup(300)
                .build(),
        )
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = to_json(&sample());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing commas before closers.
        assert!(!json.contains(",\n  }"));
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn json_contains_all_sections() {
        let json = to_json(&sample());
        for key in [
            "performance",
            "pipeline",
            "reliability",
            "memory",
            "branches",
            "runahead",
            "ROB",
            "avf",
            "refined_avf",
            "bit_refined_avf",
            "refined_total_abc",
            "bit_refined_total_abc",
            "dispatched",
            "issued",
            "l1i_hits",
            "mshr_merges",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn every_core_and_mem_stat_field_is_exported() {
        // Mirrors the `cargo xtask lint` stat-coverage check: a counter that
        // is tallied but never reported is a bug (it has happened before).
        let json = to_json(&sample());
        for field in [
            "cycles",
            "committed",
            "branch_mispredicts",
            "mlp_sum",
            "mlp_cycles",
            "intervals",
            "uops",
            "prefetches",
            "inv_loads",
            "flushes",
            "squashed",
            "rob_full_cycles",
            "iq_full_cycles",
            "head_blocked_cycles",
            "dispatched",
            "issued",
            "l1d_hits",
            "l2_hits",
            "l3_hits",
            "llc_misses",
            "l1i_hits",
            "l1i_misses",
            "mshr_merges",
            "mshr_stalls",
            "prefetches_issued",
            "runahead_loads",
        ] {
            assert!(json.contains(&format!("\"{field}\"")), "missing {field}");
        }
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
    }

    #[test]
    fn stalls_section_appears_only_for_profiled_runs_and_conserves() {
        let cfg = SimConfig::builder()
            .workload("milc")
            .instructions(1_500)
            .warmup(300)
            .build();
        let plain = to_json(&Simulation::run(&cfg));
        assert!(!plain.contains("\"stalls\""));
        let stalled = Simulation::try_run_stalled(&cfg).expect("valid config");
        let json = to_json(&stalled);
        assert!(json.contains("\"stalls\": {"));
        for bucket in StallBucket::ALL {
            assert!(json.contains(&format!("\"{}\":", bucket.name())), "{json}");
        }
        assert!(json.contains("\"quiescent_fraction\":"));
        for structure in OCC_STRUCTURES {
            assert!(json.contains(&format!("\"{structure}\": [")), "{json}");
        }
        assert!(json.contains(&format!("\"total_cycles\": {}", stalled.stats.cycles)));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n    }") && !json.contains(",\n  }"));
    }

    #[test]
    fn to_json_for_embeds_the_config_fingerprint() {
        let cfg = SimConfig::builder()
            .workload("milc")
            .instructions(1_500)
            .warmup(300)
            .build();
        let r = Simulation::run(&cfg);
        let json = to_json_for(&cfg, &r);
        assert!(json.contains(&format!(
            "\"config_fingerprint\": \"{}\"",
            cfg.fingerprint()
        )));
        // The plain export stays fingerprint-free (and otherwise equal).
        let plain = to_json(&r);
        assert!(!plain.contains("config_fingerprint"));
        assert_eq!(json.lines().count(), plain.lines().count() + 1);
    }
}
