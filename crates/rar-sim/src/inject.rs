//! Fault-injection harness: real simulations under the `rar-inject`
//! campaign runner.
//!
//! The [`InjectionHarness`] binds one configuration to its golden run and
//! classifies every injected run against it:
//!
//! * **Golden run.** One fault-free execution establishes the commit
//!   digest (the architectural reference), the strike window in absolute
//!   core cycles, and the ACE/AVF estimates the campaign cross-validates.
//! * **Injected runs.** Each run re-executes the identical configuration
//!   with one [`PlannedFault`] armed. The outcome taxonomy follows the
//!   statistical fault-injection literature: a strike into an unoccupied
//!   slot is *vacant* (masked by construction — keeping vacancy in the
//!   denominator is exactly what makes measured vulnerability comparable
//!   to occupancy-weighted AVF); a run whose digest matches the golden
//!   one is *masked*; a digest mismatch is *SDC*; a run that exhausts the
//!   cycle-budget watchdog is a *hang DUE*, and a panic inside the model
//!   is caught by the campaign runner as a *panic DUE*.
//! * **Cross-validation.** [`InjectionHarness::ace_avf`] reports the
//!   ACE-estimated AVF (unrefined and liveness-refined) for each
//!   ACE-comparable target, so a campaign's per-structure vulnerability
//!   (with its 95% confidence interval, [`TargetTally::ci95`]) lands
//!   side-by-side with the analytical estimate it validates.

use crate::config::SimConfig;
use crate::run::{refinement_horizon, RunArtifacts};
use rar_ace::{Structure, StructureCapacities};
use rar_core::{Core, FaultLanding, NullSink, PlannedFault, RunVerdict, SiteSampler};
use rar_inject::{
    run_campaign, CampaignResult, CampaignSpec, Outcome, StratifiedTally, Stratum, TargetTally,
};
use rar_isa::TraceWindow;
use rar_telemetry::MetricsRegistry;
use rar_verify::ConfigError;
use rar_workloads::TracePrefix;
use std::time::{Duration, Instant};

/// Cycle-budget multiple (over the golden run's cycle count) granted to
/// every injected run before it is declared a hang DUE. Control strikes
/// can slow the machine (lost issue slots, re-fetched work) but a healthy
/// recovery never needs 4x the fault-free cycle count.
const HANG_BUDGET_FACTOR: u64 = 4;
/// Flat slack on top of the multiplicative hang budget, covering tiny
/// golden runs where a fixed recovery cost dominates.
const HANG_BUDGET_SLACK: u64 = 10_000;

/// One configuration bound to its golden (fault-free) run, ready to
/// execute and classify injected runs. Immutable once prepared, so one
/// harness serves every worker thread of a campaign concurrently.
#[derive(Debug)]
pub struct InjectionHarness {
    cfg: SimConfig,
    artifacts: RunArtifacts,
    golden_digest: u64,
    /// `Core::now` at the measurement boundary (end of warm-up).
    warmup_end: u64,
    /// `Core::now` when the golden run committed its budget.
    end_cycle: u64,
    unrefined_abc: [u128; Structure::COUNT],
    refined_abc: [u128; Structure::COUNT],
    capacities: StructureCapacities,
}

impl InjectionHarness {
    /// Validates `cfg` and executes the golden run.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if [`SimConfig::validate`] rejects the
    /// configuration; nothing is simulated in that case.
    pub fn prepare(cfg: &SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let artifacts = RunArtifacts::prepare(cfg);
        let mut core = fresh_core(cfg, &artifacts);
        if cfg.warmup > 0 {
            core.run_until_committed(cfg.warmup);
            core.reset_measurement();
        }
        let warmup_end = core.now();
        core.run_until_committed(cfg.instructions);
        Ok(InjectionHarness {
            cfg: cfg.clone(),
            golden_digest: core.commit_digest(),
            warmup_end,
            end_cycle: core.now(),
            unrefined_abc: core.ace().abc_by_structure(),
            refined_abc: core.ace().refined_abc_by_structure(),
            capacities: cfg.core.capacities(),
            artifacts: artifacts.clone(),
        })
    }

    /// The configuration this harness executes.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Cycles in the golden run's measured window.
    #[must_use]
    pub fn measured_cycles(&self) -> u64 {
        self.end_cycle - self.warmup_end
    }

    /// The campaign's site sampler: uniform over the ACE-comparable
    /// structures' bit capacity and over the golden run's measured cycle
    /// window, which is the weighting under which measured vulnerability
    /// estimates AVF.
    #[must_use]
    pub fn sampler(&self, seed: u64) -> SiteSampler {
        SiteSampler::ace(
            seed,
            (self.warmup_end + 1, self.end_cycle + 1),
            &self.cfg.core,
            &self.cfg.mem,
        )
    }

    /// Runs one injected execution and classifies it against the golden
    /// run. Deterministic in `fault`; safe to call from many threads.
    #[must_use]
    pub fn execute(&self, fault: &PlannedFault, deadline: Option<Instant>) -> Outcome {
        self.execute_stratified(fault, deadline).0
    }

    /// Like [`InjectionHarness::execute`], but additionally reports what
    /// the static bit-liveness analysis predicted about the struck bit
    /// (`Some(true)` = proven dead, `Some(false)` = conservatively live,
    /// `None` = no prediction — vacant slot, wrong-path writer, or a
    /// non-register target). The prediction is resolved at strike time
    /// inside the core, so it is available even for runs the watchdog
    /// kills.
    #[must_use]
    pub fn execute_stratified(
        &self,
        fault: &PlannedFault,
        deadline: Option<Instant>,
    ) -> (Outcome, Option<bool>) {
        let budget = self
            .end_cycle
            .saturating_mul(HANG_BUDGET_FACTOR)
            .saturating_add(HANG_BUDGET_SLACK);
        let mut core = fresh_core(&self.cfg, &self.artifacts);
        core.arm_fault(*fault);
        if self.cfg.warmup > 0 {
            match core.run_budgeted(self.cfg.warmup, budget, deadline) {
                RunVerdict::Completed => {}
                _ => return (Outcome::DueHang, core.fault_report().predicted_dead),
            }
            core.reset_measurement();
        }
        let remaining = budget.saturating_sub(core.now()).max(1);
        let outcome = match core.run_budgeted(self.cfg.instructions, remaining, deadline) {
            RunVerdict::Completed => match core.fault_report().landing {
                None | Some(FaultLanding::Vacant) => Outcome::Vacant,
                Some(_) if core.commit_digest() != self.golden_digest => Outcome::Sdc,
                Some(_) => Outcome::Masked,
            },
            _ => Outcome::DueHang,
        };
        (outcome, core.fault_report().predicted_dead)
    }

    /// A sampler restricted to the two register files — the structures
    /// the per-bit dead masks apply to and where every payload strike's
    /// liveness prediction is resolved. Validation campaigns use this for
    /// statistical power: every sample audits the bit-liveness analysis
    /// instead of mostly striking structures it makes no claim about.
    #[must_use]
    pub fn rf_sampler(&self, seed: u64) -> SiteSampler {
        SiteSampler::with_targets(
            seed,
            (self.warmup_end + 1, self.end_cycle + 1),
            &[rar_core::FaultTarget::RfInt, rar_core::FaultTarget::RfFp],
            &self.cfg.core,
            &self.cfg.mem,
        )
    }

    /// The golden run's ACE-estimated `(unrefined, refined)` AVF for an
    /// ACE-comparable target; `None` for metadata-only targets.
    #[must_use]
    pub fn ace_avf(&self, target: rar_core::FaultTarget) -> Option<(f64, f64)> {
        let s = target.structure()?;
        let bits = self.capacities.bits(s);
        let cycles = self.measured_cycles();
        Some((
            rar_ace::avf(self.unrefined_abc[s.index()], bits, cycles),
            rar_ace::avf(self.refined_abc[s.index()], bits, cycles),
        ))
    }

    /// Whether the injection-measured vulnerability for `target` brackets
    /// the ACE estimate: the refined AVF (a lower bound on true
    /// vulnerability by the liveness argument) should sit within or above
    /// the campaign's 95% confidence interval.
    #[must_use]
    pub fn refined_avf_consistent(
        &self,
        target: rar_core::FaultTarget,
        tally: &TargetTally,
    ) -> Option<bool> {
        let (_, refined) = self.ace_avf(target)?;
        let lo = tally.vulnerability() - tally.ci95();
        Some(refined >= lo)
    }
}

/// A fault-free core for `cfg`, identical to what the plain run path
/// builds (the golden and injected runs must share every artifact).
fn fresh_core(
    cfg: &SimConfig,
    artifacts: &RunArtifacts,
) -> Core<TraceWindow<rar_workloads::SharedTraceIter>, NullSink> {
    let trace = TraceWindow::new(TracePrefix::resume(&artifacts.prefix));
    let mut core = Core::with_sink(
        cfg.core.clone(),
        cfg.mem.clone(),
        cfg.technique,
        trace,
        NullSink,
    );
    core.set_ace_refinement(artifacts.refinement.clone());
    core
}

/// Runs a full campaign of `spec.samples` injections for `harness`,
/// sampling sites with `seed`. Each run is wall-bounded by `run_wall`
/// (on top of the cycle-budget hang watchdog); outcomes, retries,
/// journaling and resume follow [`run_campaign`].
///
/// # Errors
///
/// Propagates journal I/O errors from opening or resuming the journal
/// (mid-campaign journal failures degrade gracefully instead).
pub fn run_injection_campaign(
    harness: &InjectionHarness,
    spec: &CampaignSpec,
    seed: u64,
    run_wall: Option<Duration>,
    registry: Option<&MetricsRegistry>,
) -> std::io::Result<CampaignResult> {
    let sampler = harness.sampler(seed);
    run_campaign(
        spec,
        &sampler,
        |_k, fault| {
            let deadline = run_wall.map(|d| Instant::now() + d);
            Ok(harness.execute(fault, deadline))
        },
        registry,
    )
}

/// What a bit-liveness validation campaign produced: the ordinary
/// campaign result plus the per-prediction-stratum tallies the soundness
/// gate is judged on.
#[derive(Debug, Clone)]
pub struct BitliveValidation {
    /// The underlying campaign (per-target tallies, completion counts).
    pub result: CampaignResult,
    /// Outcomes stratified by the static analysis's per-strike prediction.
    pub strata: StratifiedTally,
}

impl BitliveValidation {
    /// Whether the predicted-dead stratum's measured vulnerability is
    /// statistically consistent with zero (the soundness gate), with at
    /// least one predicted-dead strike to judge — an empty stratum means
    /// the campaign had no statistical power and fails the gate.
    #[must_use]
    pub fn gate_passes(&self) -> bool {
        self.strata.get(Stratum::PredictedDead).attempts() > 0
            && self.strata.dead_stratum_consistent_with_zero()
    }
}

/// Runs a bit-liveness validation campaign: `spec.samples` injections
/// restricted to the register files ([`InjectionHarness::rf_sampler`]),
/// each outcome stratified by the static analysis's prediction for the
/// struck bit. Strata are commutative integer sums recorded alongside the
/// ordinary tally, so the result is thread-count invariant like every
/// other campaign.
///
/// Journaled resume replays outcomes but not predictions, so validation
/// campaigns must run un-journaled (`spec.journal = None`); a journaled
/// spec would under-count strata on resume. Injections the runner
/// classifies without reaching the executor (a panic caught by
/// `catch_unwind`) land in the campaign tally but not the strata.
///
/// # Errors
///
/// Propagates journal I/O errors exactly like [`run_injection_campaign`].
pub fn run_bitlive_validation(
    harness: &InjectionHarness,
    spec: &CampaignSpec,
    seed: u64,
    run_wall: Option<Duration>,
    registry: Option<&MetricsRegistry>,
) -> std::io::Result<BitliveValidation> {
    let sampler = harness.rf_sampler(seed);
    let strata = std::sync::Mutex::new(StratifiedTally::new());
    let result = run_campaign(
        spec,
        &sampler,
        |_k, fault| {
            let deadline = run_wall.map(|d| Instant::now() + d);
            let (outcome, predicted_dead) = harness.execute_stratified(fault, deadline);
            strata
                .lock()
                .expect("strata lock")
                .record(Stratum::from_prediction(predicted_dead), outcome);
            Ok(outcome)
        },
        registry,
    )?;
    let strata = strata.into_inner().expect("strata lock");
    Ok(BitliveValidation { result, strata })
}

/// The dead-value horizon used by the harness (re-exported for tests that
/// reason about golden-run determinism).
#[must_use]
pub fn harness_horizon(cfg: &SimConfig) -> usize {
    refinement_horizon(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_core::{FaultTarget, Technique};
    use rar_inject::{load_journal, Tally};
    use std::path::PathBuf;

    fn tiny_cfg(technique: Technique) -> SimConfig {
        SimConfig::builder()
            .workload("mcf")
            .technique(technique)
            .warmup(300)
            .instructions(2_000)
            .build()
    }

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("rar-inject-sim-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn golden_run_matches_plain_simulation() {
        let cfg = tiny_cfg(Technique::Rar);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let plain = crate::run::Simulation::run(&cfg);
        assert_eq!(h.measured_cycles(), plain.stats.cycles);
        assert_eq!(h.unrefined_abc, plain.abc_by_structure);
    }

    #[test]
    fn unarmed_equivalent_fault_is_vacant_or_masked_never_sdc() {
        // A strike after the run's end can never land: classification
        // must be Vacant (landing None), proving the digest comparison
        // baseline is stable.
        let cfg = tiny_cfg(Technique::Ooo);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let never = PlannedFault {
            cycle: u64::MAX,
            target: FaultTarget::Rob,
            entry: 0,
            bit: 0,
        };
        assert_eq!(h.execute(&never, None), Outcome::Vacant);
    }

    #[test]
    fn campaign_tallies_are_thread_count_invariant() {
        let cfg = tiny_cfg(Technique::Ooo);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let mut tallies: Vec<Tally> = Vec::new();
        for threads in [1usize, 4] {
            let spec = CampaignSpec {
                samples: 60,
                threads,
                ..CampaignSpec::default()
            };
            let r = run_injection_campaign(&h, &spec, 42, None, None).unwrap();
            assert_eq!(r.completed, 60);
            tallies.push(r.tally);
        }
        assert_eq!(
            tallies[0].to_json(),
            tallies[1].to_json(),
            "same seed must give identical tallies regardless of threads"
        );
    }

    #[test]
    fn killed_campaign_resumes_to_identical_tallies() {
        let cfg = tiny_cfg(Technique::Ooo);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let uninterrupted = {
            let spec = CampaignSpec {
                samples: 40,
                threads: 2,
                ..CampaignSpec::default()
            };
            run_injection_campaign(&h, &spec, 7, None, None)
                .unwrap()
                .tally
        };

        let journal = tmp("resume");
        // Phase 1: "crash" after 15 runs (budget-limited, fsync every
        // record so the journal survives the kill point exactly).
        let phase1 = CampaignSpec {
            samples: 40,
            threads: 2,
            journal: Some(journal.clone()),
            fsync_every: 1,
            limit: Some(15),
            ..CampaignSpec::default()
        };
        let partial = run_injection_campaign(&h, &phase1, 7, None, None).unwrap();
        assert_eq!(partial.completed, 15);
        assert_eq!(load_journal(&journal).unwrap().len(), 15);

        // Phase 2: resume from the journal and finish.
        let phase2 = CampaignSpec {
            samples: 40,
            threads: 2,
            journal: Some(journal.clone()),
            fsync_every: 1,
            ..CampaignSpec::default()
        };
        let resumed = run_injection_campaign(&h, &phase2, 7, None, None).unwrap();
        assert_eq!(resumed.resumed, 15);
        assert_eq!(resumed.completed, 40);
        assert_eq!(
            resumed.tally.to_json(),
            uninterrupted.to_json(),
            "kill-then-resume must reproduce the uninterrupted tallies"
        );
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn measured_vulnerability_cross_validates_refined_avf() {
        // The ISSUE.md acceptance bar: for at least one structure the
        // ACE-refined AVF must land within or above the injection
        // campaign's 95% confidence interval (refined AVF is the tighter
        // analytical estimate; injection under-counts latent faults that
        // never reach an observable point, so "within or above" is the
        // consistent direction).
        let cfg = tiny_cfg(Technique::Ooo);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let spec = CampaignSpec {
            samples: 150,
            threads: 4,
            ..CampaignSpec::default()
        };
        let r = run_injection_campaign(&h, &spec, 1234, None, None).unwrap();
        assert_eq!(r.completed, 150);
        assert_eq!(r.tally.total(), 150);
        let consistent = FaultTarget::ACE.iter().any(|&t| {
            let tt = r.tally.get(t);
            tt.attempts() > 0 && h.refined_avf_consistent(t, &tt) == Some(true)
        });
        assert!(
            consistent,
            "no structure's refined AVF within/above the injection CI: {}",
            r.tally.to_json()
        );
    }

    #[test]
    fn predicted_dead_strikes_are_consistent_with_zero_vulnerability() {
        // The bit-liveness soundness gate, in miniature: restrict strikes
        // to the register files, stratify by the static prediction, and
        // require the predicted-dead stratum to be statistically
        // consistent with zero measured vulnerability.
        let cfg = tiny_cfg(Technique::Ooo);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let spec = CampaignSpec {
            samples: 120,
            threads: 4,
            ..CampaignSpec::default()
        };
        let v = run_bitlive_validation(&h, &spec, 2024, None, None).unwrap();
        assert_eq!(v.result.completed, 120);
        assert_eq!(v.strata.total(), 120);
        let dead = v.strata.get(rar_inject::Stratum::PredictedDead);
        assert!(
            dead.attempts() > 0,
            "no predicted-dead strikes sampled: {}",
            v.strata.to_json()
        );
        assert!(
            v.gate_passes(),
            "predicted-dead stratum not consistent with zero: {}",
            v.strata.to_json()
        );
    }

    #[test]
    fn validation_strata_are_thread_count_invariant() {
        let cfg = tiny_cfg(Technique::Rar);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let mut strata = Vec::new();
        for threads in [1usize, 4] {
            let spec = CampaignSpec {
                samples: 60,
                threads,
                ..CampaignSpec::default()
            };
            let v = run_bitlive_validation(&h, &spec, 7, None, None).unwrap();
            assert_eq!(v.result.completed, 60);
            strata.push(v.strata);
        }
        assert_eq!(
            strata[0].to_json(),
            strata[1].to_json(),
            "same seed must give identical strata regardless of threads"
        );
    }

    #[test]
    fn injections_produce_unmasked_outcomes_somewhere() {
        // Sanity: with a real strike window the campaign is not all
        // vacant/masked — some SDC or DUE must appear, otherwise the
        // fault model is dead code.
        let cfg = tiny_cfg(Technique::Ooo);
        let h = InjectionHarness::prepare(&cfg).unwrap();
        let spec = CampaignSpec {
            samples: 100,
            threads: 4,
            ..CampaignSpec::default()
        };
        let r = run_injection_campaign(&h, &spec, 99, None, None).unwrap();
        let unmasked: u64 = r.tally.targets().map(|(_, c)| c.unmasked()).sum();
        assert!(
            unmasked > 0,
            "100 injections produced zero SDC/DUE: {}",
            r.tally.to_json()
        );
    }
}
