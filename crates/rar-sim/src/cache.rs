//! Content-addressed on-disk result cache.
//!
//! Each finished run is persisted as one small JSON file named by the
//! configuration's [`SimConfig::fingerprint`], so a warm rerun of any
//! sweep replays its cells from disk instead of simulating them. The
//! design invariants:
//!
//! * **Bit-identical replay.** Every persisted measurement is an integer
//!   counter (`u64`/`u128`). The floating-point figures (`avf`, `ipc`,
//!   `mpki`, ...) are *derived* quantities, recomputed from those integers
//!   by the same code paths a live run uses — so a cache hit returns a
//!   [`SimResult`] indistinguishable from a fresh simulation, bit for bit.
//! * **Versioned entries.** [`CACHE_VERSION`] is stored *inside* every
//!   entry; a version bump (or a canonical-form bump in
//!   [`SimConfig::canonical`]) strands old entries, which then decode to
//!   `None` and are transparently re-simulated and overwritten.
//! * **Strict decode.** A truncated, corrupted or hand-edited entry —
//!   anything that does not parse exactly, echo the expected fingerprint,
//!   and match the requesting configuration's workload and technique —
//!   is treated as a miss, never an error.
//! * **Atomic publish.** Entries are written to a temporary file and
//!   renamed into place, so concurrent writers (or a crash mid-write)
//!   can never publish a torn entry.

use crate::config::SimConfig;
use crate::run::SimResult;
use rar_ace::{ReliabilityReport, Structure};
use rar_core::{CoreStats, Technique};
use rar_frontend::PredictorStats;
use rar_mem::MemStats;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version of the on-disk entry layout. Bump when the serialized field
/// set changes; old entries then become misses and are re-simulated.
pub const CACHE_VERSION: u64 = 2;

/// A directory of memoized [`SimResult`]s keyed by configuration
/// fingerprint.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first [`DiskCache::store`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskCache { dir: dir.into() }
    }

    /// The directory this cache reads and writes.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for `cfg` (exists only after a store).
    #[must_use]
    pub fn entry_path(&self, cfg: &SimConfig) -> PathBuf {
        self.dir.join(format!("{}.json", cfg.fingerprint()))
    }

    /// Looks up a previously stored result for `cfg`. Any defect in the
    /// entry — missing file, stale version, fingerprint or identity
    /// mismatch, corruption — yields `None` (a cache miss), never an
    /// error.
    #[must_use]
    pub fn load(&self, cfg: &SimConfig) -> Option<SimResult> {
        self.try_load(cfg).ok().flatten()
    }

    /// Like [`DiskCache::load`], but distinguishes a genuine miss
    /// (`Ok(None)`: no entry, stale version, or content defects) from an
    /// I/O failure reading the entry (`Err`). The sweep engine retries
    /// I/O failures with backoff and, if they persist, disables the cache
    /// for the rest of the session instead of re-probing a broken disk on
    /// every cell.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the entry exists but cannot
    /// be read (permissions, device errors, a file where the cache
    /// directory should be). `NotFound` is a miss, not an error.
    pub fn try_load(&self, cfg: &SimConfig) -> std::io::Result<Option<SimResult>> {
        rar_chaos::maybe_sleep(rar_chaos::sites::SIM_CACHE_IO_SLOW, 20);
        rar_chaos::maybe_io_err(rar_chaos::sites::SIM_CACHE_READ_ERR)?;
        let mut text = match std::fs::read_to_string(self.entry_path(cfg)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if rar_chaos::fire(rar_chaos::sites::SIM_CACHE_READ_CORRUPT).is_some() {
            // Truncating to half strips trailing fields the strict decoder
            // requires, so a corrupted entry always degrades to a miss and
            // the cell is re-simulated — never silently decoded wrong.
            text.truncate(text.len() / 2);
        }
        Ok(decode(&text, cfg))
    }

    /// Persists `result` as the entry for `cfg`, atomically (temp file +
    /// rename). Concurrent stores of the same entry are benign: both
    /// write identical bytes.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the cache directory cannot be
    /// created or the entry cannot be written; callers typically treat
    /// this as a warning (the sweep still has the in-memory result).
    pub fn store(&self, cfg: &SimConfig, result: &SimResult) -> std::io::Result<()> {
        rar_chaos::maybe_sleep(rar_chaos::sites::SIM_CACHE_IO_SLOW, 20);
        rar_chaos::maybe_io_err(rar_chaos::sites::SIM_CACHE_WRITE_ERR)?;
        std::fs::create_dir_all(&self.dir)?;
        let text = encode(cfg, result);
        let tmp = self
            .dir
            .join(format!(".{}.tmp.{}", cfg.fingerprint(), std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, self.entry_path(cfg))
    }
}

/// `CoreStats` as (key, value) pairs, in declaration order. Encode and
/// decode both consume this list, so they cannot drift apart.
fn core_fields(s: &CoreStats) -> [(&'static str, u64); 17] {
    [
        ("stats.cycles", s.cycles),
        ("stats.committed", s.committed),
        ("stats.branch_mispredicts", s.branch_mispredicts),
        ("stats.mlp_sum", s.mlp_sum),
        ("stats.mlp_cycles", s.mlp_cycles),
        ("stats.runahead_intervals", s.runahead_intervals),
        ("stats.runahead_cycles", s.runahead_cycles),
        ("stats.runahead_uops", s.runahead_uops),
        ("stats.runahead_prefetches", s.runahead_prefetches),
        ("stats.runahead_inv_loads", s.runahead_inv_loads),
        ("stats.flushes", s.flushes),
        ("stats.squashed", s.squashed),
        ("stats.rob_full_cycles", s.rob_full_cycles),
        ("stats.iq_full_cycles", s.iq_full_cycles),
        ("stats.head_blocked_cycles", s.head_blocked_cycles),
        ("stats.dispatched", s.dispatched),
        ("stats.issued", s.issued),
    ]
}

fn mem_fields(m: &MemStats) -> [(&'static str, u64); 10] {
    [
        ("mem.l1d_hits", m.l1d_hits),
        ("mem.l2_hits", m.l2_hits),
        ("mem.l3_hits", m.l3_hits),
        ("mem.llc_misses", m.llc_misses),
        ("mem.l1i_hits", m.l1i_hits),
        ("mem.l1i_misses", m.l1i_misses),
        ("mem.mshr_merges", m.mshr_merges),
        ("mem.mshr_stalls", m.mshr_stalls),
        ("mem.prefetches_issued", m.prefetches_issued),
        ("mem.runahead_loads", m.runahead_loads),
    ]
}

fn predictor_fields(p: &PredictorStats) -> [(&'static str, u64); 3] {
    [
        ("predictor.predictions", p.predictions),
        ("predictor.mispredictions", p.mispredictions),
        ("predictor.btb_misses", p.btb_misses),
    ]
}

/// Renders one entry. Keys are flat and dotted so every key in the file
/// is globally unique — the strict decoder depends on that.
fn encode(cfg: &SimConfig, r: &SimResult) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"rar_cache_version\": {CACHE_VERSION},");
    let _ = writeln!(out, "  \"fingerprint\": \"{}\",", cfg.fingerprint());
    let _ = writeln!(out, "  \"workload\": \"{}\",", r.workload);
    let _ = writeln!(out, "  \"technique\": \"{}\",", r.technique);
    for (k, v) in core_fields(&r.stats) {
        let _ = writeln!(out, "  \"{k}\": {v},");
    }
    for (k, v) in mem_fields(&r.mem) {
        let _ = writeln!(out, "  \"{k}\": {v},");
    }
    for (k, v) in predictor_fields(&r.predictor) {
        let _ = writeln!(out, "  \"{k}\": {v},");
    }
    let rel = &r.reliability;
    let _ = writeln!(out, "  \"reliability.total_abc\": {},", rel.total_abc());
    let _ = writeln!(
        out,
        "  \"reliability.refined_total_abc\": {},",
        rel.refined_total_abc()
    );
    let _ = writeln!(
        out,
        "  \"reliability.bit_refined_total_abc\": {},",
        rel.bit_refined_total_abc()
    );
    let _ = writeln!(
        out,
        "  \"reliability.capacity_bits\": {},",
        rel.capacity_bits()
    );
    let _ = writeln!(out, "  \"reliability.cycles\": {},", rel.cycles());
    write_u128_array(
        &mut out,
        "reliability.abc",
        &Structure::ALL.map(|s| rel.abc(s)),
    );
    out.push_str(",\n");
    write_u128_array(&mut out, "abc_by_structure", &r.abc_by_structure);
    out.push_str(",\n");
    write_u128_array(&mut out, "window_abc", &r.window_abc);
    out.push_str("\n}\n");
    out
}

fn write_u128_array(out: &mut String, key: &str, values: &[u128]) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Strictly decodes one entry for `cfg`; any defect yields `None`.
fn decode(text: &str, cfg: &SimConfig) -> Option<SimResult> {
    if field_u64(text, "rar_cache_version")? != CACHE_VERSION {
        return None;
    }
    if field_str(text, "fingerprint")? != cfg.fingerprint() {
        return None;
    }
    let workload = field_str(text, "workload")?;
    if workload != cfg.workload {
        return None;
    }
    let technique = Technique::parse(&field_str(text, "technique")?)?;
    if technique != cfg.technique {
        return None;
    }

    let mut stats = CoreStats::default();
    {
        let keys = core_fields(&stats).map(|(k, _)| k);
        let slots: [&mut u64; 17] = [
            &mut stats.cycles,
            &mut stats.committed,
            &mut stats.branch_mispredicts,
            &mut stats.mlp_sum,
            &mut stats.mlp_cycles,
            &mut stats.runahead_intervals,
            &mut stats.runahead_cycles,
            &mut stats.runahead_uops,
            &mut stats.runahead_prefetches,
            &mut stats.runahead_inv_loads,
            &mut stats.flushes,
            &mut stats.squashed,
            &mut stats.rob_full_cycles,
            &mut stats.iq_full_cycles,
            &mut stats.head_blocked_cycles,
            &mut stats.dispatched,
            &mut stats.issued,
        ];
        for (key, slot) in keys.into_iter().zip(slots) {
            *slot = field_u64(text, key)?;
        }
    }

    let mut mem = MemStats::default();
    {
        let keys = mem_fields(&mem).map(|(k, _)| k);
        let slots: [&mut u64; 10] = [
            &mut mem.l1d_hits,
            &mut mem.l2_hits,
            &mut mem.l3_hits,
            &mut mem.llc_misses,
            &mut mem.l1i_hits,
            &mut mem.l1i_misses,
            &mut mem.mshr_merges,
            &mut mem.mshr_stalls,
            &mut mem.prefetches_issued,
            &mut mem.runahead_loads,
        ];
        for (key, slot) in keys.into_iter().zip(slots) {
            *slot = field_u64(text, key)?;
        }
    }

    let predictor = PredictorStats {
        predictions: field_u64(text, "predictor.predictions")?,
        mispredictions: field_u64(text, "predictor.mispredictions")?,
        btb_misses: field_u64(text, "predictor.btb_misses")?,
    };

    let rel_abc = field_u128_array::<{ Structure::COUNT }>(text, "reliability.abc")?;
    let reliability = ReliabilityReport::from_parts(
        rel_abc,
        field_u128(text, "reliability.total_abc")?,
        field_u128(text, "reliability.refined_total_abc")?,
        field_u128(text, "reliability.bit_refined_total_abc")?,
        field_u64(text, "reliability.capacity_bits")?,
        field_u64(text, "reliability.cycles")?,
    );

    Some(SimResult {
        workload,
        technique,
        stats,
        reliability,
        mem,
        predictor,
        abc_by_structure: field_u128_array::<{ Structure::COUNT }>(text, "abc_by_structure")?,
        window_abc: field_u128_array::<2>(text, "window_abc")?,
        // Stall profiles are never cached: profiled runs bypass the disk
        // cache entirely (the profile depends on run mode, not config).
        stalls: None,
    })
}

/// The raw value text following `"key":`, trimmed up to the terminating
/// `,`, `}` or end of line. The flat dotted key scheme guarantees each
/// quoted key occurs exactly once, which this enforces.
fn raw_value<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)?;
    if text[start + needle.len()..].contains(&needle) {
        return None; // duplicate key: corrupt entry
    }
    let rest = text[start + needle.len()..].trim_start();
    let end = rest.find(['\n', '}'])?;
    Some(rest[..end].trim().trim_end_matches(','))
}

fn field_u64(text: &str, key: &str) -> Option<u64> {
    raw_value(text, key)?.parse().ok()
}

fn field_u128(text: &str, key: &str) -> Option<u128> {
    raw_value(text, key)?.parse().ok()
}

fn field_str(text: &str, key: &str) -> Option<String> {
    let raw = raw_value(text, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains(['"', '\\']) {
        return None; // entries never need escapes; anything else is corrupt
    }
    Some(inner.to_owned())
}

fn field_u128_array<const N: usize>(text: &str, key: &str) -> Option<[u128; N]> {
    let raw = raw_value(text, key)?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = [0u128; N];
    let mut parts = inner.split(',');
    for slot in &mut out {
        *slot = parts.next()?.trim().parse().ok()?;
    }
    if parts.next().is_some() {
        return None; // wrong arity
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Simulation;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rar-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg() -> SimConfig {
        SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Rar)
            .warmup(300)
            .instructions(2_000)
            .build()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::new(&dir);
        let cfg = tiny_cfg();
        let fresh = Simulation::run(&cfg);
        assert!(cache.load(&cfg).is_none(), "cold cache must miss");
        cache.store(&cfg, &fresh).unwrap();
        let replayed = cache.load(&cfg).expect("warm cache must hit");
        assert_eq!(replayed, fresh);
        // Derived floats come out identical too (recomputed from ints).
        assert!(replayed.ipc().to_bits() == fresh.ipc().to_bits());
        assert!(
            replayed.reliability.refined_avf().to_bits()
                == fresh.reliability.refined_avf().to_bits()
        );
        assert!(
            replayed.reliability.bit_refined_avf().to_bits()
                == fresh.reliability.bit_refined_avf().to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_a_miss() {
        let dir = tmp_dir("stale");
        let cache = DiskCache::new(&dir);
        let cfg = tiny_cfg();
        let fresh = Simulation::run(&cfg);
        cache.store(&cfg, &fresh).unwrap();
        let path = cache.entry_path(&cfg);
        let bumped = std::fs::read_to_string(&path).unwrap().replace(
            &format!("\"rar_cache_version\": {CACHE_VERSION}"),
            &format!("\"rar_cache_version\": {}", CACHE_VERSION + 1),
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(cache.load(&cfg).is_none(), "future version must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_entries_are_misses_not_errors() {
        let dir = tmp_dir("corrupt");
        let cache = DiskCache::new(&dir);
        let cfg = tiny_cfg();
        let fresh = Simulation::run(&cfg);
        cache.store(&cfg, &fresh).unwrap();
        let path = cache.entry_path(&cfg);
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncation, garbage, a missing field, and a fingerprint swap.
        let half = &good[..good.len() / 2];
        let no_field = good.replace("\"stats.committed\"", "\"stats.gone\"");
        for bad in [half, "not json at all", no_field.as_str(), ""] {
            std::fs::write(&path, bad).unwrap();
            assert!(cache.load(&cfg).is_none());
        }

        // An entry for a *different* configuration stored under this name
        // is rejected by the embedded fingerprint echo.
        let other = SimConfig::builder()
            .workload("mcf")
            .technique(Technique::Ooo)
            .warmup(300)
            .instructions(2_000)
            .build();
        std::fs::write(&path, encode(&other, &Simulation::run(&other))).unwrap();
        assert!(cache.load(&cfg).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
