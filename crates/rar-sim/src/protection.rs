//! Protection-technique comparison (the paper's Section VI, quantified).
//!
//! The paper positions RAR against three families of soft-error
//! protection: coding (parity/ECC on back-end structures), redundant
//! execution, and state-limiting microarchitecture techniques (flushing,
//! dispatch throttling, runahead). This module builds one comparison
//! table: microarchitectural techniques are *simulated* with this
//! workspace's core, while coding/redundancy rows use the overhead
//! numbers the paper cites (marked `analytic`):
//!
//! - parity on an OoO core: ~14% area/power/energy overhead
//!   (Cheng et al., CLEAR, IEEE TCAD 2017 — paper Section VI-A);
//! - redundant multithreading: up to 32% performance degradation plus a
//!   hardware context (Mukherjee et al., ISCA 2002 — Section VI-B);
//! - dispatch throttling: ~9% average degradation at high-AVF bounds
//!   (Soundararajan et al., ISCA 2007 — Section VI-C), which we *also*
//!   simulate via [`rar_core::Technique::Throttle`].

use crate::experiment::{ExperimentOptions, Suite};
use crate::report::{fmt2, gmean, hmean, Table};
use crate::run::{SimResult, Simulation};
use crate::SimConfig;
use rar_core::{CoreConfig, Technique};
use rar_telemetry::Profiler;

/// Storage added by RAR over the baseline core, in bits (Section III-D:
/// a 4-bit countdown timer; plus PRE's SST and PRDQ, which RAR inherits).
#[must_use]
pub fn rar_hardware_bits(core: &CoreConfig) -> u64 {
    let timer = 4;
    // SST: fully-associative PC tags (48-bit virtual PCs) + LRU state.
    let sst = core.sst_size as u64 * (48 + 8);
    // PRDQ: register tags plus release bookkeeping.
    let prdq = core.prdq_size as u64 * 16;
    // One RAT checkpoint (64 architectural registers x 8-bit phys tags);
    // the paper assumes RAT checkpoints are already protected, so this is
    // capacity, not vulnerable state.
    let rat_checkpoint = 64 * 8;
    timer + sst + prdq + rat_checkpoint
}

/// Parity storage for the tracked back-end structures (one bit per byte).
#[must_use]
pub fn parity_bits(core: &CoreConfig) -> u64 {
    core.capacities().total_bits() / 8
}

/// SECDED ECC storage for the tracked back-end structures (8 check bits
/// per 64-bit word).
#[must_use]
pub fn ecc_bits(core: &CoreConfig) -> u64 {
    core.capacities().total_bits() / 8
}

/// Builds the Section VI comparison table over the memory-intensive set.
#[must_use]
pub fn protection_comparison<P: Profiler>(opts: &ExperimentOptions<P>) -> Table {
    let core = CoreConfig::baseline();
    let benchmarks = Suite::Memory.benchmarks();

    let run_all = |tech: Technique| -> Vec<(SimResult, SimResult)> {
        benchmarks
            .iter()
            .map(|&b| {
                let mk = |t: Technique| {
                    Simulation::run(
                        &SimConfig::builder()
                            .workload(b)
                            .technique(t)
                            .instructions(opts.instructions)
                            .warmup(opts.warmup)
                            .seed(opts.seed)
                            .build(),
                    )
                };
                (mk(Technique::Ooo), mk(tech))
            })
            .collect()
    };

    let mut table = Table::new(vec![
        "approach".into(),
        "MTTF".into(),
        "IPC".into(),
        "extra bits".into(),
        "basis".into(),
    ]);
    table.titled("Protection comparison (Section VI; memory-intensive set)");

    for (name, tech) in [
        ("FLUSH", Technique::Flush),
        ("THROTTLE", Technique::Throttle),
        ("RAR", Technique::Rar),
    ] {
        let pairs = run_all(tech);
        let mttf: Vec<f64> = pairs.iter().map(|(b, t)| t.mttf_vs(b)).collect();
        let ipc: Vec<f64> = pairs.iter().map(|(b, t)| t.ipc_vs(b)).collect();
        let bits = if tech == Technique::Rar {
            rar_hardware_bits(&core)
        } else {
            0
        };
        table.row(vec![
            name.into(),
            fmt2(gmean(&mttf)),
            fmt2(hmean(&ipc)),
            bits.to_string(),
            "simulated".into(),
        ]);
    }
    // Cited analytic rows. Parity/ECC detect-or-correct everything they
    // cover, so their MTTF against the *covered* structures is effectively
    // unbounded; the costs are the story.
    table.row(vec![
        "Parity (CLEAR)".into(),
        "detect-all".into(),
        "~1.00".into(),
        parity_bits(&core).to_string(),
        "analytic: +14% area/power".into(),
    ]);
    table.row(vec![
        "ECC (SECDED)".into(),
        "correct-all".into(),
        "<1.00".into(),
        ecc_bits(&core).to_string(),
        "analytic: cycle-time impact".into(),
    ]);
    table.row(vec![
        "Redundant SMT".into(),
        "detect-all".into(),
        "~0.68".into(),
        "0".into(),
        "analytic: -32% perf + 1 context".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rar_hardware_is_a_rounding_error() {
        let core = CoreConfig::baseline();
        let rar = rar_hardware_bits(&core);
        let protected = core.capacities().total_bits();
        assert!(
            (rar as f64) < 0.15 * protected as f64,
            "RAR adds {rar} bits vs {protected} protected — must be cheap"
        );
        // And far cheaper than coding the structures directly.
        assert!(rar < parity_bits(&core) * 2);
    }

    #[test]
    fn comparison_table_builds() {
        let opts = ExperimentOptions {
            instructions: 1_200,
            warmup: 200,
            ..Default::default()
        };
        let t = protection_comparison(&opts);
        assert_eq!(t.len(), 6);
        let csv = t.to_csv();
        assert!(csv.contains("RAR"));
        assert!(csv.contains("Parity"));
    }
}
