//! Runs a single simulation and prints a detailed summary.
//!
//! ```text
//! rar-sim --workload mcf --technique rar [--instructions N] [--warmup N]
//!         [--seed N] [--core 1|2|3|4] [--prefetch none|l3|all] [--trace N]
//!         [--json PATH] [--telemetry PATH]
//! ```
//!
//! `--trace N` prints a per-cycle pipeline view (occupancies, mode, head
//! state) for the first N cycles after warm-up, then the summary.
//! `--telemetry PATH` routes the run through a profiled session and
//! writes the host-side telemetry registry (guest counters, host phase
//! timings) as JSON — results are bit-identical either way.
//! `--stalls` enables the cycle-loop stall profiler: the summary gains a
//! per-bucket cycle-accounting table (buckets sum exactly to total
//! cycles) and `--json` exports gain a `stalls` section — the simulated
//! outcome itself stays bit-identical.

use rar_ace::Structure;
use rar_core::{CoreConfig, StallBucket, Technique};
use rar_mem::{MemConfig, PrefetchPlacement};
use rar_sim::{SimConfig, Simulation};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rar-sim --workload NAME --technique TECH [--instructions N] [--warmup N] \
         [--seed N] [--core 1|2|3|4] [--prefetch none|l3|all] [--trace N] [--json PATH] \
         [--telemetry PATH] [--stalls]"
    );
    ExitCode::from(2)
}

/// Prints a per-cycle pipeline view for the first `cycles` cycles after
/// warm-up.
fn trace(cfg: &SimConfig, cycles: u64) {
    let spec = rar_workloads::workload(&cfg.workload).expect("validated by caller");
    let mut core = rar_core::Core::new(
        cfg.core.clone(),
        cfg.mem.clone(),
        cfg.technique,
        rar_isa::TraceWindow::new(spec.trace(cfg.seed)),
    );
    core.run_until_committed(cfg.warmup);
    core.reset_measurement();
    println!(
        "{:>8} {:>4} {:>3} {:>3} {:>3}  mode  head",
        "cycle", "ROB", "IQ", "LQ", "SQ"
    );
    let mut last_printed = None;
    for _ in 0..cycles {
        core.cycle();
        let s = core.snapshot();
        // Compress runs of identical occupancy lines.
        let key = (
            s.rob_occupancy,
            s.iq_occupancy,
            s.in_runahead,
            s.head_seq,
            s.head_completed,
        );
        if last_printed == Some(key) {
            continue;
        }
        last_printed = Some(key);
        println!(
            "{:>8} {:>4} {:>3} {:>3} {:>3}  {}  {}",
            s.cycle,
            s.rob_occupancy,
            s.iq_occupancy,
            s.lq_occupancy,
            s.sq_occupancy,
            if s.in_runahead { "RA " } else { "   " },
            match (s.head_seq, s.head_pc) {
                (Some(seq), Some(pc)) => format!(
                    "#{seq} pc={pc:#x}{}",
                    if s.head_completed { " done" } else { "" }
                ),
                _ => "-".to_owned(),
            }
        );
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut b = SimConfig::builder();
    let mut trace_cycles: u64 = 0;
    let mut json_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut stalls = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--stalls" {
            stalls = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return usage();
        };
        match flag {
            "--workload" => {
                b.workload(value);
            }
            "--technique" => match Technique::parse(value) {
                Some(t) => {
                    b.technique(t);
                }
                None => {
                    eprintln!("unknown technique '{value}'");
                    return usage();
                }
            },
            "--instructions" => match value.parse() {
                Ok(n) => {
                    b.instructions(n);
                }
                Err(_) => return usage(),
            },
            "--warmup" => match value.parse() {
                Ok(n) => {
                    b.warmup(n);
                }
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(n) => {
                    b.seed(n);
                }
                Err(_) => return usage(),
            },
            "--core" => {
                let core = match value.as_str() {
                    "1" => CoreConfig::core1(),
                    "2" => CoreConfig::core2(),
                    "3" => CoreConfig::core3(),
                    "4" => CoreConfig::core4(),
                    _ => return usage(),
                };
                b.core(core);
            }
            "--trace" => match value.parse() {
                Ok(n) => trace_cycles = n,
                Err(_) => return usage(),
            },
            "--json" => json_path = Some(value.clone()),
            "--telemetry" => telemetry_path = Some(value.clone()),
            "--prefetch" => {
                let p = match value.as_str() {
                    "none" => PrefetchPlacement::None,
                    "l3" => PrefetchPlacement::L3,
                    "all" => PrefetchPlacement::All,
                    _ => return usage(),
                };
                b.mem(MemConfig::with_prefetch(p));
            }
            _ => return usage(),
        }
        i += 2;
    }
    let cfg = b.build();
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        return ExitCode::from(2);
    }

    if trace_cycles > 0 {
        trace(&cfg, trace_cycles);
    }
    // With --telemetry the run goes through a profiled session (same
    // result bit for bit; the session additionally attributes host time).
    let (r, telemetry) = if telemetry_path.is_some() {
        let session = rar_sim::SweepSession::new()
            .into_profiled()
            .stall_profiling(stalls);
        let r = match session.run(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let t = session.telemetry_json();
        (r, Some(t))
    } else if stalls {
        match Simulation::try_run_stalled(&cfg) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (Simulation::run(&cfg), None)
    };
    println!("workload      {}", r.workload);
    println!("technique     {}", r.technique);
    println!("fingerprint   {}", cfg.fingerprint());
    println!("instructions  {}", r.stats.committed);
    println!("cycles        {}", r.stats.cycles);
    println!("IPC           {:.3}", r.ipc());
    println!("MLP           {:.2}", r.mlp());
    println!("MPKI          {:.1}", r.mpki());
    println!("AVF           {:.4}", r.reliability.avf());
    println!("refined AVF   {:.4}", r.reliability.refined_avf());
    println!("bit-ref AVF   {:.4}", r.reliability.bit_refined_avf());
    println!("total ABC     {}", r.reliability.total_abc());
    for s in Structure::ALL {
        println!("  ABC {:8}  {}", s.to_string(), r.reliability.abc(s));
    }
    println!(
        "branch MPKI   {:.1}",
        r.predictor.mpki_of(r.stats.committed)
    );
    println!(
        "runahead      {} intervals, {} cycles, {} prefetches",
        r.stats.runahead_intervals, r.stats.runahead_cycles, r.stats.runahead_prefetches
    );
    println!(
        "flushes       {} ({} squashed uops)",
        r.stats.flushes, r.stats.squashed
    );
    if let Some(p) = &r.stalls {
        println!("stall breakdown ({} cycles attributed)", p.total());
        let total = p.total().max(1);
        for bucket in StallBucket::ALL {
            let cycles = p.count(bucket);
            println!(
                "  {:<10}  {:>10}  {:>5.1}%",
                bucket.name(),
                cycles,
                cycles as f64 / total as f64 * 100.0
            );
        }
        println!(
            "  quiescent fraction  {:.4} (event-skippable upper bound)",
            p.quiescent_fraction()
        );
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, rar_sim::json::to_json_for(&cfg, &r)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote         {path}");
    }
    if let (Some(path), Some(telemetry)) = (telemetry_path, telemetry) {
        if let Err(e) = std::fs::write(&path, telemetry) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote         {path}");
    }
    ExitCode::SUCCESS
}
