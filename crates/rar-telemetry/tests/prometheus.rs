//! Prometheus text-format conformance tests: name/label escaping,
//! histogram bucket monotonicity and the mandatory `+Inf` bucket, and
//! counter monotonicity under concurrent increments.

use rar_telemetry::export::{labeled, to_json, to_prometheus};
use rar_telemetry::MetricsRegistry;

/// Parses `name value` sample lines (skipping `# TYPE` comments).
fn samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("sample line");
            (name.to_owned(), value.parse().expect("numeric sample"))
        })
        .collect()
}

#[test]
fn invalid_metric_names_are_sanitized_in_the_output() {
    let reg = MetricsRegistry::new();
    reg.counter("cache hit-rate.9").add(1);
    let text = to_prometheus(&reg);
    assert!(text.contains("# TYPE cache_hit_rate_9 counter"), "{text}");
    assert!(text.contains("cache_hit_rate_9 1"), "{text}");
}

#[test]
fn label_values_are_escaped_per_the_exposition_format() {
    let reg = MetricsRegistry::new();
    reg.counter(&labeled("runs_total", &[("workload", "m\"c\\f\nx")]))
        .add(2);
    let text = to_prometheus(&reg);
    // Backslash, quote and newline all escaped; one sample line only.
    assert!(
        text.contains("runs_total{workload=\"m\\\"c\\\\f\\nx\"} 2"),
        "{text}"
    );
    assert_eq!(
        text.lines().filter(|l| l.contains("runs_total{")).count(),
        1
    );
}

#[test]
fn histogram_buckets_are_cumulative_monotone_and_end_at_inf() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("cell_nanos");
    for v in [1u64, 2, 2, 3, 900, 1_000_000, u64::MAX] {
        h.observe(v);
    }
    let text = to_prometheus(&reg);
    let buckets: Vec<(String, f64)> = samples(&text)
        .into_iter()
        .filter(|(n, _)| n.starts_with("cell_nanos_bucket"))
        .collect();
    assert!(buckets.len() >= 2, "{text}");
    // Monotone non-decreasing cumulative counts, in emission order.
    for pair in buckets.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "non-monotone buckets: {pair:?}\n{text}"
        );
    }
    // The +Inf bucket is last and equals the total count (observations
    // above the largest finite bound only appear there).
    let (last_name, last_value) = buckets.last().unwrap();
    assert!(last_name.contains("le=\"+Inf\""), "{last_name}");
    assert_eq!(*last_value, 7.0);
    let count = samples(&text)
        .into_iter()
        .find(|(n, _)| n == "cell_nanos_count")
        .unwrap()
        .1;
    assert_eq!(count, 7.0);
    let sum = samples(&text)
        .into_iter()
        .find(|(n, _)| n == "cell_nanos_sum")
        .unwrap()
        .1;
    assert!(sum > 0.0);
}

#[test]
fn counters_stay_monotone_under_concurrent_increments() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("concurrent_total");
    let exports = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..5_000 {
                    c.inc();
                }
            });
        }
        // A reader thread exporting concurrently must observe a
        // non-decreasing sequence of values.
        s.spawn(|| {
            for _ in 0..50 {
                let text = to_prometheus(&reg);
                let v = samples(&text)
                    .into_iter()
                    .find(|(n, _)| n == "concurrent_total")
                    .unwrap()
                    .1;
                exports.lock().unwrap().push(v);
            }
        });
    });
    let seen = exports.into_inner().unwrap();
    assert!(seen.windows(2).all(|w| w[1] >= w[0]), "{seen:?}");
    assert_eq!(c.get(), 20_000);
}

#[test]
fn both_exporters_cover_the_same_metric_set() {
    let reg = MetricsRegistry::new();
    for name in rar_telemetry::names::ALL {
        // Register each canonical name with its natural kind.
        if name.ends_with("_total") {
            reg.counter(name);
        } else if name.ends_with("_nanos") {
            reg.histogram(name);
        } else {
            reg.gauge(name);
        }
    }
    let json = to_json(&reg);
    let prom = to_prometheus(&reg);
    for name in rar_telemetry::names::ALL {
        assert!(json.contains(name), "{name} missing from JSON export");
        assert!(prom.contains(name), "{name} missing from Prometheus export");
    }
}
