//! Deterministic exporters: JSON and Prometheus text.
//!
//! Both walk the same sorted [`MetricsRegistry::snapshot`], so a metric
//! registered anywhere appears in *both* formats (asserted by
//! `cargo xtask lint`), and exporting the same registry state twice
//! yields byte-identical output regardless of thread count.

use crate::registry::{HistogramSnapshot, MetricValue, MetricsRegistry, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Schema tag of the JSON telemetry export.
pub const TELEMETRY_SCHEMA: &str = "rar-telemetry-v1";

/// Maps non-finite floats to `0.0` so exported JSON never contains
/// `NaN`/`inf` (which JSON cannot represent).
#[must_use]
pub fn sanitize_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Builds a registry key carrying a Prometheus-style label block, with
/// label values escaped (`\\`, `\"`, `\n`) at construction time. The
/// exporters treat the block as opaque, so escaping happens exactly once.
#[must_use]
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text exposition format.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Rewrites `name` into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, other characters become `_`.
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits a registry key into (metric name, optional label block body).
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(at) => (&key[..at], Some(key[at + 1..].trim_end_matches('}'))),
        None => (key, None),
    }
}

/// Upper bound of finite histogram bucket `i` (`2^i`).
fn bucket_bound(i: usize) -> u128 {
    1u128 << i
}

/// Approximate quantile `q` (in `[0, 1]`) of a log2 histogram: the upper
/// bound of the first bucket whose cumulative count reaches rank
/// `ceil(q * count)`. The bound overestimates by at most 2x (one bucket
/// width); observations that overflowed the finite buckets report
/// `u64::MAX`. An empty histogram reports 0.
#[must_use]
pub fn histogram_quantile(h: &HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    // ceil(q * count), clamped into [1, count]: precise in u128 arithmetic
    // for the tail ranks this exporter asks for.
    let rank = {
        let scaled = q * h.count as f64;
        let r = scaled.ceil();
        if r < 1.0 {
            1
        } else if r >= h.count as f64 {
            h.count
        } else {
            // Safe: 1.0 <= r < count, and count fits in u64.
            r as u64
        }
    };
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        if cumulative >= rank {
            return u64::try_from(bucket_bound(i)).unwrap_or(u64::MAX);
        }
    }
    // The rank lands in the overflow bucket: beyond the finite range.
    u64::MAX
}

/// The quantiles both exporters derive from every histogram.
const EXPORTED_QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)];

/// Serializes the registry to a pretty-printed JSON object with sorted
/// keys (snapshot order). Histogram buckets are emitted as
/// `[bound, count]` pairs for non-empty buckets only, so the export stays
/// compact and byte-stable.
#[must_use]
pub fn to_json(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let mut out = String::with_capacity(256 + 64 * snap.len());
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{TELEMETRY_SCHEMA}\",");
    out.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in snap.iter().enumerate() {
        let comma = if i + 1 < snap.len() { "," } else { "" };
        let key = json_escape(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "    \"{key}\": {{\"kind\": \"counter\", \"value\": {v}}}{comma}"
                );
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "    \"{key}\": {{\"kind\": \"gauge\", \"value\": {:.6}}}{comma}",
                    sanitize_f64(*v)
                );
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "    \"{key}\": {{\"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"overflow\": {}",
                    h.count, h.sum, h.overflow
                );
                for (label, q) in EXPORTED_QUANTILES {
                    let _ = write!(out, ", \"{label}\": {}", histogram_quantile(h, q));
                }
                out.push_str(", \"buckets\": [");
                let mut first = true;
                for (b, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(out, "[{}, {n}]", bucket_bound(b));
                }
                let _ = writeln!(out, "]}}{comma}");
            }
        }
    }
    out.push_str("  }\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the registry to the Prometheus text exposition format.
///
/// Histograms render cumulative `_bucket` series up to the highest
/// non-empty finite bucket plus the mandatory `+Inf` bucket, followed by
/// `_sum` and `_count`; cumulative counts are monotone by construction.
#[must_use]
pub fn to_prometheus(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let mut out = String::with_capacity(256 + 96 * snap.len());
    for (key, value) in &snap {
        let (raw_name, labels) = split_key(key);
        let name = sanitize_metric_name(raw_name);
        let series = |extra: Option<&str>| -> String {
            // Merge the key's label block with an extra label (`le`).
            match (labels, extra) {
                (None, None) => name.clone(),
                (Some(l), None) => format!("{name}{{{l}}}"),
                (None, Some(e)) => format!("{name}{{{e}}}"),
                (Some(l), Some(e)) => format!("{name}{{{l},{e}}}"),
            }
        };
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{} {v}", series(None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{} {}", series(None), sanitize_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                write_histogram(&mut out, &name, labels, h);
            }
        }
    }
    out
}

fn write_histogram(out: &mut String, name: &str, labels: Option<&str>, h: &HistogramSnapshot) {
    let bucket_series = |le: &str| -> String {
        match labels {
            Some(l) => format!("{name}_bucket{{{l},le=\"{le}\"}}"),
            None => format!("{name}_bucket{{le=\"{le}\"}}"),
        }
    };
    let last_nonzero = h
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| i + 1)
        .min(HISTOGRAM_BUCKETS);
    let mut cumulative = 0u64;
    for i in 0..last_nonzero {
        cumulative += h.buckets[i];
        let _ = writeln!(
            out,
            "{} {cumulative}",
            bucket_series(&bucket_bound(i).to_string())
        );
    }
    let _ = writeln!(out, "{} {}", bucket_series("+Inf"), h.count);
    let suffix = |tail: &str| match labels {
        Some(l) => format!("{name}_{tail}{{{l}}}"),
        None => format!("{name}_{tail}"),
    };
    let _ = writeln!(out, "{} {}", suffix("sum"), h.sum);
    let _ = writeln!(out, "{} {}", suffix("count"), h.count);
    // Approximate tail quantiles derived from the log2 buckets, exported
    // as companion gauges so scrapes need no PromQL histogram_quantile.
    for (label, q) in EXPORTED_QUANTILES {
        let _ = writeln!(out, "{} {}", suffix(label), histogram_quantile(h, q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_histogram(reg: &MetricsRegistry, name: &str) -> HistogramSnapshot {
        match reg
            .snapshot()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
        {
            Some(MetricValue::Histogram(s)) => *s,
            other => panic!("expected histogram {name}, got {other:?}"),
        }
    }

    #[test]
    fn json_export_is_sorted_and_balanced() {
        let reg = MetricsRegistry::new();
        reg.counter("zz_total").add(3);
        reg.gauge("aa_ratio").set(0.5);
        reg.histogram("mm_nanos").observe(7);
        let json = to_json(&reg);
        let aa = json.find("aa_ratio").unwrap();
        let mm = json.find("mm_nanos").unwrap();
        let zz = json.find("zz_total").unwrap();
        assert!(aa < mm && mm < zz, "keys must be sorted");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn json_export_is_reproducible() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(1);
        reg.counter("a").add(2);
        assert_eq!(to_json(&reg), to_json(&reg));
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("rar_cells_total"), "rar_cells_total");
        assert_eq!(sanitize_metric_name("cache hit-rate"), "cache_hit_rate");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn labeled_keys_escape_values_once() {
        let key = labeled("runs", &[("workload", "a\"b\\c\nd")]);
        assert_eq!(key, "runs{workload=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn prometheus_renders_all_three_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("cells_total").add(2);
        reg.gauge("util").set(0.25);
        reg.histogram("lat").observe(3);
        let text = to_prometheus(&reg);
        assert!(text.contains("# TYPE cells_total counter"));
        assert!(text.contains("cells_total 2"));
        assert!(text.contains("# TYPE util gauge"));
        assert!(text.contains("util 0.25"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_sum 3"));
        assert!(text.contains("lat_count 1"));
        assert!(text.contains("lat_p50 4"));
        assert!(text.contains("lat_p99 4"));
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q_nanos");
        // 90 observations in bucket le=1, 9 in le=16, 1 in le=1024.
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..9 {
            h.observe(16);
        }
        h.observe(1000);
        let snap = snapshot_histogram(&reg, "q_nanos");
        assert_eq!(histogram_quantile(&snap, 0.50), 1);
        assert_eq!(histogram_quantile(&snap, 0.90), 1);
        assert_eq!(histogram_quantile(&snap, 0.95), 16);
        assert_eq!(histogram_quantile(&snap, 0.99), 16);
        assert_eq!(histogram_quantile(&snap, 1.0), 1024);
        assert_eq!(histogram_quantile(&snap, 0.0), 1);
        let empty = HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
        };
        assert_eq!(histogram_quantile(&empty, 0.5), 0);
    }

    #[test]
    fn json_export_carries_quantiles() {
        let reg = MetricsRegistry::new();
        reg.histogram("lat_nanos").observe(100);
        let json = to_json(&reg);
        assert!(json.contains("\"p50\": 128"));
        assert!(json.contains("\"p90\": 128"));
        assert!(json.contains("\"p99\": 128"));
    }

    #[test]
    fn overflow_quantile_reports_saturated() {
        let reg = MetricsRegistry::new();
        reg.histogram("big").observe(u64::MAX);
        let snap = snapshot_histogram(&reg, "big");
        if snap.overflow > 0 {
            assert_eq!(histogram_quantile(&snap, 0.99), u64::MAX);
        } else {
            // u64::MAX lands in the top finite bucket on this build.
            assert!(histogram_quantile(&snap, 0.99) >= 1 << 63);
        }
    }
}
