//! Run manifests: one JSON document describing a sweep's inputs and its
//! host-side telemetry, written beside the results it explains.
//!
//! A manifest answers "what exactly produced these numbers": which tool
//! and version ran, over which workloads and configuration fingerprints,
//! with how many threads, and where the wall-clock time went (the full
//! telemetry registry snapshot is embedded verbatim). Keys are sorted, so
//! two identical runs produce byte-identical manifests regardless of
//! thread count.
//!
//! The module also ships the minimal field scanner the `rar-experiments
//! report` command uses to read manifests and `BENCH_*.json` files back,
//! plus [`validate_manifest`] — the schema check CI runs on every
//! generated manifest.

use crate::export::sanitize_f64;
use crate::registry::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the manifest document.
pub const MANIFEST_SCHEMA: &str = "rar-manifest-v1";

/// Top-level keys every valid manifest must carry.
pub const MANIFEST_REQUIRED_KEYS: [&str; 11] = [
    "schema",
    "tool",
    "version",
    "threads",
    "cells_completed",
    "cells_simulated",
    "cache_hit_rate",
    "runs_per_second",
    "wall_seconds",
    "workloads",
    "telemetry",
];

#[derive(Debug, Clone)]
enum Value {
    U64(u64),
    F64(f64),
    Str(String),
    StrArray(Vec<String>),
}

/// Builds one manifest document field by field.
#[derive(Debug)]
pub struct ManifestBuilder {
    fields: BTreeMap<String, Value>,
}

impl ManifestBuilder {
    /// A manifest for a run of `tool` at `version`.
    #[must_use]
    pub fn new(tool: &str, version: &str) -> Self {
        let mut b = ManifestBuilder {
            fields: BTreeMap::new(),
        };
        b.set_str("schema", MANIFEST_SCHEMA);
        b.set_str("tool", tool);
        b.set_str("version", version);
        b
    }

    /// Sets an integer field.
    pub fn set_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.fields.insert(key.to_owned(), Value::U64(v));
        self
    }

    /// Sets a float field (non-finite values are exported as `0.0`).
    pub fn set_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.fields.insert(key.to_owned(), Value::F64(v));
        self
    }

    /// Sets a string field.
    pub fn set_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.fields.insert(key.to_owned(), Value::Str(v.to_owned()));
        self
    }

    /// Sets a string-array field. The values are sorted and deduplicated,
    /// so the rendered manifest is independent of insertion order.
    pub fn set_str_array(&mut self, key: &str, mut vs: Vec<String>) -> &mut Self {
        vs.sort_unstable();
        vs.dedup();
        self.fields.insert(key.to_owned(), Value::StrArray(vs));
        self
    }

    /// Renders the manifest, embedding the full telemetry snapshot of
    /// `registry` under the `"telemetry"` key.
    #[must_use]
    pub fn render(&self, registry: &MetricsRegistry) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        for (key, value) in &self.fields {
            let _ = write!(out, "  \"{}\": ", esc(key));
            match value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(v) => {
                    let _ = write!(out, "{:.6}", sanitize_f64(*v));
                }
                Value::Str(v) => {
                    let _ = write!(out, "\"{}\"", esc(v));
                }
                Value::StrArray(vs) => {
                    out.push('[');
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "\"{}\"", esc(v));
                    }
                    out.push(']');
                }
            }
            out.push_str(",\n");
        }
        // Telemetry last: the embedded snapshot carries its own keys, and
        // keeping it below the manifest's own fields means the flat field
        // scanner always resolves a top-level key first.
        out.push_str("  \"telemetry\": ");
        let telemetry = crate::export::to_json(registry);
        for (i, line) in telemetry.lines().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(line);
            out.push('\n');
        }
        out.pop();
        out.push_str("\n}\n");
        out
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Validates a rendered manifest: parsable fields, the expected schema
/// tags, and every required key present. Returns the list of problems
/// (empty ⇒ valid).
#[must_use]
pub fn validate_manifest(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for key in MANIFEST_REQUIRED_KEYS {
        if !text.contains(&format!("\"{key}\":")) {
            problems.push(format!("missing required key '{key}'"));
        }
    }
    match field_str(text, "schema") {
        Some(s) if s == MANIFEST_SCHEMA => {}
        Some(s) => problems.push(format!("schema is '{s}', expected '{MANIFEST_SCHEMA}'")),
        None => {}
    }
    if !text.contains(&format!("\"{}\"", crate::export::TELEMETRY_SCHEMA)) {
        problems.push(format!(
            "embedded telemetry snapshot missing schema '{}'",
            crate::export::TELEMETRY_SCHEMA
        ));
    }
    for key in ["cache_hit_rate", "runs_per_second", "wall_seconds"] {
        if let Some(raw) = raw_value(text, key) {
            if raw.parse::<f64>().is_err() {
                problems.push(format!("'{key}' is not a number: {raw}"));
            }
        }
    }
    if field_u64(text, "threads") == Some(0) {
        problems.push("threads must be nonzero".to_owned());
    }
    problems
}

/// The raw value text following the *first* occurrence of `"key":`,
/// trimmed up to the terminating `,`, `}` or end of line. Good enough
/// for the flat, machine-written documents this workspace produces.
#[must_use]
pub fn raw_value<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)?;
    let rest = text[start + needle.len()..].trim_start();
    let end = rest.find(['\n', '}'])?;
    Some(rest[..end].trim().trim_end_matches(','))
}

/// Scans an integer field.
#[must_use]
pub fn field_u64(text: &str, key: &str) -> Option<u64> {
    raw_value(text, key)?.parse().ok()
}

/// Scans a float field.
#[must_use]
pub fn field_f64(text: &str, key: &str) -> Option<f64> {
    raw_value(text, key)?.parse().ok()
}

/// Scans a string field.
#[must_use]
pub fn field_str(text: &str, key: &str) -> Option<String> {
    let raw = raw_value(text, key)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let reg = MetricsRegistry::new();
        reg.counter("rar_sweep_cells_simulated_total").add(6);
        let mut b = ManifestBuilder::new("rar-experiments", "0.1.0");
        b.set_u64("threads", 4)
            .set_u64("cells_completed", 6)
            .set_u64("cells_simulated", 6)
            .set_f64("cache_hit_rate", 0.0)
            .set_f64("runs_per_second", 12.5)
            .set_f64("wall_seconds", 0.48)
            .set_str_array(
                "workloads",
                vec!["milc".to_owned(), "mcf".to_owned(), "milc".to_owned()],
            )
            .set_str_array("fingerprints", vec!["deadbeefdeadbeef".to_owned()]);
        b.render(&reg)
    }

    #[test]
    fn rendered_manifest_validates_cleanly() {
        let text = sample();
        assert_eq!(validate_manifest(&text), Vec::<String>::new(), "{text}");
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn arrays_are_sorted_and_deduplicated() {
        let text = sample();
        assert!(
            text.contains("\"workloads\": [\"mcf\", \"milc\"]"),
            "{text}"
        );
    }

    #[test]
    fn fields_scan_back_out() {
        let text = sample();
        assert_eq!(field_str(&text, "tool").as_deref(), Some("rar-experiments"));
        assert_eq!(field_u64(&text, "threads"), Some(4));
        assert_eq!(field_f64(&text, "runs_per_second"), Some(12.5));
        assert_eq!(field_u64(&text, "rar_sweep_cells_simulated_total"), None);
    }

    #[test]
    fn validation_reports_missing_keys_and_bad_schema() {
        let text = sample();
        let broken = text.replace("\"threads\": 4", "\"threads\": 0");
        assert!(validate_manifest(&broken)
            .iter()
            .any(|p| p.contains("threads")));
        let wrong = text.replace(MANIFEST_SCHEMA, "rar-manifest-v999");
        assert!(validate_manifest(&wrong)
            .iter()
            .any(|p| p.contains("expected")));
        let missing = text.replace("\"wall_seconds\"", "\"wall_secs\"");
        assert!(validate_manifest(&missing)
            .iter()
            .any(|p| p.contains("wall_seconds")));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample(), sample());
    }
}
