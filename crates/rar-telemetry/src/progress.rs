//! Live heartbeat progress reporting for long sweeps.
//!
//! A [`ProgressReporter`] turns raw session counters into a single
//! human-readable heartbeat line — completed/total, cache hit rate,
//! throughput, ETA, and worker utilization — rate-limited to one line
//! every `interval`. The caller owns the counters and the output stream;
//! the reporter only decides *when* a line is due and how it reads, so it
//! is trivially testable and never prints from library code paths.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Raw inputs for one heartbeat, snapshotted by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgressSnapshot {
    /// Cells finished so far (simulated + cache replays).
    pub completed: u64,
    /// Of those, cells replayed from the result cache.
    pub cache_hits: u64,
    /// Cells that panicked and were excluded.
    pub failed: u64,
    /// Sum of busy wall-clock nanoseconds across all workers.
    pub busy_nanos: u64,
    /// Worker thread count.
    pub threads: u64,
}

/// Rate-limited formatter of sweep heartbeat lines.
#[derive(Debug)]
pub struct ProgressReporter {
    total: u64,
    interval: Duration,
    started: Instant,
    last_beat: Mutex<Option<Instant>>,
}

impl ProgressReporter {
    /// A reporter for a sweep of `total` cells, emitting at most one
    /// heartbeat per `interval`. A zero interval disables heartbeats
    /// entirely (the final summary line is still available).
    #[must_use]
    pub fn new(total: u64, interval: Duration) -> Self {
        ProgressReporter {
            total,
            interval,
            started: Instant::now(),
            last_beat: Mutex::new(None),
        }
    }

    /// Reads the heartbeat interval from `RAR_PROGRESS_SECS` (seconds;
    /// `0` disables), defaulting to 5 s.
    #[must_use]
    pub fn from_env(total: u64) -> Self {
        let secs = std::env::var("RAR_PROGRESS_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v >= 0.0)
            .unwrap_or(5.0);
        ProgressReporter::new(total, Duration::from_secs_f64(secs))
    }

    /// The heartbeat line if one is due, `None` otherwise. Thread-safe:
    /// concurrent callers race on an internal timestamp and at most one
    /// wins per interval.
    pub fn heartbeat(&self, snap: &ProgressSnapshot) -> Option<String> {
        if self.interval.is_zero() {
            return None;
        }
        let now = Instant::now();
        {
            let mut last = self.last_beat.lock().expect("heartbeat lock");
            let due = last.is_none_or(|t| now.duration_since(t) >= self.interval);
            if !due {
                return None;
            }
            *last = Some(now);
        }
        Some(self.line(snap))
    }

    /// The summary line for the end of a sweep (not rate-limited).
    #[must_use]
    pub fn final_line(&self, snap: &ProgressSnapshot) -> String {
        self.line(snap)
    }

    /// An immediate failure report: the event plus the same progress
    /// context a heartbeat carries. Never rate-limited — a worker that
    /// panicked or timed out must surface the moment it happens, not at
    /// the end of the sweep. Restarts the heartbeat interval so the next
    /// periodic line does not immediately duplicate this one.
    pub fn failure(&self, what: &str, snap: &ProgressSnapshot) -> String {
        *self.last_beat.lock().expect("heartbeat lock") = Some(Instant::now());
        format!("{} | {what}", self.line(snap))
    }

    fn line(&self, snap: &ProgressSnapshot) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let pct = if self.total == 0 {
            100.0
        } else {
            snap.completed as f64 * 100.0 / self.total as f64
        };
        let hit_rate = if snap.completed == 0 {
            0.0
        } else {
            snap.cache_hits as f64 * 100.0 / snap.completed as f64
        };
        let rate = if elapsed > 0.0 {
            snap.completed as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(snap.completed);
        let eta = if rate > 0.0 {
            remaining as f64 / rate
        } else {
            0.0
        };
        let util = if elapsed > 0.0 && snap.threads > 0 {
            (snap.busy_nanos as f64 / 1e9 / elapsed).min(snap.threads as f64)
        } else {
            0.0
        };
        let failed = if snap.failed > 0 {
            format!(" | {} FAILED", snap.failed)
        } else {
            String::new()
        };
        format!(
            "[rar-sim] {}/{} ({pct:.0}%) | cache {hit_rate:.0}% | {rate:.1} runs/s | \
             eta {eta:.0}s | util {util:.1}/{} threads{failed}",
            snap.completed, self.total, snap.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(completed: u64, cache_hits: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            completed,
            cache_hits,
            failed: 0,
            busy_nanos: 0,
            threads: 4,
        }
    }

    #[test]
    fn zero_interval_disables_heartbeats() {
        let p = ProgressReporter::new(10, Duration::ZERO);
        assert!(p.heartbeat(&snap(5, 0)).is_none());
        // The final line still renders.
        assert!(p.final_line(&snap(10, 0)).contains("10/10"));
    }

    #[test]
    fn first_heartbeat_fires_immediately_then_rate_limits() {
        let p = ProgressReporter::new(10, Duration::from_secs(3600));
        assert!(p.heartbeat(&snap(1, 0)).is_some());
        assert!(p.heartbeat(&snap(2, 0)).is_none(), "inside the interval");
    }

    #[test]
    fn line_is_robust_to_zero_everything() {
        let p = ProgressReporter::new(0, Duration::from_secs(1));
        let line = p.final_line(&ProgressSnapshot::default());
        assert!(line.contains("0/0 (100%)"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn failure_lines_bypass_rate_limiting_and_reset_cadence() {
        let p = ProgressReporter::new(10, Duration::from_secs(3600));
        assert!(p.heartbeat(&snap(1, 0)).is_some());
        // Inside the interval: heartbeats are suppressed, failures never.
        assert!(p.heartbeat(&snap(2, 0)).is_none());
        let line = p.failure("cell mcf/Rar panicked", &snap(2, 0));
        assert!(line.contains("cell mcf/Rar panicked"), "{line}");
        assert!(line.contains("2/10"), "{line}");
        let again = p.failure("cell mcf/Rar timed out", &snap(3, 0));
        assert!(again.contains("timed out"), "{line}");
        // The failure restarted the heartbeat cadence.
        assert!(p.heartbeat(&snap(4, 0)).is_none());
    }

    #[test]
    fn line_reports_cache_rate_and_failures() {
        let p = ProgressReporter::new(100, Duration::from_secs(1));
        let line = p.final_line(&ProgressSnapshot {
            completed: 50,
            cache_hits: 25,
            failed: 2,
            busy_nanos: 0,
            threads: 8,
        });
        assert!(line.contains("50/100 (50%)"), "{line}");
        assert!(line.contains("cache 50%"), "{line}");
        assert!(line.contains("2 FAILED"), "{line}");
    }
}
