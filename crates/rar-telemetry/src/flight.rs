//! Crash flight recorder: a fixed-size ring of recent events, dumped as
//! a JSON post-mortem when a worker dies.
//!
//! Long campaigns fail rarely and late — a panic deep in a sweep cell, a
//! watchdog kill, an injection run classified DUE. By then the logs that
//! would explain it have scrolled away. A [`FlightRecorder`] keeps the
//! last [`DEFAULT_FLIGHT_CAPACITY`] notable events (span boundaries,
//! heartbeats, the exact config being simulated) in a bounded ring and
//! renders them on demand as a `rar-flight-v1` JSON document that the
//! daemon attaches to the failed job and writes next to the run manifest.
//!
//! Like every telemetry type here it is cheap, lock-per-note, and
//! allocation-bounded: a recorder that is never dumped costs a ring of
//! short strings and nothing else.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag of the post-mortem document.
pub const FLIGHT_SCHEMA: &str = "rar-flight-v1";

/// Default ring capacity: enough for a few hundred cell boundaries, small
/// enough to dump inline into a job status document.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One recorded event: monotonic nanoseconds since the recorder was
/// created, a short machine-readable kind, and free-form detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder's epoch.
    pub nanos: u64,
    /// Event kind, e.g. `cell_start`, `heartbeat`, `cell_panic`.
    pub kind: String,
    /// Free-form detail (config fingerprint, panic message, ...).
    pub detail: String,
}

/// Bounded ring of recent [`FlightEvent`]s with a JSON post-mortem dump.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest when the ring is full.
    pub fn note(&self, kind: &str, detail: &str) {
        let nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = FlightEvent {
            nanos,
            kind: kind.to_owned(),
            detail: detail.to_owned(),
        };
        let mut ring = self.ring.lock().expect("flight ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring lock").len()
    }

    /// Whether nothing has been noted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted to stay within capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .expect("flight ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the post-mortem document:
    /// `{"schema":"rar-flight-v1","reason":...,"dropped":N,"events":[...]}`.
    #[must_use]
    pub fn dump_json(&self, reason: &str) -> String {
        let events = self.snapshot();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"reason\":\"{}\",\"dropped\":{},\"events\":[",
            FLIGHT_SCHEMA,
            esc(reason),
            self.dropped()
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"nanos\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.nanos,
                esc(&e.kind),
                esc(&e.detail)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.note("heartbeat", &format!("tick {i}"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let events = rec.snapshot();
        assert_eq!(events[0].detail, "tick 2");
        assert_eq!(events[2].detail, "tick 4");
        assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn dump_is_valid_flight_v1_json() {
        let rec = FlightRecorder::new(8);
        rec.note("cell_start", "mcf/rar");
        rec.note("cell_panic", "boom: \"quoted\"\nline two");
        let doc = rec.dump_json("panic");
        assert!(doc.starts_with("{\"schema\":\"rar-flight-v1\""));
        assert!(doc.contains("\"reason\":\"panic\""));
        assert!(doc.contains("\"kind\":\"cell_start\""));
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("\\n"));
        assert!(!doc.contains('\n'));
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn empty_recorder_dumps_empty_events() {
        let rec = FlightRecorder::default();
        assert!(rec.is_empty());
        assert_eq!(rec.dump_json("watchdog"), format!("{{\"schema\":\"{FLIGHT_SCHEMA}\",\"reason\":\"watchdog\",\"dropped\":0,\"events\":[]}}"));
    }

    #[test]
    fn capacity_floor_is_one() {
        let rec = FlightRecorder::new(0);
        rec.note("a", "");
        rec.note("b", "");
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.snapshot()[0].kind, "b");
    }
}
