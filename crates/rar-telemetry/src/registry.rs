//! The metrics registry: named counters, gauges, and log2-bucket
//! histograms behind cheap atomic handles.
//!
//! Registration takes a short-lived lock on the name table; after that,
//! every update is a single relaxed atomic operation on an `Arc`-shared
//! cell, so instrumented hot paths never contend on the registry itself.
//! Re-registering a name returns a handle to the *same* cell, which makes
//! instrumentation sites independent of initialization order.
//!
//! Exports are deterministic: [`MetricsRegistry::snapshot`] walks the
//! name table in sorted (BTreeMap) order, so JSON and Prometheus text
//! renderings of one registry state are byte-stable regardless of
//! registration order or thread count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets; bucket `i` covers values
/// `v <= 2^i`, and one extra overflow bucket catches the rest.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Counters only ever grow; there is no decrement or reset,
    /// which is what makes the exported value monotone under concurrency.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge. Non-finite values are clamped to `0.0` so exports
    /// never contain `NaN`/`inf` (JSON has no spelling for them).
    pub fn set(&self, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram of `u64` observations in power-of-two buckets.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Cheap cloneable handle to a registered histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

/// Index of the first bucket whose upper bound (`2^i`) holds `v`, or
/// `HISTOGRAM_BUCKETS` for the overflow bucket.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    // First i with v <= 2^i, i.e. ceil(log2 v).
    let i = 64 - (v - 1).leading_zeros() as usize;
    i.min(HISTOGRAM_BUCKETS)
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        let idx = bucket_index(v);
        if idx < HISTOGRAM_BUCKETS {
            core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            core.overflow.fetch_add(1, Ordering::Relaxed);
        }
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
            overflow: core.overflow.load(Ordering::Relaxed),
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram (non-cumulative buckets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts observations `v` with `prev < v <= 2^i`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Observations above the last finite bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Last gauge value.
    Gauge(f64),
    /// Histogram state (boxed: a snapshot carries 64 bucket slots).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics with deterministic, sorted export order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, creating it at zero on first
    /// use. Panics if `name` is already registered as a different kind —
    /// that is an instrumentation bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// The gauge registered under `name` (see [`MetricsRegistry::counter`]
    /// for the registration rules).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// The histogram registered under `name` (see
    /// [`MetricsRegistry::counter`] for the registration rules).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Point-in-time values of every registered metric, sorted by name.
    /// Both exporters consume exactly this list, so they can never
    /// disagree about which metrics exist.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().expect("registry lock");
        map.iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").len()
    }

    /// Whether no metric is registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reregistration_shares_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("cells_total");
        let b = reg.counter("cells_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauges_clamp_non_finite_values() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("utilization");
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-12);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0);
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_bucket_bounds_are_powers_of_two() {
        // v <= 2^i lands in bucket i (first matching bound).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("nanos");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap = match &reg.snapshot()[0].1 {
            MetricValue::Histogram(s) => s.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(snap.buckets[0], 2); // 0, 1
        assert_eq!(snap.buckets[1], 1); // 2
        assert_eq!(snap.buckets[2], 1); // 3
        assert_eq!(snap.buckets[10], 1); // 1000 <= 1024
        assert_eq!(snap.overflow, 0);
        assert_eq!(snap.buckets.iter().sum::<u64>() + snap.overflow, snap.count);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("zebra");
        reg.gauge("alpha");
        reg.histogram("mid");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_instrumentation_bugs() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shared");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
