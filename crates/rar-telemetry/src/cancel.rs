//! Cooperative cancellation for long-lived engines.
//!
//! A [`CancelToken`] is a cloneable handle to one shared flag. Producers
//! (a serve daemon's `DELETE /v1/jobs/{id}` handler, a Ctrl-C handler, a
//! test) call [`CancelToken::cancel`]; long-running consumers (the sweep
//! scheduler's worker loop, the fault-injection campaign's per-injection
//! loop) poll [`CancelToken::is_canceled`] at their natural unit-of-work
//! boundaries and wind down without tearing anything: finished results
//! stay published, caches and journals stay consistent, and unfinished
//! work is simply never claimed.
//!
//! Cancellation is *cooperative and monotonic*: once set, the flag never
//! clears, so every observer converges on the same decision regardless of
//! polling order. The token is deliberately not a mechanism for aborting
//! a unit of work mid-flight — a cell that already started simulating
//! runs to completion (and lands in the result cache, where a resubmitted
//! job replays it for free).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe cancellation flag.
///
/// Clones share the flag: canceling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-canceled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Sets the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[must_use]
    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_not_canceled() {
        assert!(!CancelToken::new().is_canceled());
    }

    #[test]
    fn cancel_is_shared_across_clones_and_idempotent() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        a.cancel();
        assert!(a.is_canceled());
        assert!(b.is_canceled(), "clones share the flag");
        let c = b.clone();
        assert!(c.is_canceled(), "clones of canceled tokens stay canceled");
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                while !observer.is_canceled() {
                    std::thread::yield_now();
                }
            });
            token.cancel();
        });
        assert!(token.is_canceled());
    }
}
