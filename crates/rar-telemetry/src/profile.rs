//! Zero-cost-when-off self-profiling scopes.
//!
//! The same monomorphization trick as `rar_trace::NullSink`: code that
//! wants to be profiled is generic over a [`Profiler`] whose associated
//! `ENABLED` constant gates every timing site. With [`NullProfiler`] the
//! guard is `if false`, so the `Instant::now()` calls — and the scope
//! guards around them — compile to nothing; a default build is exactly
//! the pre-instrumentation binary. With [`WallProfiler`] each scope costs
//! two clock reads and one relaxed atomic add.

use crate::registry::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Host-side phases wall-clock time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Workload trace-prefix generation (and growth).
    TraceGen,
    /// Cycle-level core simulation of one cell.
    CoreSim,
    /// Dead-value liveness refinement (`rar_verify::analyze`).
    Liveness,
    /// On-disk result-cache lookups.
    CacheProbe,
    /// On-disk result-cache stores (including entry encoding).
    CacheStore,
    /// Serialization of reports (bench JSON, manifests, exports).
    Serialize,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::TraceGen,
        Phase::CoreSim,
        Phase::Liveness,
        Phase::CacheProbe,
        Phase::CacheStore,
        Phase::Serialize,
    ];

    /// Number of phases.
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable snake_case name, used as the metric-name stem.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::TraceGen => "trace_gen",
            Phase::CoreSim => "core_sim",
            Phase::Liveness => "liveness",
            Phase::CacheProbe => "cache_probe",
            Phase::CacheStore => "cache_store",
            Phase::Serialize => "serialize",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Receiver of phase timings. `ENABLED == false` implementations make
/// every timing site compile away.
pub trait Profiler: Sync + std::fmt::Debug {
    /// Whether timing sites observe anything at all. Checked as a
    /// constant, so disabled profiling costs nothing at runtime.
    const ENABLED: bool = true;

    /// Attributes `nanos` of wall-clock time to `phase`.
    fn record(&self, phase: Phase, nanos: u64);

    /// Publishes accumulated timings into `registry` (no-op by default;
    /// [`WallProfiler`] exports its per-phase totals).
    fn publish(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }
}

/// The zero-overhead default: drops everything, `ENABLED == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _phase: Phase, _nanos: u64) {}
}

/// Accumulates wall-clock nanoseconds and scope counts per [`Phase`].
#[derive(Debug, Default)]
pub struct WallProfiler {
    nanos: [AtomicU64; Phase::COUNT],
    calls: [AtomicU64; Phase::COUNT],
}

impl WallProfiler {
    /// A profiler with all phases at zero.
    #[must_use]
    pub fn new() -> Self {
        WallProfiler::default()
    }

    /// Total nanoseconds attributed to `phase` so far.
    #[must_use]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()].load(Ordering::Relaxed)
    }

    /// Number of scopes recorded for `phase` so far.
    #[must_use]
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()].load(Ordering::Relaxed)
    }

    /// Publishes the per-phase totals into `registry` as
    /// `rar_profile_<phase>_nanos_total` / `rar_profile_<phase>_calls_total`
    /// counters (overwritten-by-add semantics: call once per export).
    pub fn record_into(&self, registry: &MetricsRegistry) {
        for phase in Phase::ALL {
            let nanos = registry.counter(&format!("rar_profile_{}_nanos_total", phase.name()));
            let calls = registry.counter(&format!("rar_profile_{}_calls_total", phase.name()));
            nanos.add(self.nanos(phase).saturating_sub(nanos.get()));
            calls.add(self.calls(phase).saturating_sub(calls.get()));
        }
    }
}

impl Profiler for WallProfiler {
    fn record(&self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
        self.calls[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn publish(&self, registry: &MetricsRegistry) {
        self.record_into(registry);
    }
}

/// Forward timings through a reference, so a shared profiler can be used
/// from scoped worker threads.
impl<P: Profiler> Profiler for &P {
    const ENABLED: bool = P::ENABLED;

    fn record(&self, phase: Phase, nanos: u64) {
        (**self).record(phase, nanos);
    }

    fn publish(&self, registry: &MetricsRegistry) {
        (**self).publish(registry);
    }
}

/// RAII scope: started on construction, attributed on drop. With a
/// disabled profiler the clock is never read and drop is a no-op.
#[derive(Debug)]
pub struct ScopeTimer<'p, P: Profiler> {
    profiler: &'p P,
    phase: Phase,
    started: Option<Instant>,
}

impl<'p, P: Profiler> ScopeTimer<'p, P> {
    /// Starts timing `phase` (a no-op when `P::ENABLED` is false).
    pub fn start(profiler: &'p P, phase: Phase) -> Self {
        ScopeTimer {
            profiler,
            phase,
            started: P::ENABLED.then(Instant::now),
        }
    }
}

impl<P: Profiler> Drop for ScopeTimer<'_, P> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.profiler.record(self.phase, nanos);
        }
    }
}

/// Times `f` under `phase` and returns its result.
pub fn time<P: Profiler, R>(profiler: &P, phase: Phase, f: impl FnOnce() -> R) -> R {
    let _scope = ScopeTimer::start(profiler, phase);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_profiler_is_disabled_and_never_reads_the_clock() {
        const { assert!(!NullProfiler::ENABLED) };
        let scope = ScopeTimer::start(&NullProfiler, Phase::CoreSim);
        assert!(scope.started.is_none());
    }

    #[test]
    fn wall_profiler_attributes_time_to_the_right_phase() {
        let prof = WallProfiler::new();
        time(&prof, Phase::CacheProbe, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(prof.nanos(Phase::CacheProbe) >= 1_000_000);
        assert_eq!(prof.calls(Phase::CacheProbe), 1);
        assert_eq!(prof.nanos(Phase::CoreSim), 0);
        assert_eq!(prof.calls(Phase::CoreSim), 0);
    }

    #[test]
    fn record_into_publishes_every_phase_and_is_idempotent() {
        let prof = WallProfiler::new();
        prof.record(Phase::TraceGen, 10);
        prof.record(Phase::TraceGen, 5);
        let reg = MetricsRegistry::new();
        prof.record_into(&reg);
        prof.record_into(&reg);
        assert_eq!(reg.counter("rar_profile_trace_gen_nanos_total").get(), 15);
        assert_eq!(reg.counter("rar_profile_trace_gen_calls_total").get(), 2);
        // Every phase appears even at zero, so dashboards see stable keys.
        assert_eq!(reg.len(), 2 * Phase::COUNT);
    }

    #[test]
    fn phase_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }
}
