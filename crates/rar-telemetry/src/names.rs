//! Canonical metric names registered by the workspace.
//!
//! Every sweep-engine metric name lives here as a `const`, for two
//! reasons: instrumentation sites and dashboards can never drift apart
//! on spelling, and `cargo xtask lint` scans this file to assert each
//! declared name is actually registered somewhere in the workspace (a
//! declared-but-never-registered metric is rot, exactly like a tallied-
//! but-never-exported stat counter).
//!
//! Naming follows Prometheus conventions: `_total` for monotone
//! counters, a bare name for gauges, `_nanos` histograms observe
//! nanoseconds.

/// Cells actually simulated (disk-cache misses).
pub const SWEEP_CELLS_SIMULATED: &str = "rar_sweep_cells_simulated_total";
/// Cells replayed from the on-disk result cache.
pub const SWEEP_CACHE_HITS: &str = "rar_sweep_cache_hits_total";
/// Cells rejected by validation before simulation.
pub const SWEEP_CELLS_REJECTED: &str = "rar_sweep_cells_rejected_total";
/// Cells excluded because their simulation panicked.
pub const SWEEP_CELLS_FAILED: &str = "rar_sweep_cells_failed_total";
/// Trace prefixes served from the in-memory memoization store.
pub const SWEEP_TRACE_MEMO_HITS: &str = "rar_sweep_trace_memo_hits_total";
/// Trace prefixes generated or grown (memoization misses).
pub const SWEEP_TRACE_MEMO_MISSES: &str = "rar_sweep_trace_memo_misses_total";
/// Refinements served from the in-memory memoization store.
pub const SWEEP_REFINEMENT_MEMO_HITS: &str = "rar_sweep_refinement_memo_hits_total";
/// Refinements computed fresh (memoization misses).
pub const SWEEP_REFINEMENT_MEMO_MISSES: &str = "rar_sweep_refinement_memo_misses_total";
/// Wall-clock nanoseconds spent inside `SweepSession::run_all`.
pub const SWEEP_WALL_NANOS: &str = "rar_sweep_wall_nanos_total";
/// Worker threads used by the most recent sweep (gauge).
pub const SWEEP_THREADS: &str = "rar_sweep_threads";
/// Per-cell wall-clock nanoseconds (histogram; profiled sessions only).
pub const SWEEP_CELL_NANOS: &str = "rar_sweep_cell_nanos";
/// Sum of busy worker nanoseconds across the most recent sweep.
pub const SWEEP_BUSY_NANOS: &str = "rar_sweep_busy_nanos_total";

/// Every canonical name above, for exhaustive registration and tests.
pub const ALL: [&str; 12] = [
    SWEEP_CELLS_SIMULATED,
    SWEEP_CACHE_HITS,
    SWEEP_CELLS_REJECTED,
    SWEEP_CELLS_FAILED,
    SWEEP_TRACE_MEMO_HITS,
    SWEEP_TRACE_MEMO_MISSES,
    SWEEP_REFINEMENT_MEMO_HITS,
    SWEEP_REFINEMENT_MEMO_MISSES,
    SWEEP_WALL_NANOS,
    SWEEP_THREADS,
    SWEEP_CELL_NANOS,
    SWEEP_BUSY_NANOS,
];

#[cfg(test)]
mod tests {
    use super::ALL;
    use crate::export::sanitize_metric_name;

    #[test]
    fn names_are_unique_and_prometheus_clean() {
        let mut sorted = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len());
        for name in ALL {
            assert_eq!(sanitize_metric_name(name), name, "{name} needs sanitizing");
            assert!(name.starts_with("rar_"), "{name} missing rar_ prefix");
        }
    }
}
