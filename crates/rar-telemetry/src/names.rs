//! Canonical metric names registered by the workspace.
//!
//! Every sweep-engine metric name lives here as a `const`, for two
//! reasons: instrumentation sites and dashboards can never drift apart
//! on spelling, and `cargo xtask lint` scans this file to assert each
//! declared name is actually registered somewhere in the workspace (a
//! declared-but-never-registered metric is rot, exactly like a tallied-
//! but-never-exported stat counter).
//!
//! Naming follows Prometheus conventions: `_total` for monotone
//! counters, a bare name for gauges, `_nanos` histograms observe
//! nanoseconds.

/// Cells actually simulated (disk-cache misses).
pub const SWEEP_CELLS_SIMULATED: &str = "rar_sweep_cells_simulated_total";
/// Cells replayed from the on-disk result cache.
pub const SWEEP_CACHE_HITS: &str = "rar_sweep_cache_hits_total";
/// Cells rejected by validation before simulation.
pub const SWEEP_CELLS_REJECTED: &str = "rar_sweep_cells_rejected_total";
/// Cells excluded because their simulation panicked.
pub const SWEEP_CELLS_FAILED: &str = "rar_sweep_cells_failed_total";
/// Trace prefixes served from the in-memory memoization store.
pub const SWEEP_TRACE_MEMO_HITS: &str = "rar_sweep_trace_memo_hits_total";
/// Trace prefixes generated or grown (memoization misses).
pub const SWEEP_TRACE_MEMO_MISSES: &str = "rar_sweep_trace_memo_misses_total";
/// Refinements served from the in-memory memoization store.
pub const SWEEP_REFINEMENT_MEMO_HITS: &str = "rar_sweep_refinement_memo_hits_total";
/// Refinements computed fresh (memoization misses).
pub const SWEEP_REFINEMENT_MEMO_MISSES: &str = "rar_sweep_refinement_memo_misses_total";
/// Wall-clock nanoseconds spent inside `SweepSession::run_all`.
pub const SWEEP_WALL_NANOS: &str = "rar_sweep_wall_nanos_total";
/// Worker threads used by the most recent sweep (gauge).
pub const SWEEP_THREADS: &str = "rar_sweep_threads";
/// Per-cell wall-clock nanoseconds (histogram; profiled sessions only).
pub const SWEEP_CELL_NANOS: &str = "rar_sweep_cell_nanos";
/// Sum of busy worker nanoseconds across the most recent sweep.
pub const SWEEP_BUSY_NANOS: &str = "rar_sweep_busy_nanos_total";
/// Cells excluded because the per-run watchdog expired.
pub const SWEEP_RUN_TIMEOUTS: &str = "rar_sweep_run_timeouts_total";
/// Transient disk-cache I/O errors absorbed by retry-with-backoff.
pub const SWEEP_CACHE_IO_ERRORS: &str = "rar_sweep_cache_io_errors_total";
/// The disk cache was switched off mid-sweep after persistent I/O errors
/// (gauge: 0 healthy, 1 disabled).
pub const SWEEP_CACHE_DISABLED: &str = "rar_sweep_cache_disabled";
/// Cells that subscribed to an identical in-flight simulation instead of
/// starting a duplicate one (single-flight deduplication).
pub const SWEEP_INFLIGHT_WAITS: &str = "rar_sweep_inflight_waits_total";
/// Cells skipped because the sweep's cancellation token was set before
/// they were claimed.
pub const SWEEP_CELLS_CANCELED: &str = "rar_sweep_cells_canceled_total";
/// Disk-cache circuit-breaker state (gauge: 0 closed, 1 open,
/// 2 half-open).
pub const SWEEP_CACHE_BREAKER_STATE: &str = "rar_sweep_cache_breaker_state";
/// Times the disk-cache circuit breaker tripped open after exhausted
/// retries.
pub const SWEEP_CACHE_BREAKER_TRIPS: &str = "rar_sweep_cache_breaker_trips_total";

/// Every sweep-engine name above, for exhaustive registration and tests.
pub const ALL: [&str; 19] = [
    SWEEP_CELLS_SIMULATED,
    SWEEP_CACHE_HITS,
    SWEEP_CELLS_REJECTED,
    SWEEP_CELLS_FAILED,
    SWEEP_TRACE_MEMO_HITS,
    SWEEP_TRACE_MEMO_MISSES,
    SWEEP_REFINEMENT_MEMO_HITS,
    SWEEP_REFINEMENT_MEMO_MISSES,
    SWEEP_WALL_NANOS,
    SWEEP_THREADS,
    SWEEP_CELL_NANOS,
    SWEEP_BUSY_NANOS,
    SWEEP_RUN_TIMEOUTS,
    SWEEP_CACHE_IO_ERRORS,
    SWEEP_CACHE_DISABLED,
    SWEEP_INFLIGHT_WAITS,
    SWEEP_CELLS_CANCELED,
    SWEEP_CACHE_BREAKER_STATE,
    SWEEP_CACHE_BREAKER_TRIPS,
];

/// Fault injections executed (every outcome).
pub const INJECT_RUNS: &str = "rar_inject_runs_total";
/// Injections classified masked (golden-identical architectural results).
pub const INJECT_MASKED: &str = "rar_inject_masked_total";
/// Injections classified silent data corruption.
pub const INJECT_SDC: &str = "rar_inject_sdc_total";
/// Injections classified detected/unrecoverable (panic, hang, deadline).
pub const INJECT_DUE: &str = "rar_inject_due_total";
/// Injections replayed from the campaign journal on resume.
pub const INJECT_RESUMED: &str = "rar_inject_resumed_total";
/// Transient failures (executor runs, journal appends) absorbed by
/// retry-with-backoff.
pub const INJECT_RETRIES: &str = "rar_inject_retries_total";
/// Batched journal fsyncs issued.
pub const INJECT_JOURNAL_FLUSHES: &str = "rar_inject_journal_flushes_total";
/// Journal writes abandoned after exhausting retries (campaign degrades
/// to in-memory tallies; resume from that point is impossible).
pub const INJECT_JOURNAL_ERRORS: &str = "rar_inject_journal_errors_total";

/// Every campaign-runner name above (registered by `rar-inject`, not the
/// sweep engine — kept out of [`ALL`] so sweep-session export coverage
/// stays exact).
pub const INJECT_ALL: [&str; 8] = [
    INJECT_RUNS,
    INJECT_MASKED,
    INJECT_SDC,
    INJECT_DUE,
    INJECT_RESUMED,
    INJECT_RETRIES,
    INJECT_JOURNAL_FLUSHES,
    INJECT_JOURNAL_ERRORS,
];

/// HTTP requests accepted by the serve daemon (every route and status).
pub const SERVE_HTTP_REQUESTS: &str = "rar_serve_http_requests_total";
/// Jobs accepted onto the queue (`POST /v1/jobs`), including jobs
/// re-enqueued from the journal on restart.
pub const SERVE_JOBS_SUBMITTED: &str = "rar_serve_jobs_submitted_total";
/// Jobs that ran every unit of work to completion.
pub const SERVE_JOBS_COMPLETED: &str = "rar_serve_jobs_completed_total";
/// Jobs cooperatively canceled before completing.
pub const SERVE_JOBS_CANCELED: &str = "rar_serve_jobs_canceled_total";
/// Jobs that finished with at least one failed unit of work.
pub const SERVE_JOBS_FAILED: &str = "rar_serve_jobs_failed_total";
/// Jobs re-enqueued from the queue journal by a restarted daemon.
pub const SERVE_JOBS_RESUMED: &str = "rar_serve_jobs_resumed_total";
/// Jobs currently queued or running (gauge).
pub const SERVE_JOBS_ACTIVE: &str = "rar_serve_jobs_active";
/// Worker threads in the daemon's shared pool (gauge).
pub const SERVE_WORKERS: &str = "rar_serve_workers";
/// Per-endpoint HTTP request latency (histogram, labeled by `endpoint`).
pub const SERVE_REQUEST_NANOS: &str = "rar_serve_request_nanos";
/// Seconds the most recently claimed job spent waiting on the queue
/// (gauge).
pub const SERVE_QUEUE_WAIT_SECONDS: &str = "rar_serve_queue_wait_seconds";
/// Submissions rejected with 429 because the bounded queue was full.
pub const SERVE_JOBS_REJECTED: &str = "rar_serve_jobs_rejected_total";
/// Panicked worker threads respawned by their supervisor.
pub const SERVE_WORKER_RESTARTS: &str = "rar_serve_worker_restarts_total";
/// Transient queue-journal append failures absorbed by
/// retry-with-backoff.
pub const SERVE_JOURNAL_RETRIES: &str = "rar_serve_journal_retries_total";
/// Faults injected by the chaos fabric, labeled by fail-point `site`.
/// Exported straight from `rar-chaos` by the daemon's `/metrics` route
/// (zero series in production builds, where the fabric compiles away).
pub const CHAOS_INJECTIONS: &str = "rar_chaos_injections_total";

/// Every serve-daemon name above (registered by `rar-serve`; kept out of
/// [`ALL`] so sweep-session export coverage stays exact).
pub const SERVE_ALL: [&str; 13] = [
    SERVE_HTTP_REQUESTS,
    SERVE_JOBS_SUBMITTED,
    SERVE_JOBS_COMPLETED,
    SERVE_JOBS_CANCELED,
    SERVE_JOBS_FAILED,
    SERVE_JOBS_RESUMED,
    SERVE_JOBS_ACTIVE,
    SERVE_WORKERS,
    SERVE_REQUEST_NANOS,
    SERVE_QUEUE_WAIT_SECONDS,
    SERVE_JOBS_REJECTED,
    SERVE_WORKER_RESTARTS,
    SERVE_JOURNAL_RETRIES,
];

#[cfg(test)]
mod tests {
    use super::{ALL, CHAOS_INJECTIONS, INJECT_ALL, SERVE_ALL};
    use crate::export::sanitize_metric_name;

    #[test]
    fn names_are_unique_and_prometheus_clean() {
        let all: Vec<&str> = ALL
            .iter()
            .chain(INJECT_ALL.iter())
            .chain(SERVE_ALL.iter())
            .chain(std::iter::once(&CHAOS_INJECTIONS))
            .copied()
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
        for name in all {
            assert_eq!(sanitize_metric_name(name), name, "{name} needs sanitizing");
            assert!(name.starts_with("rar_"), "{name} missing rar_ prefix");
        }
    }
}
