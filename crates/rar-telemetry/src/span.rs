//! Causal span tracing: parent/child wall-clock spans with monotonic
//! timestamps, recorded cheaply enough to leave on in a daemon.
//!
//! The same zero-cost-when-off contract as [`crate::Profiler`]:
//! code that wants spans is generic over a [`SpanRecorder`] whose
//! `ENABLED` constant gates every site, so with [`NullRecorder`] the
//! clock is never read and the instrumented binary is bit-identical to
//! the uninstrumented one. The recording implementation, [`SpanLog`],
//! appends into a bounded in-memory log that a live endpoint can snapshot
//! at any time (the serve daemon renders one job's subtree as a Chrome
//! trace at `/v1/jobs/{id}/trace`).
//!
//! Span identity is positional: ids are assigned in append order under
//! the log lock, timestamps are nanoseconds since the log's epoch (one
//! `Instant`, so they are monotonic and comparable across threads), and
//! parent links form a forest — `request → queue_wait`/`job → cell →
//! phase` in the daemon.

use crate::profile::{Phase, Profiler};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Every span name the workspace records, for the `span-names` repo lint:
/// each [`Phase`] has its leaf-span name here, plus the daemon's
/// request/queue/job/cell levels. A span recorded under a name missing
/// from this list is invisible to dashboards that key on it.
pub const SPAN_NAMES: [&str; 10] = [
    "request",
    "queue_wait",
    "job",
    "cell",
    "trace_gen",
    "core_sim",
    "liveness",
    "cache_probe",
    "cache_store",
    "serialize",
];

/// Handle to one recorded span. `SpanId::NONE` means "no span" (a root,
/// or any id minted by a disabled recorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span: roots have it as parent; [`NullRecorder`] returns
    /// it from every start.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real span (minted by a recording recorder).
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Receiver of spans. `ENABLED == false` implementations make every
/// recording site compile away, like [`NullProfiler`](crate::NullProfiler).
pub trait SpanRecorder: Sync + std::fmt::Debug {
    /// Whether recording sites observe anything at all.
    const ENABLED: bool = true;

    /// Opens a span named `name` under `parent` (or a root for
    /// [`SpanId::NONE`]), starting now.
    fn start(&self, name: &str, parent: SpanId) -> SpanId;

    /// Closes `span`, ending now. Closing [`SpanId::NONE`] or an already
    /// closed span is a no-op.
    fn finish(&self, span: SpanId);

    /// Records an already-elapsed leaf span of `dur_nanos` ending now —
    /// the shape scope timers produce (duration known only at drop).
    fn leaf(&self, name: &str, parent: SpanId, dur_nanos: u64);
}

/// The zero-overhead default: drops everything, `ENABLED == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl SpanRecorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn start(&self, _name: &str, _parent: SpanId) -> SpanId {
        SpanId::NONE
    }

    #[inline(always)]
    fn finish(&self, _span: SpanId) {}

    #[inline(always)]
    fn leaf(&self, _name: &str, _parent: SpanId, _dur_nanos: u64) {}
}

/// Forward spans through a reference, so one shared recorder can serve
/// scoped worker threads.
impl<R: SpanRecorder> SpanRecorder for &R {
    const ENABLED: bool = R::ENABLED;

    fn start(&self, name: &str, parent: SpanId) -> SpanId {
        (**self).start(name, parent)
    }

    fn finish(&self, span: SpanId) {
        (**self).finish(span);
    }

    fn leaf(&self, name: &str, parent: SpanId, dur_nanos: u64) {
        (**self).leaf(name, parent, dur_nanos);
    }
}

/// One recorded span: identity, causal parent, and monotonic timing
/// (nanoseconds since the owning log's epoch; `dur_nanos` is `None`
/// while the span is still open).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Positional id (1-based append order; 0 never occurs).
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Span name (one of [`SPAN_NAMES`] plus a free-form detail suffix).
    pub name: String,
    /// Start, in nanoseconds since the log epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds; `None` while open.
    pub dur_nanos: Option<u64>,
}

/// Most spans a log retains; later spans are counted as dropped. Bounds
/// daemon memory no matter how many jobs pass through.
pub const MAX_SPANS: usize = 1 << 16;

/// The recording [`SpanRecorder`]: a bounded append-only span log.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }
}

impl SpanLog {
    /// An empty log whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Nanoseconds elapsed since the log's epoch (the timescale of every
    /// span in it).
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Spans rejected because the log was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span log lock").len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time copy of every recorded span, in append order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().expect("span log lock").clone()
    }

    /// The subtree rooted at `root`: the root span followed by every
    /// transitive child, in append order. Empty if `root` was never
    /// recorded (dropped, or `NONE`).
    #[must_use]
    pub fn subtree(&self, root: SpanId) -> Vec<Span> {
        let spans = self.snapshot();
        let mut keep = vec![false; spans.len() + 1];
        if root.0 == 0 || root.0 as usize > spans.len() {
            return Vec::new();
        }
        keep[root.0 as usize] = true;
        // Ids are append-ordered, so one forward pass closes the set.
        let mut out = Vec::new();
        for s in spans {
            if s.id != root.0 && (s.parent == 0 || !keep[s.parent as usize]) {
                continue;
            }
            keep[s.id as usize] = true;
            out.push(s);
        }
        out
    }

    fn push(&self, span: Span) -> SpanId {
        let mut spans = self.spans.lock().expect("span log lock");
        if spans.len() >= MAX_SPANS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return SpanId::NONE;
        }
        let id = spans.len() as u64 + 1;
        spans.push(Span { id, ..span });
        SpanId(id)
    }
}

impl SpanRecorder for SpanLog {
    fn start(&self, name: &str, parent: SpanId) -> SpanId {
        let start_nanos = self.now_nanos();
        self.push(Span {
            id: 0,
            parent: parent.0,
            name: name.to_owned(),
            start_nanos,
            dur_nanos: None,
        })
    }

    fn finish(&self, span: SpanId) {
        if span.0 == 0 {
            return;
        }
        let end = self.now_nanos();
        let mut spans = self.spans.lock().expect("span log lock");
        if let Some(s) = spans.get_mut(span.0 as usize - 1) {
            if s.dur_nanos.is_none() {
                s.dur_nanos = Some(end.saturating_sub(s.start_nanos));
            }
        }
    }

    fn leaf(&self, name: &str, parent: SpanId, dur_nanos: u64) {
        let start_nanos = self.now_nanos().saturating_sub(dur_nanos);
        self.push(Span {
            id: 0,
            parent: parent.0,
            name: name.to_owned(),
            start_nanos,
            dur_nanos: Some(dur_nanos),
        });
    }
}

thread_local! {
    /// The span new leaf spans on this thread attach to (0 = none).
    static THREAD_PARENT: Cell<u64> = const { Cell::new(0) };
}

/// The current thread's leaf-span parent (set by [`ThreadParentGuard`]).
#[must_use]
pub fn thread_parent() -> SpanId {
    SpanId(THREAD_PARENT.with(Cell::get))
}

/// RAII scope making `span` the current thread's leaf-span parent; the
/// previous parent is restored on drop. This is how per-cell spans adopt
/// the [`Phase`] scopes fired deep inside the sweep engine without
/// threading a parent through every call.
#[derive(Debug)]
pub struct ThreadParentGuard {
    previous: u64,
}

impl ThreadParentGuard {
    /// Enters `span` as the thread's current parent.
    #[must_use]
    pub fn enter(span: SpanId) -> Self {
        let previous = THREAD_PARENT.with(|p| p.replace(span.0));
        ThreadParentGuard { previous }
    }
}

impl Drop for ThreadParentGuard {
    fn drop(&mut self) {
        THREAD_PARENT.with(|p| p.set(self.previous));
    }
}

/// A [`Profiler`] that records each phase scope as a leaf span under the
/// thread's current parent — how the daemon turns the sweep engine's
/// existing `ScopeTimer` sites into `cell → phase` leaves. Results stay
/// bit-identical: like every profiler, it only observes wall clock.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    log: Arc<SpanLog>,
}

impl SpanProfiler {
    /// A profiler recording into `log`.
    #[must_use]
    pub fn new(log: Arc<SpanLog>) -> Self {
        SpanProfiler { log }
    }

    /// The shared log this profiler records into.
    #[must_use]
    pub fn log(&self) -> &Arc<SpanLog> {
        &self.log
    }
}

impl Profiler for SpanProfiler {
    fn record(&self, phase: Phase, nanos: u64) {
        self.log.leaf(phase.name(), thread_parent(), nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_mints_no_ids() {
        const { assert!(!NullRecorder::ENABLED) };
        let id = NullRecorder.start("request", SpanId::NONE);
        assert_eq!(id, SpanId::NONE);
        assert!(!id.is_some());
    }

    #[test]
    fn spans_nest_and_close_with_monotonic_times() {
        let log = SpanLog::new();
        let root = log.start("request", SpanId::NONE);
        let child = log.start("job", root);
        log.leaf("core_sim", child, 1_000);
        log.finish(child);
        log.finish(root);
        let spans = log.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, root.0);
        assert_eq!(spans[2].parent, child.0);
        for s in &spans {
            let dur = s.dur_nanos.expect("all closed");
            assert!(s.start_nanos + dur <= log.now_nanos());
        }
        // Double-finish stays closed with the original duration.
        let dur = spans[1].dur_nanos;
        log.finish(child);
        assert_eq!(log.snapshot()[1].dur_nanos, dur);
    }

    #[test]
    fn subtree_selects_one_request_forest() {
        let log = SpanLog::new();
        let a = log.start("request", SpanId::NONE);
        let a_job = log.start("job", a);
        let b = log.start("request", SpanId::NONE);
        let b_job = log.start("job", b);
        log.leaf("core_sim", a_job, 10);
        log.leaf("core_sim", b_job, 10);
        let sub = log.subtree(a);
        assert_eq!(sub.len(), 3);
        assert!(sub.iter().all(|s| s.id != b.0 && s.id != b_job.0));
        assert!(log.subtree(SpanId::NONE).is_empty());
        assert!(log.subtree(SpanId(999)).is_empty());
    }

    #[test]
    fn thread_parent_guard_nests_and_restores() {
        let log = SpanLog::new();
        let outer = log.start("cell", SpanId::NONE);
        assert_eq!(thread_parent(), SpanId::NONE);
        {
            let _g = ThreadParentGuard::enter(outer);
            assert_eq!(thread_parent(), outer);
            let inner = log.start("cell", SpanId::NONE);
            {
                let _g2 = ThreadParentGuard::enter(inner);
                assert_eq!(thread_parent(), inner);
            }
            assert_eq!(thread_parent(), outer);
        }
        assert_eq!(thread_parent(), SpanId::NONE);
    }

    #[test]
    fn span_profiler_records_phase_leaves_under_the_thread_parent() {
        let log = Arc::new(SpanLog::new());
        let prof = SpanProfiler::new(Arc::clone(&log));
        let cell = log.start("cell", SpanId::NONE);
        let _g = ThreadParentGuard::enter(cell);
        prof.record(Phase::CoreSim, 5_000);
        let spans = log.snapshot();
        let leaf = spans.last().expect("leaf recorded");
        assert_eq!(leaf.name, "core_sim");
        assert_eq!(leaf.parent, cell.0);
        assert_eq!(leaf.dur_nanos, Some(5_000));
    }

    #[test]
    fn every_phase_has_a_registered_span_name() {
        for phase in Phase::ALL {
            assert!(
                SPAN_NAMES.contains(&phase.name()),
                "phase {} missing from SPAN_NAMES",
                phase.name()
            );
        }
        let mut names = SPAN_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SPAN_NAMES.len(), "duplicate span name");
    }

    #[test]
    fn full_log_counts_drops_instead_of_growing() {
        let log = SpanLog::new();
        for _ in 0..MAX_SPANS {
            log.leaf("cell", SpanId::NONE, 1);
        }
        assert_eq!(log.len(), MAX_SPANS);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.start("cell", SpanId::NONE), SpanId::NONE);
        assert_eq!(log.len(), MAX_SPANS);
        assert_eq!(log.dropped(), 1);
    }
}
