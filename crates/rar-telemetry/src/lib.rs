//! Host-side observability for the RAR simulator.
//!
//! Where `rar-trace` records *simulated* (guest) time — cycles, uops,
//! runahead intervals — this crate records *host* time and host-side
//! work: where the wall clock goes while a sweep runs, how the result
//! cache and memoization stores behave, and what exactly produced a set
//! of results. Four pieces:
//!
//! * [`MetricsRegistry`] — lock-cheap monotonic [`Counter`]s, [`Gauge`]s
//!   and log2-bucket [`Histogram`]s behind `Arc`-shared atomic handles,
//!   exported deterministically (sorted keys) to JSON
//!   ([`export::to_json`]) and Prometheus text ([`export::to_prometheus`]).
//! * [`Profiler`] scopes — zero-cost-when-off self-profiling using the
//!   same `ENABLED`-const monomorphization trick as `rar_trace::NullSink`:
//!   with [`NullProfiler`] every [`ScopeTimer`] compiles away; with
//!   [`WallProfiler`] wall-clock time is attributed per [`Phase`].
//! * [`ProgressReporter`] — rate-limited heartbeat lines for long sweeps
//!   (completed/total, cache hit rate, runs/sec, ETA, thread utilization).
//! * [`ManifestBuilder`] — the run manifest written beside sweep results:
//!   tool/version, workload set, config fingerprints, thread count, and
//!   the embedded telemetry snapshot; [`validate_manifest`] is the schema
//!   gate CI runs on every generated manifest.
//! * [`SpanRecorder`] spans — causal parent/child wall-clock spans with
//!   the same `ENABLED`-const contract ([`NullRecorder`] compiles away);
//!   [`SpanLog`] records, [`SpanProfiler`] adapts [`Phase`] scopes into
//!   leaf spans.
//! * [`FlightRecorder`] — bounded ring of recent events dumped as a JSON
//!   post-mortem on panic, watchdog timeout, or injection DUE.

pub mod cancel;
pub mod export;
pub mod flight;
pub mod manifest;
pub mod names;
pub mod profile;
pub mod progress;
pub mod registry;
pub mod span;

pub use cancel::CancelToken;
pub use export::{
    histogram_quantile, labeled, sanitize_f64, sanitize_metric_name, TELEMETRY_SCHEMA,
};
pub use flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY, FLIGHT_SCHEMA};
pub use manifest::{validate_manifest, ManifestBuilder, MANIFEST_SCHEMA};
pub use profile::{time, NullProfiler, Phase, Profiler, ScopeTimer, WallProfiler};
pub use progress::{ProgressReporter, ProgressSnapshot};
pub use registry::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry};
pub use span::{
    thread_parent, NullRecorder, Span, SpanId, SpanLog, SpanProfiler, SpanRecorder,
    ThreadParentGuard, SPAN_NAMES,
};
