// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for the verification layer: liveness fixpoint
//! monotonicity, refinement bounds, and sanitizer leak detection. The
//! dependency-free xorshift twin in `tests/randomized.rs` always runs.

use proptest::prelude::*;
use rar_ace::{AceCounter, Structure};
use rar_isa::{ArchReg, BranchClass, BranchInfo, Uop, UopKind};
use rar_verify::{analyze, interpret, Sanitizer, ValueFlip};

/// Builds one well-formed uop at `pc` from a generated spec tuple.
fn mk_uop(pc: u64, (kind, d, s, line, taken): (u8, u8, u8, u64, bool)) -> Uop {
    let dest = ArchReg::int(d);
    let src = ArchReg::int(s);
    match kind {
        0..=4 => Uop::alu(pc, UopKind::IntAlu).with_dest(dest).with_src(src),
        5 | 6 => Uop::load(pc, 0x1000 + line * 64, 8)
            .with_src(src)
            .with_dest(dest),
        7 | 8 => Uop::store(pc, 0x2000 + line * 64, 8).with_src(src),
        _ => Uop::branch(
            pc,
            BranchInfo {
                taken,
                target: pc + 4,
                class: BranchClass::Conditional,
            },
        )
        .with_src(src),
    }
}

fn stream_strategy() -> impl Strategy<Value = Vec<Uop>> {
    prop::collection::vec((0u8..10, 1u8..7, 1u8..7, 0u64..64, any::<bool>()), 0..256).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, spec)| mk_uop(i as u64 * 4, spec))
                .collect()
        },
    )
}

proptest! {
    /// The outer fixpoint's dead set never shrinks and the last round is
    /// stable.
    #[test]
    fn fixpoint_is_monotone(uops in stream_strategy()) {
        let r = analyze(&uops);
        let rounds = r.rounds();
        prop_assert!(rounds.windows(2).all(|w| w[0] <= w[1]));
        if rounds.len() >= 2 {
            prop_assert_eq!(rounds[rounds.len() - 1], rounds[rounds.len() - 2]);
        }
    }

    /// Refined ABC is bounded by unrefined ABC for any stream and any
    /// residency intervals.
    #[test]
    fn refined_abc_is_bounded(uops in stream_strategy(), lens in prop::collection::vec(1u64..20, 0..256)) {
        let r = analyze(&uops);
        let mut ace = AceCounter::new();
        let mut t = 0u64;
        for seq in 0..r.horizon() {
            let len = lens.get(seq as usize).copied().unwrap_or(1);
            ace.record_committed(Structure::RfInt, 64, t, t + len);
            let dead = r.dead_dest_bits(seq, 64);
            if dead > 0 {
                ace.record_dead(Structure::RfInt, dead, t, t + len);
            }
            t += 1;
        }
        prop_assert!(ace.refined_abc(Structure::RfInt) <= ace.abc(Structure::RfInt));
    }

    /// Conservation checks accept balanced books and reject any leak.
    #[test]
    fn uop_leak_is_always_caught(
        committed in 0u64..10_000,
        squashed in 0u64..10_000,
        in_flight in 0u64..512,
        leak in 1u64..100,
    ) {
        let dispatched = committed + squashed + in_flight;
        let mut ok = Sanitizer::new(2);
        ok.check_uop_conservation(1, dispatched, committed, squashed, in_flight);
        prop_assert!(ok.first_violation().is_none());

        let mut bad = Sanitizer::new(2);
        bad.check_uop_conservation(1, dispatched + leak, committed, squashed, in_flight);
        prop_assert!(bad.first_violation().is_some());
    }

    /// Transfer-function soundness twin: flipping any statically
    /// predicted-dead destination bit in the bit-exact interpreter
    /// never changes an observable output. (The dependency-free
    /// xorshift twin in `tests/randomized.rs` always runs.)
    #[test]
    fn dead_bit_flips_are_invisible(
        uops in stream_strategy(),
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let r = analyze(&uops);
        let base = interpret(&uops, seed, None);
        for seq in 0..uops.len() {
            if uops[seq].dest().is_none() {
                continue;
            }
            let mask = r.dead_dest_mask(seq as u64);
            if mask == 0 {
                continue;
            }
            // One pseudo-randomly chosen dead bit per value keeps the
            // case count linear in the stream length.
            let mut bit = (pick ^ seq as u64) % 64;
            while mask & (1u64 << bit) == 0 {
                bit = (bit + 1) % 64;
            }
            let flipped = interpret(&uops, seed, Some(ValueFlip { seq, bit: bit as u32 }));
            prop_assert_eq!(&base, &flipped, "dead bit {} of seq {} visible", bit, seq);
        }
    }

    /// The bit-refined dead count dominates the word-level one and never
    /// exceeds the register width, for every uop and width.
    #[test]
    fn bit_refinement_is_ordered(uops in stream_strategy()) {
        let r = analyze(&uops);
        for seq in 0..r.horizon() {
            for width in [64u64, 128] {
                let word = r.dead_dest_bits(seq, width);
                let bit = r.bit_dead_dest_bits(seq, width);
                prop_assert!(word <= bit && bit <= width);
            }
        }
    }

    /// MSHR books must balance; any unreleased allocation is reported.
    #[test]
    fn mshr_leak_is_always_caught(
        released in 0u64..10_000,
        resident in 0usize..20,
        leak in 1u64..100,
    ) {
        let allocations = released + resident as u64;
        let mut ok = Sanitizer::new(2);
        ok.check_mshr(1, allocations, released, resident, 20, resident);
        prop_assert!(ok.first_violation().is_none());

        let mut bad = Sanitizer::new(2);
        bad.check_mshr(1, allocations + leak, released, resident, 20, resident);
        prop_assert!(bad.first_violation().is_some());
    }
}
