//! Randomized property checks that run offline (no external crates): a
//! deterministic xorshift generator produces uop streams and leak
//! scenarios, and each property is checked over many seeds. The
//! proptest-based twin lives in `tests/proptests.rs` behind the
//! `proptests` feature.

use rar_ace::{AceCounter, Structure};
use rar_isa::{ArchReg, BranchClass, BranchInfo, Uop, UopKind};
use rar_verify::{analyze, interpret, Sanitizer, ValueFlip};

/// xorshift64*: deterministic, seedable, good enough for test-case
/// generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random but well-formed uop stream mixing ALU ops, loads, stores and
/// branches over a small register pool (so overwrites actually happen).
fn random_stream(seed: u64, len: usize) -> Vec<Uop> {
    let mut rng = Rng(seed | 1);
    let mut uops = Vec::with_capacity(len);
    for i in 0..len {
        let pc = i as u64 * 4;
        let dest = ArchReg::int(1 + rng.below(6) as u8);
        let src = ArchReg::int(1 + rng.below(6) as u8);
        let uop = match rng.below(10) {
            0..=4 => Uop::alu(pc, UopKind::IntAlu).with_dest(dest).with_src(src),
            5 | 6 => Uop::load(pc, 0x1000 + rng.below(64) * 64, 8)
                .with_src(src)
                .with_dest(dest),
            7 | 8 => Uop::store(pc, 0x2000 + rng.below(64) * 64, 8).with_src(src),
            _ => Uop::branch(
                pc,
                BranchInfo {
                    taken: rng.below(2) == 0,
                    target: pc + 4 + rng.below(16) * 4,
                    class: BranchClass::Conditional,
                },
            )
            .with_src(src),
        };
        uops.push(uop);
    }
    uops
}

/// Like [`random_stream`] but exercising every uop kind, including the
/// multiply/divide and floating-point classes the bit-transfer table
/// distinguishes.
fn rich_random_stream(seed: u64, len: usize) -> Vec<Uop> {
    let mut rng = Rng(seed.wrapping_mul(0xA5A5_A5A5) | 1);
    let mut uops = Vec::with_capacity(len);
    for i in 0..len {
        let pc = i as u64 * 4;
        let d = 1 + rng.below(6) as u8;
        let s = 1 + rng.below(6) as u8;
        let uop = match rng.below(14) {
            0..=3 => Uop::alu(pc, UopKind::IntAlu)
                .with_dest(ArchReg::int(d))
                .with_src(ArchReg::int(s)),
            4 => Uop::alu(pc, UopKind::IntMul)
                .with_dest(ArchReg::int(d))
                .with_src(ArchReg::int(s))
                .with_src(ArchReg::int(1 + rng.below(6) as u8)),
            5 => Uop::alu(pc, UopKind::IntDiv)
                .with_dest(ArchReg::int(d))
                .with_src(ArchReg::int(s)),
            6 => Uop::alu(pc, UopKind::FpAdd)
                .with_dest(ArchReg::fp(d))
                .with_src(ArchReg::fp(s)),
            7 => Uop::alu(pc, UopKind::FpMul)
                .with_dest(ArchReg::fp(d))
                .with_src(ArchReg::fp(s)),
            8 => Uop::alu(pc, UopKind::FpDiv)
                .with_dest(ArchReg::fp(d))
                .with_src(ArchReg::fp(s)),
            9 | 10 => Uop::load(pc, 0x1000 + rng.below(64) * 64, 8)
                .with_src(ArchReg::int(s))
                .with_dest(ArchReg::int(d)),
            11 => Uop::store(pc, 0x2000 + rng.below(64) * 64, 8)
                .with_src(ArchReg::int(s))
                .with_src(ArchReg::int(1 + rng.below(6) as u8)),
            12 => Uop::nop(pc),
            _ => Uop::branch(
                pc,
                BranchInfo {
                    taken: rng.below(2) == 0,
                    target: pc + 8,
                    class: BranchClass::Conditional,
                },
            )
            .with_src(ArchReg::int(s)),
        };
        uops.push(uop);
    }
    uops
}

#[test]
fn flipping_predicted_dead_bits_never_changes_observables() {
    // The transfer-function soundness twin: for every destination bit
    // the static analysis declares dead, flipping that bit in the
    // bit-exact interpreter must leave every observable output (stores,
    // branch conditions, final register file) untouched.
    let mut tested = 0u64;
    for seed in 1..=30u64 {
        let uops = rich_random_stream(seed, 150);
        let r = analyze(&uops);
        let base = interpret(&uops, seed, None);
        let mut rng = Rng(seed.wrapping_mul(0x0DD_B175) | 1);
        for seq in 0..uops.len() {
            if uops[seq].dest().is_none() {
                continue;
            }
            let mask = r.dead_dest_mask(seq as u64);
            if mask == 0 {
                continue;
            }
            for _ in 0..3 {
                let bit = rng.below(64) as u32;
                if mask & (1u64 << bit) == 0 {
                    continue;
                }
                let flipped = interpret(&uops, seed, Some(ValueFlip { seq, bit }));
                assert_eq!(
                    base, flipped,
                    "seed {seed}: flipping predicted-dead bit {bit} of seq {seq} was visible"
                );
                tested += 1;
            }
        }
    }
    assert!(tested > 500, "only {tested} dead-bit flips exercised");
}

#[test]
fn flipping_fully_live_low_bits_is_usually_visible() {
    // Sanity check that the twin has teeth: bit 0 of a value whose
    // dead mask is empty is live by construction, and flipping it
    // changes the observables for a healthy fraction of sites.
    let mut visible = 0u64;
    let mut tested = 0u64;
    for seed in 1..=10u64 {
        let uops = rich_random_stream(seed, 150);
        let r = analyze(&uops);
        let base = interpret(&uops, seed, None);
        for seq in 0..uops.len() {
            if uops[seq].dest().is_none() || r.dead_dest_mask(seq as u64) != 0 {
                continue;
            }
            let flipped = interpret(&uops, seed, Some(ValueFlip { seq, bit: 0 }));
            tested += 1;
            if flipped != base {
                visible += 1;
            }
        }
    }
    assert!(tested > 100, "too few live sites: {tested}");
    assert!(
        visible * 2 > tested,
        "live-bit flips visible in only {visible}/{tested} sites"
    );
}

#[test]
fn bit_refined_dead_bits_dominate_word_level_on_random_streams() {
    for seed in 1..=40u64 {
        let uops = rich_random_stream(seed, 200);
        let r = analyze(&uops);
        for seq in 0..r.horizon() {
            for width in [64u64, 128] {
                let word = r.dead_dest_bits(seq, width);
                let bit = r.bit_dead_dest_bits(seq, width);
                assert!(
                    word <= bit && bit <= width,
                    "seed {seed}, seq {seq}: word {word} bit {bit} width {width}"
                );
            }
        }
    }
}

#[test]
fn fixpoint_rounds_are_monotone_and_converge_on_random_streams() {
    for seed in 1..=40u64 {
        let uops = random_stream(seed, 200);
        let r = analyze(&uops);
        let rounds = r.rounds();
        assert!(!rounds.is_empty(), "seed {seed}: no rounds recorded");
        assert!(
            rounds.windows(2).all(|w| w[0] <= w[1]),
            "seed {seed}: dead set shrank: {rounds:?}"
        );
        if rounds.len() >= 2 {
            assert_eq!(
                rounds[rounds.len() - 1],
                rounds[rounds.len() - 2],
                "seed {seed}: final round still grew"
            );
        }
    }
}

#[test]
fn dead_bits_never_exceed_register_width_on_random_streams() {
    for seed in 1..=40u64 {
        let uops = random_stream(seed, 200);
        let r = analyze(&uops);
        for seq in 0..r.horizon() {
            for width in [1u64, 48, 64, 128] {
                assert!(
                    r.dead_dest_bits(seq, width) <= width,
                    "seed {seed}, seq {seq}: dead bits exceed width {width}"
                );
            }
        }
    }
}

#[test]
fn refined_abc_never_exceeds_unrefined_on_random_streams() {
    // Replay each analyzed stream into an ACE counter as if every uop's
    // destination value occupied a 64-bit register for a random interval;
    // the statically-dead bits subtract, so refined <= unrefined always.
    for seed in 1..=40u64 {
        let uops = random_stream(seed, 200);
        let r = analyze(&uops);
        let mut ace = AceCounter::new();
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9));
        let mut t = 0u64;
        for seq in 0..r.horizon() {
            let len = 1 + rng.below(20);
            ace.record_committed(Structure::RfInt, 64, t, t + len);
            let dead = r.dead_dest_bits(seq, 64);
            if dead > 0 {
                ace.record_dead(Structure::RfInt, dead, t, t + len);
            }
            t += rng.below(4);
        }
        let unrefined = ace.abc(Structure::RfInt);
        let refined = ace.refined_abc(Structure::RfInt);
        assert!(
            refined <= unrefined,
            "seed {seed}: refined {refined} > unrefined {unrefined}"
        );
        assert_eq!(
            ace.total_refined_abc(),
            refined,
            "only RfInt was recorded, so totals agree"
        );
    }
}

#[test]
fn classification_totals_partition_the_horizon() {
    for seed in 1..=40u64 {
        let uops = random_stream(seed, 200);
        let s = analyze(&uops).summary();
        assert_eq!(
            s.live + s.addr_only + s.fdd + s.tdd,
            s.analyzed,
            "seed {seed}: classes must partition the stream"
        );
    }
}

#[test]
fn sanitizer_catches_randomly_seeded_uop_leaks() {
    for seed in 1..=40u64 {
        let mut rng = Rng(seed.wrapping_mul(0xDEAD_BEEF) | 1);
        let dispatched = 100 + rng.below(1_000);
        let committed = rng.below(dispatched);
        let squashed = rng.below(dispatched - committed + 1);
        let in_flight = dispatched - committed - squashed;

        // Balanced books pass...
        let mut ok = Sanitizer::new(2);
        ok.check_uop_conservation(7, dispatched, committed, squashed, in_flight);
        assert!(
            ok.first_violation().is_none(),
            "seed {seed}: false positive"
        );

        // ...and a leak of any nonzero size is caught.
        let leak = 1 + rng.below(50);
        let mut bad = Sanitizer::new(2);
        bad.check_uop_conservation(7, dispatched + leak, committed, squashed, in_flight);
        let v = bad
            .first_violation()
            .unwrap_or_else(|| panic!("seed {seed}: leak of {leak} uops missed"));
        assert_eq!(v.cycle, 7);
    }
}

#[test]
fn sanitizer_catches_randomly_seeded_mshr_imbalance() {
    for seed in 1..=40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5EED) | 1);
        let released = rng.below(500);
        let resident = rng.below(20) as usize;
        let allocations = released + resident as u64;

        let mut ok = Sanitizer::new(2);
        ok.check_mshr(3, allocations, released, resident, 20, resident);
        assert!(
            ok.first_violation().is_none(),
            "seed {seed}: false positive"
        );

        let leak = 1 + rng.below(10);
        let mut bad = Sanitizer::new(2);
        bad.check_mshr(3, allocations + leak, released, resident, 20, resident);
        assert!(
            bad.first_violation().is_some(),
            "seed {seed}: MSHR leak of {leak} missed"
        );
    }
}
