//! A bit-exact reference interpreter for uop streams.
//!
//! The timing simulator carries no data values, so the bit-transfer
//! contract of [`crate::transfer`] cannot be checked against "the real
//! machine". This module supplies one: a tiny concrete machine whose
//! per-kind semantics are a *sound instance* of the transfer contract
//! (wrapping add for the carry-monotone class, bit-0 condition tests
//! for branches, 48-bit address formation for memory ops). Flipping a
//! statically dead destination bit in an interpreted stream must never
//! change the observable outputs — the property the randomized and
//! proptest twins drive.
//!
//! Observables are everything the analysis horizon treats as live:
//! every store's `(address, value)` pair, every branch's condition
//! bits, and the final architectural register file (the analysis seeds
//! the horizon fully live, so values surviving to the end are never
//! classified dead).

use crate::liveness::ADDR_BITS;
use rar_isa::{ArchReg, RegClass, Uop, UopKind};
use std::collections::HashMap;

/// Deterministic register/memory initializer: splitmix64.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The observable outputs of one interpreted stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// `(address, value)` of every executed store, in program order.
    pub stores: Vec<(u64, u64)>,
    /// Condition bit of every executed branch source, in program order.
    pub branch_bits: Vec<u64>,
    /// Final architectural register file (64 flat registers).
    pub final_regs: Vec<u64>,
}

/// A single-bit corruption applied to the destination value produced by
/// the uop at stream position `seq` (after it executes, before any
/// consumer reads it) — the interpreter analogue of a register-file
/// strike landing on that value.
#[derive(Debug, Clone, Copy)]
pub struct ValueFlip {
    /// Stream position of the producing uop.
    pub seq: usize,
    /// Bit index within the 64-bit value lane.
    pub bit: u32,
}

/// Interprets `uops` over a deterministic initial state derived from
/// `seed`, optionally flipping one produced destination bit.
#[must_use]
pub fn interpret(uops: &[Uop], seed: u64, flip: Option<ValueFlip>) -> Observation {
    let mut regs = vec![0u64; ArchReg::total_count()];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = mix(seed ^ (i as u64) << 8);
    }
    let mut memory: HashMap<u64, u64> = HashMap::new();
    let mut stores = Vec::new();
    let mut branch_bits = Vec::new();

    for (i, uop) in uops.iter().enumerate() {
        let src: Vec<u64> = uop.srcs().map(|r| regs[r.flat_index()]).collect();
        let s0 = src.first().copied().unwrap_or(0);
        let s1 = src.get(1).copied().unwrap_or(0);
        let addr_mask = (1u64 << ADDR_BITS) - 1;
        // Each arm is an instance of the per-kind bit-transfer contract
        // in `transfer.rs`; see the module docs there.
        let value = match uop.kind() {
            UopKind::IntAlu => Some(s0.wrapping_add(s1)),
            UopKind::IntMul => Some(s0.wrapping_mul(s1).wrapping_add(s0)),
            UopKind::IntDiv => Some(s0.wrapping_div(s1 | 1).rotate_left(13) ^ s1),
            UopKind::FpAdd => Some((f64::from_bits(s0) + f64::from_bits(s1)).to_bits()),
            UopKind::FpMul => Some((f64::from_bits(s0) * f64::from_bits(s1)).to_bits()),
            UopKind::FpDiv => Some((f64::from_bits(s0) / f64::from_bits(s1 | (1 << 52))).to_bits()),
            UopKind::Load => {
                let addr = s0.wrapping_add(s1) & addr_mask;
                Some(*memory.entry(addr).or_insert_with(|| mix(addr)))
            }
            UopKind::Store => {
                let addr = s0.wrapping_add(s1) & addr_mask;
                let data = s0 ^ s1.rotate_left(17);
                memory.insert(addr, data);
                stores.push((addr, data));
                None
            }
            UopKind::Branch => {
                for s in &src {
                    branch_bits.push(s & 1);
                }
                None
            }
            UopKind::Nop => None,
        };
        if let (Some(dest), Some(mut v)) = (uop.dest(), value) {
            if let Some(f) = flip {
                if f.seq == i {
                    v ^= 1u64 << (f.bit % 64);
                }
            }
            // The FP bank is architecturally 128 bits wide; the
            // interpreter models the 64-bit value lane the masks cover.
            debug_assert!(matches!(dest.class(), RegClass::Int | RegClass::Fp));
            regs[dest.flat_index()] = v;
        }
    }

    Observation {
        stores,
        branch_bits,
        final_regs: regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_isa::{BranchClass, BranchInfo};

    fn alu_rr(pc: u64, dest: u8, src: u8) -> Uop {
        Uop::alu(pc, UopKind::IntAlu)
            .with_dest(ArchReg::int(dest))
            .with_src(ArchReg::int(src))
    }

    #[test]
    fn interpretation_is_deterministic() {
        let uops = vec![
            alu_rr(0, 1, 2),
            Uop::store(4, 0, 8).with_src(ArchReg::int(1)),
        ];
        assert_eq!(interpret(&uops, 7, None), interpret(&uops, 7, None));
        assert_ne!(
            interpret(&uops, 7, None).stores,
            interpret(&uops, 8, None).stores,
            "different seeds produce different values"
        );
    }

    #[test]
    fn flipping_a_live_bit_changes_observables() {
        let uops = vec![
            alu_rr(0, 1, 2),
            Uop::store(4, 0, 8).with_src(ArchReg::int(1)),
        ];
        let base = interpret(&uops, 7, None);
        let hit = interpret(&uops, 7, Some(ValueFlip { seq: 0, bit: 33 }));
        assert_ne!(base.stores, hit.stores, "store data exposes every bit");
    }

    #[test]
    fn flipping_a_branch_only_high_bit_is_invisible() {
        // r1 feeds only a branch condition then is overwritten: bits
        // above bit 0 are dead, and the interpreter agrees.
        let uops = vec![
            alu_rr(0, 1, 2),
            Uop::branch(
                4,
                BranchInfo {
                    taken: true,
                    target: 8,
                    class: BranchClass::Conditional,
                },
            )
            .with_src(ArchReg::int(1)),
            alu_rr(8, 1, 3),
        ];
        let base = interpret(&uops, 7, None);
        let dead = interpret(&uops, 7, Some(ValueFlip { seq: 0, bit: 41 }));
        assert_eq!(base, dead);
        let live = interpret(&uops, 7, Some(ValueFlip { seq: 0, bit: 0 }));
        assert_ne!(base.branch_bits, live.branch_bits);
    }
}
