//! Basic-block segmentation and block-level liveness dataflow.
//!
//! A dynamic uop stream is segmented into basic blocks at branch
//! boundaries. Each block is summarized by its upward-exposed uses (`use`)
//! and its definitions (`def`) over the 64 architectural registers, and a
//! backward fixpoint over the block chain yields the live-in/live-out sets
//! that seed the per-uop classification in [`crate::liveness`].
//!
//! The dynamic trace is a straight line — every block's sole successor is
//! the next block in program order — but the solver is written as a
//! general monotone fixpoint so its convergence is observable (and
//! testable: the live sets only ever grow between rounds).

use rar_isa::{ArchReg, Uop};

/// A set of architectural registers, packed into one word
/// ([`ArchReg::total_count`] is 64: 32 integer + 32 floating-point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveSet(u64);

impl LiveSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        LiveSet(0)
    }

    /// The full set: every architectural register live.
    #[must_use]
    pub const fn full() -> Self {
        LiveSet(u64::MAX)
    }

    /// Adds `reg` to the set.
    pub fn insert(&mut self, reg: ArchReg) {
        self.0 |= 1u64 << reg.flat_index();
    }

    /// Removes `reg` from the set.
    pub fn remove(&mut self, reg: ArchReg) {
        self.0 &= !(1u64 << reg.flat_index());
    }

    /// Whether `reg` is in the set.
    #[must_use]
    pub fn contains(&self, reg: ArchReg) -> bool {
        self.0 & (1u64 << reg.flat_index()) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: LiveSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Set difference: members of `self` not in `other`.
    #[must_use]
    pub fn difference(&self, other: LiveSet) -> LiveSet {
        LiveSet(self.0 & !other.0)
    }

    /// Number of registers in the set.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Whether `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset(&self, other: LiveSet) -> bool {
        self.0 & !other.0 == 0
    }
}

/// A maximal single-entry straight-line region of the uop stream:
/// `uops[start..end]`, terminated by a branch (inclusive) or the stream
/// horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first uop in the block.
    pub start: usize,
    /// One past the index of the last uop in the block.
    pub end: usize,
    /// Upward-exposed uses: registers read before any write in the block.
    pub uses: LiveSet,
    /// Registers written in the block.
    pub defs: LiveSet,
}

impl BasicBlock {
    /// Summarizes `uops[start..end]`, ignoring the reads of any uop whose
    /// index is flagged in `dead` (a dead consumer does not keep its
    /// sources live — this is what makes transitive deadness converge).
    #[must_use]
    pub fn summarize(uops: &[Uop], start: usize, end: usize, dead: &[bool]) -> Self {
        let mut uses = LiveSet::empty();
        let mut defs = LiveSet::empty();
        for (i, uop) in uops[start..end].iter().enumerate() {
            if !dead[start + i] {
                for src in uop.srcs() {
                    if !defs.contains(src) {
                        uses.insert(src);
                    }
                }
            }
            if let Some(dest) = uop.dest() {
                defs.insert(dest);
            }
        }
        BasicBlock {
            start,
            end,
            uses,
            defs,
        }
    }

    /// The backward transfer function: `live_in = uses ∪ (live_out \ defs)`.
    #[must_use]
    pub fn transfer(&self, live_out: LiveSet) -> LiveSet {
        let mut live_in = live_out.difference(self.defs);
        live_in.union_with(self.uses);
        live_in
    }
}

/// Splits a uop slice into basic blocks at branch boundaries. Every uop
/// belongs to exactly one block; blocks are returned in program order.
#[must_use]
pub fn split_blocks(uops: &[Uop]) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let mut start = 0;
    for (i, uop) in uops.iter().enumerate() {
        if uop.is_branch() {
            blocks.push((start, i + 1));
            start = i + 1;
        }
    }
    if start < uops.len() {
        blocks.push((start, uops.len()));
    }
    blocks
}

/// Solved block-level liveness for one stream.
#[derive(Debug, Clone)]
pub struct BlockLiveness {
    /// The summarized blocks, in program order.
    pub blocks: Vec<BasicBlock>,
    /// Live-in set per block.
    pub live_in: Vec<LiveSet>,
    /// Live-out set per block.
    pub live_out: Vec<LiveSet>,
    /// Total live-register count after each solver round; the sequence is
    /// non-decreasing (the fixpoint is monotone) and its last two entries
    /// are equal (the solver ran to convergence).
    pub rounds: Vec<u64>,
}

impl BlockLiveness {
    /// Solves backward liveness over the block chain of `uops`, treating
    /// every register as live at the stream horizon (`exit_live`) and
    /// ignoring reads performed by uops flagged in `dead`.
    #[must_use]
    pub fn solve(uops: &[Uop], dead: &[bool], exit_live: LiveSet) -> Self {
        let blocks: Vec<BasicBlock> = split_blocks(uops)
            .into_iter()
            .map(|(s, e)| BasicBlock::summarize(uops, s, e, dead))
            .collect();
        let n = blocks.len();
        let mut live_in = vec![LiveSet::empty(); n];
        let mut live_out = vec![LiveSet::empty(); n];
        let mut rounds = Vec::new();
        // Backward chain: block i's only successor is block i + 1; the
        // last block flows into the conservative horizon set. One backward
        // sweep reaches the fixpoint on a chain, but iterate until nothing
        // changes so the monotone-convergence contract is explicit.
        loop {
            let mut changed = false;
            for i in (0..n).rev() {
                let succ_in = if i + 1 < n { live_in[i + 1] } else { exit_live };
                changed |= live_out[i].union_with(succ_in);
                let new_in = blocks[i].transfer(live_out[i]);
                changed |= live_in[i].union_with(new_in);
            }
            let total: u64 = live_in
                .iter()
                .chain(live_out.iter())
                .map(|s| u64::from(s.len()))
                .sum();
            rounds.push(total);
            if !changed {
                break;
            }
        }
        BlockLiveness {
            blocks,
            live_in,
            live_out,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_isa::{BranchClass, BranchInfo, UopKind};

    fn alu(pc: u64, dest: u8, src: Option<u8>) -> Uop {
        let u = Uop::alu(pc, UopKind::IntAlu).with_dest(ArchReg::int(dest));
        match src {
            Some(s) => u.with_src(ArchReg::int(s)),
            None => u,
        }
    }

    fn branch(pc: u64) -> Uop {
        Uop::branch(
            pc,
            BranchInfo {
                taken: true,
                target: pc + 4,
                class: BranchClass::Conditional,
            },
        )
    }

    #[test]
    fn live_set_algebra() {
        let mut s = LiveSet::empty();
        assert!(s.is_empty());
        s.insert(ArchReg::int(3));
        s.insert(ArchReg::fp(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ArchReg::int(3)));
        assert!(!s.contains(ArchReg::int(4)));
        s.remove(ArchReg::int(3));
        assert!(!s.contains(ArchReg::int(3)));
        assert!(s.contains(ArchReg::fp(3)));
        assert!(s.is_subset(LiveSet::full()));
    }

    #[test]
    fn split_at_branches() {
        let uops = vec![
            alu(0, 1, None),
            branch(4),
            alu(8, 2, None),
            alu(12, 3, None),
        ];
        assert_eq!(split_blocks(&uops), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn trailing_branch_closes_final_block() {
        let uops = vec![alu(0, 1, None), branch(4)];
        assert_eq!(split_blocks(&uops), vec![(0, 2)]);
    }

    #[test]
    fn summarize_masks_defined_before_use() {
        // r1 is written then read: the read is not upward-exposed.
        let uops = vec![alu(0, 1, None), alu(4, 2, Some(1)), alu(8, 3, Some(4))];
        let b = BasicBlock::summarize(&uops, 0, 3, &[false; 3]);
        assert!(!b.uses.contains(ArchReg::int(1)));
        assert!(b.uses.contains(ArchReg::int(4)));
        assert!(b.defs.contains(ArchReg::int(1)));
        assert!(b.defs.contains(ArchReg::int(3)));
    }

    #[test]
    fn chain_liveness_converges_monotonically() {
        let uops = vec![
            alu(0, 1, None),
            branch(4),
            alu(8, 2, Some(1)),
            branch(12),
            alu(16, 3, Some(2)),
        ];
        let solved = BlockLiveness::solve(&uops, &[false; 5], LiveSet::full());
        assert!(solved.rounds.windows(2).all(|w| w[0] <= w[1]));
        let n = solved.rounds.len();
        assert!(n >= 2 && solved.rounds[n - 1] == solved.rounds[n - 2]);
        // r1 is read in block 1, so it is live out of block 0.
        assert!(solved.live_out[0].contains(ArchReg::int(1)));
    }

    #[test]
    fn dead_reader_does_not_keep_sources_live() {
        // Block 1 reads r1 only from a uop flagged dead: r1 must not be
        // live out of block 0.
        let uops = vec![
            alu(0, 1, None),
            branch(4),
            alu(8, 2, Some(1)),
            alu(12, 1, None),
        ];
        let mut dead = vec![false; 4];
        dead[2] = true;
        let solved = BlockLiveness::solve(&uops, &dead, LiveSet::empty());
        assert!(!solved.live_out[0].contains(ArchReg::int(1)));
    }
}
