//! Per-kind bit-transfer functions: the modeled ISA's bit-level dataflow
//! contract.
//!
//! The word-level analysis in [`crate::liveness`] decides *whether* a
//! destination value is live; this module decides *which bits* of each
//! source a uop can propagate into which bits of its destination. Both
//! the backward bit-liveness analysis ([`crate::bitlive`]) and the
//! forward per-bit poison propagation in the fault-injecting core apply
//! the same table, so every static "this bit is dead" claim is checked
//! by the dynamic model under single-bit strikes.
//!
//! ## The modeled bit-semantics contract
//!
//! The simulator is trace-driven and carries no data values, so bit
//! semantics are a contract on the modeled [`UopKind`] classes (stated
//! on the enum itself in `rar-isa`), not on concrete opcodes:
//!
//! - **`IntAlu` / `IntMul` are carry-monotone**: destination bit `d`
//!   depends only on source bits `<= d` (wrapping add/sub, bitwise
//!   logic, constant left shifts, multiply). Backward, a live
//!   destination mask therefore demands the sources only up to its most
//!   significant live bit ([`smear_down`]); forward, a flipped source
//!   bit can only disturb destination bits at or above it
//!   ([`smear_up`]).
//! - **`IntDiv` and the FP kinds are all-to-all**: a quotient, mantissa
//!   or exponent bit can depend on any source bit, so any live
//!   destination bit demands every source bit and any poisoned source
//!   bit poisons the whole destination.
//! - **`Load` sources form an address**: only the low
//!   [`ADDR_BITS`] bits of a source can change which
//!   line is accessed; the loaded data itself comes from memory, so no
//!   source bit flows *through* a load into its destination bits — an
//!   in-range address flip corrupts the whole loaded value instead.
//! - **`Store` sources are architectural roots**: address and data both
//!   reach memory, so every source bit is consumed.
//! - **`Branch` tests bit 0 of its condition sources** (the canonical
//!   output bit of a preceding compare, RISC-style): the condition
//!   collapses to one live bit per source.
//! - **`Nop` touches nothing.**
//!
//! The backward and forward directions are adjoint: if a poison mask is
//! disjoint from the backward-demanded source mask, the forward
//! propagation of that poison is disjoint from the destination's live
//! mask (checked exhaustively in the tests below). That adjunction is
//! what makes the injection campaign's predicted-dead stratum land
//! masked.
//!
//! `cargo xtask lint` enforces that every `UopKind` variant appears
//! explicitly in both transfer functions — no catch-all arms — so a new
//! uop kind cannot silently inherit another kind's bit behavior.

use crate::liveness::ADDR_BITS;
use rar_isa::UopKind;

/// Width of a value-lane bit mask. Wider registers (the 128-bit FP
/// registers) fold onto the mask modulo this width: mask bit `i` covers
/// register bits `i` and `i + 64`.
pub const MASK_BITS: u64 = 64;

/// The low [`ADDR_BITS`] bits: the portion of a register that can
/// influence address formation.
pub const ADDR_MASK: u64 = (1u64 << ADDR_BITS) - 1;

/// All bits at or below the most significant set bit of `mask`
/// (`0b0010_1000 -> 0b0011_1111`); zero stays zero. The backward image
/// of a live set under a carry-monotone operation.
#[must_use]
pub const fn smear_down(mask: u64) -> u64 {
    if mask == 0 {
        0
    } else {
        let msb = 63 - mask.leading_zeros();
        if msb >= 63 {
            u64::MAX
        } else {
            (1u64 << (msb + 1)) - 1
        }
    }
}

/// All bits at or above the least significant set bit of `mask`
/// (`0b0010_1000 -> 0xffff_..._f8`); zero stays zero. The forward image
/// of a poison set under a carry-monotone operation.
#[must_use]
pub const fn smear_up(mask: u64) -> u64 {
    if mask == 0 {
        0
    } else {
        u64::MAX << mask.trailing_zeros()
    }
}

/// The full mask if `mask` is nonempty, empty otherwise: the transfer of
/// an all-to-all operation in either direction.
#[must_use]
pub const fn all_if_any(mask: u64) -> u64 {
    if mask == 0 {
        0
    } else {
        u64::MAX
    }
}

/// Backward bit-transfer function: given the live mask of the uop's
/// destination value, the mask of source bits the uop demands.
///
/// Side-effecting kinds (`Store`, `Branch`) consume their sources
/// regardless of `dest_live`; pure value producers demand nothing when
/// no destination bit is live. Every variant has an explicit arm —
/// enforced by `cargo xtask lint` (bit-transfer-coverage).
#[must_use]
pub const fn src_live_mask(kind: UopKind, dest_live: u64) -> u64 {
    match kind {
        UopKind::IntAlu => smear_down(dest_live),
        UopKind::IntMul => smear_down(dest_live),
        UopKind::IntDiv => all_if_any(dest_live),
        UopKind::FpAdd => all_if_any(dest_live),
        UopKind::FpMul => all_if_any(dest_live),
        UopKind::FpDiv => all_if_any(dest_live),
        UopKind::Load => {
            if dest_live == 0 {
                0
            } else {
                ADDR_MASK
            }
        }
        UopKind::Store => u64::MAX,
        UopKind::Branch => 1,
        UopKind::Nop => 0,
    }
}

/// The source bits the uop reads at all, assuming every destination bit
/// matters: `src_live_mask(kind, full)`. A poisoned source bit outside
/// this mask cannot influence the uop's result or side effect.
#[must_use]
pub const fn consumed_src_mask(kind: UopKind) -> u64 {
    src_live_mask(kind, u64::MAX)
}

/// Forward bit-transfer function: given the consumed poisoned source
/// bits (already intersected with [`consumed_src_mask`]), the poison
/// mask of the destination value. Kinds without a destination
/// (`Store`, `Branch`, `Nop`) produce no poison — their consumption is
/// an architectural corruption, accounted where the poison is consumed.
/// Every variant has an explicit arm — enforced by `cargo xtask lint`.
#[must_use]
pub const fn dest_poison_mask(kind: UopKind, consumed_poison: u64) -> u64 {
    match kind {
        UopKind::IntAlu => smear_up(consumed_poison),
        UopKind::IntMul => smear_up(consumed_poison),
        UopKind::IntDiv => all_if_any(consumed_poison),
        UopKind::FpAdd => all_if_any(consumed_poison),
        UopKind::FpMul => all_if_any(consumed_poison),
        UopKind::FpDiv => all_if_any(consumed_poison),
        UopKind::Load => all_if_any(consumed_poison),
        UopKind::Store => 0,
        UopKind::Branch => 0,
        UopKind::Nop => 0,
    }
}

/// Every uop kind, for exhaustive iteration in tests and lints.
pub const ALL_KINDS: [UopKind; 10] = UopKind::ALL;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smear_down_covers_low_bits() {
        assert_eq!(smear_down(0), 0);
        assert_eq!(smear_down(1), 1);
        assert_eq!(smear_down(0b10100), 0b11111);
        assert_eq!(smear_down(1 << 63), u64::MAX);
    }

    #[test]
    fn smear_up_covers_high_bits() {
        assert_eq!(smear_up(0), 0);
        assert_eq!(smear_up(1), u64::MAX);
        assert_eq!(smear_up(0b1000), u64::MAX << 3);
        assert_eq!(smear_up(1 << 63), 1 << 63);
    }

    #[test]
    fn backward_is_monotone_in_dest_liveness() {
        // A smaller live set never demands more source bits.
        let probes = [0u64, 1, 0b10, 0xff00, 1 << 47, 1 << 63, u64::MAX];
        for kind in ALL_KINDS {
            for &a in &probes {
                for &b in &probes {
                    if a & b == a {
                        let la = src_live_mask(kind, a);
                        let lb = src_live_mask(kind, b);
                        assert_eq!(la & lb, la, "{kind}: {a:#x} subset {b:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn pure_producers_demand_nothing_for_a_dead_dest() {
        for kind in ALL_KINDS {
            let expected = match kind {
                UopKind::Store => u64::MAX,
                UopKind::Branch => 1,
                _ => 0,
            };
            assert_eq!(src_live_mask(kind, 0), expected, "{kind}");
        }
    }

    #[test]
    fn forward_and_backward_are_adjoint() {
        // If a poison mask avoids every backward-demanded source bit,
        // its forward propagation avoids every live destination bit —
        // the soundness condition the injection campaign validates
        // empirically.
        let mut rng = 0x1234_5678_9abc_def1u64;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for kind in ALL_KINDS {
            for _ in 0..2_000 {
                let live = next() & next(); // biased toward sparse masks
                let poison = next() & next();
                if poison & src_live_mask(kind, live) != 0 {
                    continue;
                }
                let consumed = poison & consumed_src_mask(kind);
                let out = dest_poison_mask(kind, consumed);
                assert_eq!(out & live, 0, "{kind}: live {live:#x} poison {poison:#x}");
            }
        }
    }

    #[test]
    fn load_severs_the_data_chain() {
        // No source bit flows through a load: demanded bits are address
        // bits only, and a clean address means a clean destination.
        assert_eq!(src_live_mask(UopKind::Load, u64::MAX), ADDR_MASK);
        assert_eq!(dest_poison_mask(UopKind::Load, 0), 0);
        assert_eq!(dest_poison_mask(UopKind::Load, 1 << 12), u64::MAX);
    }

    #[test]
    fn branch_collapses_to_one_bit() {
        assert_eq!(consumed_src_mask(UopKind::Branch), 1);
        assert_eq!(src_live_mask(UopKind::Branch, 0), 1);
    }
}
