//! Cross-structure invariant sanitizer.
//!
//! The checkers here validate conservation invariants that tie the
//! pipeline's redundant bookkeeping together — the counters the core
//! updates incrementally must always agree with the ground truth
//! recomputed from the ROB, the register file, the MSHR file, and the ACE
//! window sets. A single corrupted counter (a missed decrement on a
//! squash path, a leaked physical register, an unmatched MSHR release)
//! otherwise only surfaces as a wedged simulation or a silently skewed
//! statistic thousands of cycles later.
//!
//! The [`Sanitizer`] is deliberately dependency-free: every check takes
//! plain numbers, so `rar-core` and `rar-mem` can feed it their state
//! without this crate depending on them. It records the **first**
//! violation with enough context to debug it (invariant, cycle,
//! expected/actual, free-form detail) and ignores the rest — once one
//! invariant breaks, downstream noise is not useful.
//!
//! Checks are wired into the pipeline behind the `sanitize` feature of
//! `rar-core`; they only *read* simulator state, so a sanitized build
//! produces bit-identical statistics to a default build.

use std::fmt;

/// The invariant catalogue (see DESIGN.md §10 for derivations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Every uop dispatched into the back-end is eventually committed or
    /// squashed: `dispatched + carried = committed + squashed + in_flight`
    /// (`carried` re-baselines entries in flight across a measurement
    /// reset).
    UopConservation,
    /// Physical-register conservation per class:
    /// `free + RAT-mapped + in-flight old mappings = total`.
    PrfLeak,
    /// ROB entries are age-ordered: sequence numbers strictly increase
    /// from head to tail.
    RobAgeOrder,
    /// The incrementally-maintained IQ/LQ/SQ occupancy counters match the
    /// ground truth recomputed from the ROB, and loads/stores stay within
    /// queue capacity in program order.
    LsqOrder,
    /// MSHR allocate/release balance:
    /// `allocations = releases + outstanding`, with `outstanding` and the
    /// high-water mark bounded by the capacity.
    MshrBalance,
    /// ACE stall-window balance: the pipeline's open/close call counts
    /// match the window set's closed-window count and open flag.
    WindowBalance,
}

impl Invariant {
    /// Short stable name, for diagnostics and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::UopConservation => "uop-conservation",
            Invariant::PrfLeak => "prf-leak",
            Invariant::RobAgeOrder => "rob-age-order",
            Invariant::LsqOrder => "lsq-order",
            Invariant::MshrBalance => "mshr-balance",
            Invariant::WindowBalance => "window-balance",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A failed invariant, with enough context to debug the first failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// Simulated cycle at which the check failed.
    pub cycle: u64,
    /// The value the invariant requires.
    pub expected: i128,
    /// The value actually observed.
    pub actual: i128,
    /// Free-form context: which structure, which register class, the
    /// contributing terms.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant {} violated at cycle {}: expected {}, got {} ({})",
            self.invariant, self.cycle, self.expected, self.actual, self.detail
        )
    }
}

/// First-violation collector plus the bookkeeping the window-balance and
/// conservation checks need across cycles.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    first: Option<Violation>,
    /// In-flight uops carried across the last measurement reset (their
    /// dispatch was counted before the reset zeroed the stats).
    carried_in_flight: u64,
    /// Stall-window open/close calls observed, per window kind.
    window_opens: Vec<u64>,
    window_closes: Vec<u64>,
}

impl Sanitizer {
    /// A fresh sanitizer tracking `window_kinds` stall-window kinds.
    #[must_use]
    pub fn new(window_kinds: usize) -> Self {
        Sanitizer {
            first: None,
            carried_in_flight: 0,
            window_opens: vec![0; window_kinds],
            window_closes: vec![0; window_kinds],
        }
    }

    /// The first violation observed, if any.
    #[must_use]
    pub fn first_violation(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// Re-baselines after a measurement reset: `in_flight` uops currently
    /// in the ROB were dispatched before the statistics were zeroed, and
    /// the window counters restart with the fresh ACE counter.
    pub fn reset_measurement(&mut self, in_flight: u64) {
        self.carried_in_flight = in_flight;
        self.window_opens.iter_mut().for_each(|c| *c = 0);
        self.window_closes.iter_mut().for_each(|c| *c = 0);
    }

    fn record(&mut self, v: Violation) {
        if self.first.is_none() {
            self.first = Some(v);
        }
    }

    fn check_eq(
        &mut self,
        invariant: Invariant,
        cycle: u64,
        expected: i128,
        actual: i128,
        detail: impl FnOnce() -> String,
    ) {
        if expected != actual {
            self.record(Violation {
                invariant,
                cycle,
                expected,
                actual,
                detail: detail(),
            });
        }
    }

    /// Uop conservation: everything dispatched is committed, squashed, or
    /// still in flight.
    pub fn check_uop_conservation(
        &mut self,
        cycle: u64,
        dispatched: u64,
        committed: u64,
        squashed: u64,
        in_flight: u64,
    ) {
        let carried = self.carried_in_flight;
        let expected = i128::from(dispatched) + i128::from(carried);
        let actual = i128::from(committed) + i128::from(squashed) + i128::from(in_flight);
        self.check_eq(Invariant::UopConservation, cycle, expected, actual, || {
            format!(
                "dispatched={dispatched} carried={carried} committed={committed} \
                 squashed={squashed} in_flight={in_flight}"
            )
        });
    }

    /// Physical-register conservation for one register class.
    pub fn check_prf(
        &mut self,
        cycle: u64,
        class: &str,
        free: usize,
        rat_mapped: usize,
        in_flight_old: usize,
        total: usize,
    ) {
        let actual = free + rat_mapped + in_flight_old;
        self.check_eq(
            Invariant::PrfLeak,
            cycle,
            total as i128,
            actual as i128,
            || {
                format!(
                    "{class}: free={free} rat_mapped={rat_mapped} \
                     in_flight_old={in_flight_old} total={total}"
                )
            },
        );
    }

    /// ROB age ordering: `seqs` must be strictly increasing head→tail.
    pub fn check_rob_order(&mut self, cycle: u64, seqs: impl IntoIterator<Item = u64>) {
        let mut prev: Option<u64> = None;
        for (pos, seq) in seqs.into_iter().enumerate() {
            if let Some(p) = prev {
                if seq <= p {
                    self.record(Violation {
                        invariant: Invariant::RobAgeOrder,
                        cycle,
                        expected: i128::from(p) + 1,
                        actual: i128::from(seq),
                        detail: format!("entry {pos} has seq {seq} after seq {p}"),
                    });
                    return;
                }
            }
            prev = Some(seq);
        }
    }

    /// IQ/LQ/SQ occupancy counters versus ground truth from the ROB.
    #[allow(clippy::too_many_arguments)]
    pub fn check_queue_counts(
        &mut self,
        cycle: u64,
        iq_count: usize,
        lq_count: usize,
        sq_count: usize,
        rob_in_iq: usize,
        rob_loads: usize,
        rob_stores: usize,
        lq_capacity: usize,
        sq_capacity: usize,
    ) {
        self.check_eq(
            Invariant::LsqOrder,
            cycle,
            rob_in_iq as i128,
            iq_count as i128,
            || format!("iq counter {iq_count} != {rob_in_iq} un-issued ROB entries"),
        );
        self.check_eq(
            Invariant::LsqOrder,
            cycle,
            rob_loads as i128,
            lq_count as i128,
            || format!("lq counter {lq_count} != {rob_loads} loads in ROB"),
        );
        self.check_eq(
            Invariant::LsqOrder,
            cycle,
            rob_stores as i128,
            sq_count as i128,
            || format!("sq counter {sq_count} != {rob_stores} stores in ROB"),
        );
        if lq_count > lq_capacity {
            self.record(Violation {
                invariant: Invariant::LsqOrder,
                cycle,
                expected: lq_capacity as i128,
                actual: lq_count as i128,
                detail: format!("load queue over capacity ({lq_count} > {lq_capacity})"),
            });
        }
        if sq_count > sq_capacity {
            self.record(Violation {
                invariant: Invariant::LsqOrder,
                cycle,
                expected: sq_capacity as i128,
                actual: sq_count as i128,
                detail: format!("store queue over capacity ({sq_count} > {sq_capacity})"),
            });
        }
    }

    /// MSHR allocate/release balance and capacity bounds.
    pub fn check_mshr(
        &mut self,
        cycle: u64,
        allocations: u64,
        releases: u64,
        outstanding: usize,
        capacity: usize,
        peak: usize,
    ) {
        let actual = i128::from(releases) + outstanding as i128;
        self.check_eq(
            Invariant::MshrBalance,
            cycle,
            i128::from(allocations),
            actual,
            || format!("allocations={allocations} releases={releases} outstanding={outstanding}"),
        );
        if outstanding > capacity || peak > capacity {
            self.record(Violation {
                invariant: Invariant::MshrBalance,
                cycle,
                expected: capacity as i128,
                actual: outstanding.max(peak) as i128,
                detail: format!(
                    "MSHR occupancy over capacity (outstanding={outstanding} \
                     peak={peak} capacity={capacity})"
                ),
            });
        }
    }

    /// Counts one stall-window open call of window kind `kind`.
    pub fn note_window_open(&mut self, kind: usize) {
        self.window_opens[kind] += 1;
    }

    /// Counts one stall-window close call of window kind `kind`.
    pub fn note_window_close(&mut self, kind: usize) {
        self.window_closes[kind] += 1;
    }

    /// Window balance for kind `kind`: the pipeline's call counts must
    /// match the ACE counter's closed-window count and open flag.
    pub fn check_windows(&mut self, cycle: u64, kind: usize, closed_windows: u64, open_now: bool) {
        let opens = self.window_opens[kind];
        let closes = self.window_closes[kind];
        self.check_eq(
            Invariant::WindowBalance,
            cycle,
            i128::from(closes) + i128::from(open_now),
            i128::from(opens),
            || format!("kind {kind}: opens={opens} closes={closes} open_now={open_now}"),
        );
        self.check_eq(
            Invariant::WindowBalance,
            cycle,
            i128::from(closes),
            i128::from(closed_windows),
            || format!("kind {kind}: close calls {closes} != {closed_windows} recorded windows"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_records_nothing() {
        let mut s = Sanitizer::new(2);
        s.check_uop_conservation(10, 100, 60, 30, 10);
        s.check_prf(10, "int", 100, 32, 36, 168);
        s.check_rob_order(10, [1, 2, 5, 9]);
        s.check_queue_counts(10, 3, 2, 1, 3, 2, 1, 64, 64);
        s.check_mshr(10, 50, 45, 5, 20, 18);
        s.note_window_open(0);
        s.check_windows(10, 0, 0, true);
        s.note_window_close(0);
        s.check_windows(11, 0, 1, false);
        assert_eq!(s.first_violation(), None);
    }

    #[test]
    fn seeded_uop_leak_is_caught() {
        let mut s = Sanitizer::new(2);
        // One uop vanished: dispatched 100, accounted 99.
        s.check_uop_conservation(42, 100, 60, 30, 9);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::UopConservation);
        assert_eq!(v.cycle, 42);
        assert_eq!(v.expected, 100);
        assert_eq!(v.actual, 99);
    }

    #[test]
    fn seeded_free_list_leak_is_caught() {
        let mut s = Sanitizer::new(2);
        // A register was double-allocated: 167 accounted for out of 168.
        s.check_prf(7, "int", 99, 32, 36, 168);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::PrfLeak);
        assert!(v.detail.contains("int"), "{}", v.detail);
        assert!(v.to_string().contains("prf-leak"));
    }

    #[test]
    fn seeded_mshr_leak_is_caught() {
        let mut s = Sanitizer::new(2);
        // An entry was released twice: releases + outstanding overshoots.
        s.check_mshr(99, 50, 47, 5, 20, 18);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::MshrBalance);
        assert_eq!(v.expected, 50);
        assert_eq!(v.actual, 52);
    }

    #[test]
    fn mshr_over_capacity_is_caught() {
        let mut s = Sanitizer::new(2);
        s.check_mshr(5, 25, 0, 25, 20, 25);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::MshrBalance);
    }

    #[test]
    fn rob_misordering_is_caught() {
        let mut s = Sanitizer::new(2);
        s.check_rob_order(3, [4, 5, 5]);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::RobAgeOrder);
        assert!(v.detail.contains("entry 2"), "{}", v.detail);
    }

    #[test]
    fn queue_counter_drift_is_caught() {
        let mut s = Sanitizer::new(2);
        s.check_queue_counts(8, 3, 5, 1, 3, 4, 1, 64, 64);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::LsqOrder);
        assert!(v.detail.contains("lq counter"), "{}", v.detail);
    }

    #[test]
    fn unbalanced_windows_are_caught() {
        let mut s = Sanitizer::new(2);
        s.note_window_open(1);
        s.note_window_open(1);
        s.note_window_close(1);
        // Two opens, one close, but the window is reported closed.
        s.check_windows(12, 1, 1, false);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::WindowBalance);
    }

    #[test]
    fn only_first_violation_is_kept() {
        let mut s = Sanitizer::new(1);
        s.check_uop_conservation(1, 10, 5, 4, 0);
        s.check_prf(2, "fp", 0, 0, 0, 1);
        let v = s.first_violation().expect("violation");
        assert_eq!(v.invariant, Invariant::UopConservation);
        assert_eq!(v.cycle, 1);
    }

    #[test]
    fn reset_rebaselines_conservation_and_windows() {
        let mut s = Sanitizer::new(1);
        s.note_window_open(0);
        s.note_window_close(0);
        // Measurement reset with 7 uops still in flight.
        s.reset_measurement(7);
        s.check_uop_conservation(100, 20, 15, 2, 10);
        s.check_windows(100, 0, 0, false);
        assert_eq!(s.first_violation(), None);
    }
}
