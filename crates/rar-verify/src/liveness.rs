//! Backward dead-value analysis: FDD/TDD classification and dead
//! destination bits.
//!
//! Mukherjee-style ACE accounting treats every committed instruction's
//! destination value as ACE. Two classes of committed values are in fact
//! architecturally dead and therefore un-ACE:
//!
//! - **FDD** (first-level dynamically dead): the destination register is
//!   overwritten before anything reads it.
//! - **TDD** (transitively dynamically dead): the destination *is* read,
//!   but only by uops whose own destinations are FDD or TDD — the whole
//!   chain feeds nothing architecturally visible.
//!
//! A third, bit-level class refines partially-dead values: a value
//! consumed **only as a load address** ([`AceClass::AddrOnly`]) exposes
//! only its [`ADDR_BITS`] low-order bits; the top `64 - ADDR_BITS` bits of
//! the register can flip without changing the access.
//!
//! The analysis is static over the (deterministic, trace-driven) uop
//! stream and exact for committed uops: the committed dynamic stream *is*
//! the static stream, so "next write of r" in the trace is the dynamic
//! overwrite. Squashed occupancy is already un-ACE by construction in the
//! counter and is unaffected here.
//!
//! Roots of liveness (never dead): stores (both address and data feed
//! memory), branches (control flow), and every register at the analysis
//! horizon (conservative live-out). Deadness converges by an outer
//! fixpoint cooperating with the block-level dataflow in
//! [`crate::blocks`]: each round re-solves block liveness with the reads
//! of already-dead uops removed, so dead chains grow monotonically until
//! stable.

use crate::blocks::{BlockLiveness, LiveSet};
use rar_isa::{RegClass, Uop, UopKind};

/// Architecturally meaningful virtual-address bits. A value used only for
/// address formation exposes this many low-order bits; the rest are dead
/// (canonical sign bits on a 48-bit virtual address space).
pub const ADDR_BITS: u64 = 48;

/// Per-uop ACE classification of the destination value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AceClass {
    /// Destination (or the uop's side effect) is architecturally live;
    /// nothing is refined away. Uops without a destination are `Live`.
    #[default]
    Live,
    /// Destination is consumed only as a load address: bits above
    /// [`ADDR_BITS`] are dead.
    AddrOnly,
    /// First-level dynamically dead: overwritten before any read.
    Fdd,
    /// Transitively dynamically dead: read only by dead uops.
    Tdd,
}

impl AceClass {
    /// Dead bits of a destination value held in a register of
    /// `width_bits`. Always `<= width_bits`.
    #[must_use]
    pub fn dead_dest_bits(self, width_bits: u64) -> u64 {
        match self {
            AceClass::Live => 0,
            AceClass::AddrOnly => width_bits.saturating_sub(ADDR_BITS),
            AceClass::Fdd | AceClass::Tdd => width_bits,
        }
    }

    /// Whether the destination value is fully dead.
    #[must_use]
    pub fn is_dead(self) -> bool {
        matches!(self, AceClass::Fdd | AceClass::Tdd)
    }
}

/// Aggregate classification counts for one analyzed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefinementSummary {
    /// Uops analyzed (the horizon length).
    pub analyzed: u64,
    /// Fully live destinations (including uops without a destination).
    pub live: u64,
    /// Address-only destinations (partially dead).
    pub addr_only: u64,
    /// First-level dynamically dead destinations.
    pub fdd: u64,
    /// Transitively dynamically dead destinations.
    pub tdd: u64,
}

/// The product of the analysis: a per-sequence-number [`AceClass`] map the
/// ACE counter consults at commit time. Sequence numbers beyond the
/// analyzed horizon conservatively classify as [`AceClass::Live`].
///
/// The classification tables are reference-counted, so cloning a
/// refinement is O(1): a sweep engine can analyze a (workload, seed,
/// horizon) triple once and hand the same result to every simulation
/// cell that shares it (the analysis is a pure function of the static
/// instruction stream, so sharing is sound).
#[derive(Debug, Clone, Default)]
pub struct AceRefinement {
    classes: std::sync::Arc<[AceClass]>,
    /// Per-uop dead destination-bit masks from the bit-level analysis
    /// ([`crate::bitlive`]), already unioned with the word-level class
    /// mask so `bit_dead_dest_bits >= dead_dest_bits` holds by
    /// construction (the AVF ordering invariant).
    masks: std::sync::Arc<[u64]>,
    /// Dead-set size after each outer fixpoint round (non-decreasing).
    rounds: std::sync::Arc<[u64]>,
}

impl AceRefinement {
    /// An empty refinement: everything classifies as live.
    #[must_use]
    pub fn none() -> Self {
        AceRefinement::default()
    }

    /// Classification of the uop with sequence number `seq`.
    #[must_use]
    pub fn class(&self, seq: u64) -> AceClass {
        usize::try_from(seq)
            .ok()
            .and_then(|i| self.classes.get(i).copied())
            .unwrap_or(AceClass::Live)
    }

    /// Dead bits of the destination value of uop `seq`, given the bit
    /// width of the physical register holding it.
    #[must_use]
    pub fn dead_dest_bits(&self, seq: u64, width_bits: u64) -> u64 {
        self.class(seq).dead_dest_bits(width_bits)
    }

    /// Dead destination-*bit* mask of uop `seq` over the 64-bit value
    /// lane (bit `i` of the mask covers register bits `i`, `i + 64`, …
    /// for registers wider than 64 bits). Empty beyond the horizon.
    #[must_use]
    pub fn dead_dest_mask(&self, seq: u64) -> u64 {
        usize::try_from(seq)
            .ok()
            .and_then(|i| self.masks.get(i).copied())
            .unwrap_or(0)
    }

    /// Bit-refined dead bits of the destination value of uop `seq` for a
    /// register of `width_bits`: the word-level [`Self::dead_dest_bits`]
    /// plus every additionally-dead bit the per-kind transfer functions
    /// prove. Always within `[dead_dest_bits, width_bits]`, which is the
    /// `bit_refined <= refined <= unrefined` AVF ordering at the
    /// per-value level.
    #[must_use]
    pub fn bit_dead_dest_bits(&self, seq: u64, width_bits: u64) -> u64 {
        let word = self.dead_dest_bits(seq, width_bits);
        let mask = self.dead_dest_mask(seq);
        // Mask bit i covers width_bits / 64 physical bits (e.g. two for
        // the 128-bit FP registers).
        let scaled = u64::from(mask.count_ones()) * width_bits / crate::transfer::MASK_BITS;
        scaled.max(word).min(width_bits)
    }

    /// Number of uops covered by the analysis.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.classes.len() as u64
    }

    /// Dead-set size after each outer fixpoint round. Monotonically
    /// non-decreasing; the final two entries are equal (convergence).
    #[must_use]
    pub fn rounds(&self) -> &[u64] {
        &self.rounds
    }

    /// Classification counts over the analyzed horizon.
    #[must_use]
    pub fn summary(&self) -> RefinementSummary {
        let mut s = RefinementSummary {
            analyzed: self.classes.len() as u64,
            ..RefinementSummary::default()
        };
        for c in self.classes.iter() {
            match c {
                AceClass::Live => s.live += 1,
                AceClass::AddrOnly => s.addr_only += 1,
                AceClass::Fdd => s.fdd += 1,
                AceClass::Tdd => s.tdd += 1,
            }
        }
        s
    }
}

/// Whether a dead destination still leaves the uop with an architectural
/// side effect that must be preserved (and hence keeps its sources live).
fn has_side_effect(uop: &Uop) -> bool {
    matches!(uop.kind(), UopKind::Store | UopKind::Branch)
}

/// Forward pass: for each definition, how many uops read that value
/// before it is overwritten (crossing block boundaries). Distinguishes
/// FDD (no readers at all) from TDD (readers exist but are all dead).
fn reader_counts(uops: &[Uop]) -> Vec<u32> {
    let mut last_def: [Option<usize>; 64] = [None; 64];
    let mut readers = vec![0u32; uops.len()];
    for (i, uop) in uops.iter().enumerate() {
        for src in uop.srcs() {
            if let Some(def) = last_def[src.flat_index()] {
                readers[def] += 1;
            }
        }
        if let Some(dest) = uop.dest() {
            last_def[dest.flat_index()] = Some(i);
        }
    }
    readers
}

/// Analyzes a finite uop stream and classifies every destination value.
///
/// The horizon is conservative: every register is treated as live-out at
/// the end of the slice, so values still in flight at the boundary are
/// never classified dead.
#[must_use]
pub fn analyze(uops: &[Uop]) -> AceRefinement {
    let readers = reader_counts(uops);
    let mut classes = vec![AceClass::Live; uops.len()];
    let mut dead = vec![false; uops.len()];
    let mut rounds = Vec::new();

    // Outer fixpoint: block liveness and per-uop classification cooperate.
    // Reads performed by uops already classified dead are excluded from
    // the next round's block summaries, letting deadness propagate
    // backward through whole chains (TDD). The dead set only grows, so
    // this terminates in at most `uops.len()` rounds (in practice 2-3).
    loop {
        let solved = BlockLiveness::solve(uops, &dead, LiveSet::full());
        let mut grew = false;
        for (b, block) in solved.blocks.iter().enumerate() {
            // In-block backward scan seeded with the block's live-out.
            // `live_full` holds registers whose full value is needed;
            // `live_addr` holds registers needed only for load-address
            // formation. Block boundaries are conservative: everything
            // live-out is treated as fully live.
            let mut live_full = solved.live_out[b];
            let mut live_addr = LiveSet::empty();
            for i in (block.start..block.end).rev() {
                let uop = &uops[i];
                if let Some(dest) = uop.dest() {
                    let class = if live_full.contains(dest) {
                        AceClass::Live
                    } else if live_addr.contains(dest) {
                        AceClass::AddrOnly
                    } else if readers[i] == 0 {
                        AceClass::Fdd
                    } else {
                        AceClass::Tdd
                    };
                    classes[i] = class;
                    if class.is_dead() && !dead[i] {
                        dead[i] = true;
                        grew = true;
                    }
                    live_full.remove(dest);
                    live_addr.remove(dest);
                }
                // A dead uop's reads keep nothing live — unless the uop
                // has an architectural side effect, which cannot be dead.
                if dead[i] && !has_side_effect(uop) {
                    continue;
                }
                for src in uop.srcs() {
                    if uop.kind() == UopKind::Load && src.class() == RegClass::Int {
                        // Load sources feed address formation only.
                        if !live_full.contains(src) {
                            live_addr.insert(src);
                        }
                    } else {
                        live_addr.remove(src);
                        live_full.insert(src);
                    }
                }
            }
        }
        rounds.push(dead.iter().filter(|&&d| d).count() as u64);
        if !grew {
            break;
        }
    }

    // Bit-level pass: per-uop dead destination-bit masks from the
    // per-kind transfer functions, unioned with the word-level class
    // mask so the bit refinement can only remove *more* ACE mass than
    // the word refinement (the AVF ordering invariant, structurally).
    let bit = crate::bitlive::analyze_bits(uops);
    let masks: Vec<u64> = bit
        .dead_masks
        .iter()
        .zip(classes.iter())
        .map(|(&m, &class)| {
            m | match class {
                AceClass::Live => 0,
                AceClass::AddrOnly => !((1u64 << ADDR_BITS) - 1),
                AceClass::Fdd | AceClass::Tdd => u64::MAX,
            }
        })
        .collect();

    AceRefinement {
        classes: classes.into(),
        masks: masks.into(),
        rounds: rounds.into(),
    }
}

/// Analyzes the first `horizon` uops of a stream (e.g. a workload trace).
#[must_use]
pub fn analyze_stream<I: Iterator<Item = Uop>>(stream: I, horizon: usize) -> AceRefinement {
    let uops: Vec<Uop> = stream.take(horizon).collect();
    analyze(&uops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_isa::{ArchReg, BranchClass, BranchInfo};

    fn alu(pc: u64, dest: u8) -> Uop {
        Uop::alu(pc, UopKind::IntAlu).with_dest(ArchReg::int(dest))
    }

    fn alu_rr(pc: u64, dest: u8, src: u8) -> Uop {
        alu(pc, dest).with_src(ArchReg::int(src))
    }

    fn branch(pc: u64) -> Uop {
        Uop::branch(
            pc,
            BranchInfo {
                taken: false,
                target: pc + 4,
                class: BranchClass::Conditional,
            },
        )
    }

    #[test]
    fn overwrite_without_read_is_fdd() {
        let uops = vec![alu(0, 1), alu(4, 1), alu_rr(8, 2, 1)];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::Fdd);
        assert_eq!(r.class(1), AceClass::Live);
        assert_eq!(r.summary().fdd, 1);
    }

    #[test]
    fn read_by_dead_chain_is_tdd() {
        // u0 -> read by u1 -> read by u2; r3 then overwritten unread.
        // u2 is FDD, u1 becomes TDD, u0 becomes TDD transitively.
        let uops = vec![
            alu(0, 1),
            alu_rr(4, 2, 1),
            alu_rr(8, 3, 2),
            alu(12, 3),
            alu(16, 2),
            alu(20, 1),
            alu_rr(24, 4, 3).with_src(ArchReg::int(2)),
        ];
        let r = analyze(&uops);
        assert_eq!(r.class(2), AceClass::Fdd, "r3 overwritten unread");
        assert_eq!(r.class(1), AceClass::Tdd, "read only by dead u2");
        assert_eq!(r.class(0), AceClass::Tdd, "read only by dead u1");
    }

    #[test]
    fn store_and_branch_sources_are_roots() {
        let uops = vec![
            alu(0, 1),
            Uop::store(4, 0x1000, 8).with_src(ArchReg::int(1)),
            alu(8, 1),
            branch(12).with_src(ArchReg::int(1)),
            alu(16, 1),
        ];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::Live, "feeds a store");
        assert_eq!(r.class(2), AceClass::Live, "feeds a branch");
        // The final write survives to the horizon: conservatively live.
        assert_eq!(r.class(4), AceClass::Live);
    }

    #[test]
    fn address_only_value_has_dead_top_bits() {
        let uops = vec![
            alu(0, 1),
            Uop::load(4, 0x2000, 8)
                .with_src(ArchReg::int(1))
                .with_dest(ArchReg::int(2)),
            Uop::store(8, 0x3000, 8).with_src(ArchReg::int(2)),
            alu(12, 1),
        ];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::AddrOnly);
        assert_eq!(r.dead_dest_bits(0, 64), 64 - ADDR_BITS);
        assert_eq!(r.class(1), AceClass::Live, "loaded value feeds a store");
    }

    #[test]
    fn promotion_to_full_liveness_wins_over_addr_only() {
        // r1 feeds both a load address and an ALU op: fully live.
        let uops = vec![
            alu(0, 1),
            Uop::load(4, 0x2000, 8)
                .with_src(ArchReg::int(1))
                .with_dest(ArchReg::int(2)),
            alu_rr(8, 3, 1),
            Uop::store(12, 0x3000, 8)
                .with_src(ArchReg::int(2))
                .with_src(ArchReg::int(3)),
            alu(16, 1),
        ];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::Live);
    }

    #[test]
    fn horizon_is_conservative() {
        let uops = vec![alu(0, 1), alu(4, 2)];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::Live);
        assert_eq!(r.class(1), AceClass::Live);
        assert_eq!(r.class(99), AceClass::Live, "beyond horizon");
    }

    #[test]
    fn dead_bits_never_exceed_width() {
        for class in [
            AceClass::Live,
            AceClass::AddrOnly,
            AceClass::Fdd,
            AceClass::Tdd,
        ] {
            for width in [0u64, 1, 48, 64, 128] {
                assert!(class.dead_dest_bits(width) <= width);
            }
        }
    }

    #[test]
    fn fixpoint_rounds_are_monotone() {
        let uops: Vec<Uop> = (0..64u64)
            .map(|i| alu_rr(i * 4, (i % 7) as u8, ((i + 3) % 7) as u8))
            .collect();
        let r = analyze(&uops);
        assert!(
            r.rounds().windows(2).all(|w| w[0] <= w[1]),
            "{:?}",
            r.rounds()
        );
    }

    #[test]
    fn bit_dead_bits_dominate_word_dead_bits() {
        // The bit mask is unioned with the class mask at construction,
        // so for every uop and width: word-level <= bit-level <= width.
        let uops = vec![
            alu(0, 1),
            Uop::load(4, 0x2000, 8)
                .with_src(ArchReg::int(1))
                .with_dest(ArchReg::int(2)),
            branch(8).with_src(ArchReg::int(2)),
            alu(12, 1),
            alu(16, 2),
            alu(20, 3),
            alu(24, 3),
            Uop::store(28, 0x100, 8).with_src(ArchReg::int(3)),
        ];
        let r = analyze(&uops);
        for seq in 0..r.horizon() {
            for width in [64u64, 128] {
                let word = r.dead_dest_bits(seq, width);
                let bit = r.bit_dead_dest_bits(seq, width);
                assert!(word <= bit && bit <= width, "seq {seq} width {width}");
            }
        }
        // And the bit level genuinely refines: r1 is a load address
        // (16 word-dead bits) whose loaded value feeds only a branch
        // condition, so the loaded value keeps just one live bit.
        assert_eq!(r.dead_dest_bits(1, 64), 0);
        assert_eq!(r.bit_dead_dest_bits(1, 64), 63);
    }

    #[test]
    fn word_dead_classes_imply_full_bit_masks() {
        let uops = vec![alu(0, 1), alu(4, 1), alu_rr(8, 2, 1)];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::Fdd);
        assert_eq!(r.dead_dest_mask(0), u64::MAX);
        assert_eq!(r.bit_dead_dest_bits(0, 128), 128);
        assert_eq!(r.dead_dest_mask(99), 0, "beyond horizon");
    }

    #[test]
    fn fp_registers_classify_too() {
        let uops = vec![
            Uop::alu(0, UopKind::FpAdd).with_dest(ArchReg::fp(1)),
            Uop::alu(4, UopKind::FpAdd).with_dest(ArchReg::fp(1)),
            Uop::store(8, 0x100, 8).with_src(ArchReg::fp(1)),
        ];
        let r = analyze(&uops);
        assert_eq!(r.class(0), AceClass::Fdd);
        assert_eq!(r.dead_dest_bits(0, 128), 128);
    }
}
