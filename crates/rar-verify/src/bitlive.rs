//! Backward bit-mask liveness: per-uop dead destination *bits*.
//!
//! The word-level analysis in [`crate::liveness`] answers "is this
//! destination value ever needed"; this module answers, for values that
//! *are* needed, "which bits of it". The dataflow state is one 64-bit
//! live mask per architectural register ([`MaskVec`]), and each uop's
//! backward step applies the per-kind transfer functions from
//! [`crate::transfer`]: a branch demands one condition bit of its
//! sources, a load demands only address bits, and carry-monotone ALU
//! kinds demand bits only up to the most significant live destination
//! bit. The result is a per-uop *dead-bit mask* generalizing the
//! all-or-nothing `dead_dest_bits` of the word-level classes.
//!
//! Like the word-level pass, the analysis runs over the basic-block
//! chain of [`crate::blocks::split_blocks`] as a monotone fixpoint with
//! an observable convergence trace — the dynamic trace is a straight
//! line, so one backward sweep reaches the fixpoint, but the solver
//! iterates until stable so the monotone contract is explicit and
//! testable. The stream horizon is conservative: every register is
//! fully live at the end of the slice.

use crate::blocks::split_blocks;
use crate::transfer::src_live_mask;
use rar_isa::{ArchReg, Uop};

/// One 64-bit live mask per architectural register (the dataflow state
/// of the bit-level analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskVec {
    masks: [u64; 64],
}

impl MaskVec {
    /// All registers fully dead.
    #[must_use]
    pub const fn empty() -> Self {
        MaskVec { masks: [0; 64] }
    }

    /// All registers fully live (the conservative horizon seed).
    #[must_use]
    pub const fn full() -> Self {
        MaskVec {
            masks: [u64::MAX; 64],
        }
    }

    /// Live mask of `reg`.
    #[must_use]
    pub fn get(&self, reg: ArchReg) -> u64 {
        self.masks[reg.flat_index()]
    }

    /// Replaces the live mask of `reg`.
    pub fn set(&mut self, reg: ArchReg, mask: u64) {
        self.masks[reg.flat_index()] = mask;
    }

    /// Ors `mask` into the live mask of `reg`.
    pub fn or(&mut self, reg: ArchReg, mask: u64) {
        self.masks[reg.flat_index()] |= mask;
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &MaskVec) -> bool {
        let mut changed = false;
        for (m, o) in self.masks.iter_mut().zip(other.masks.iter()) {
            let before = *m;
            *m |= o;
            changed |= *m != before;
        }
        changed
    }

    /// Total number of live bits across all registers.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.masks.iter().map(|m| u64::from(m.count_ones())).sum()
    }
}

impl Default for MaskVec {
    fn default() -> Self {
        MaskVec::empty()
    }
}

/// One backward step of the bit dataflow through `uop`. Returns the
/// destination's live mask at this point (all ones treated as "unknown"
/// for uops without a destination is avoided by returning 0 for them —
/// a destination-less uop refines nothing).
fn step_backward(uop: &Uop, live: &mut MaskVec) -> u64 {
    let dest_live = match uop.dest() {
        Some(dest) => {
            let l = live.get(dest);
            live.set(dest, 0); // killed: the uop (re)defines every bit
            l
        }
        None => 0,
    };
    let demanded = src_live_mask(uop.kind(), dest_live);
    if demanded != 0 {
        for src in uop.srcs() {
            live.or(src, demanded);
        }
    }
    dest_live
}

/// Solved block-level bit liveness for one stream.
#[derive(Debug, Clone)]
pub struct BitLiveness {
    /// Block boundaries, in program order (as from [`split_blocks`]).
    pub blocks: Vec<(usize, usize)>,
    /// Live-in mask vector per block.
    pub live_in: Vec<MaskVec>,
    /// Live-out mask vector per block.
    pub live_out: Vec<MaskVec>,
    /// Total live-bit count after each solver round; non-decreasing
    /// (the fixpoint is monotone) and the last two entries are equal.
    pub rounds: Vec<u64>,
}

impl BitLiveness {
    /// Solves backward bit liveness over the block chain of `uops`,
    /// seeding the stream horizon with `exit_live`.
    #[must_use]
    pub fn solve(uops: &[Uop], exit_live: MaskVec) -> Self {
        let blocks = split_blocks(uops);
        let n = blocks.len();
        let mut live_in = vec![MaskVec::empty(); n];
        let mut live_out = vec![MaskVec::empty(); n];
        let mut rounds = Vec::new();
        // Backward chain: block i's only successor is block i + 1; the
        // last block flows into the conservative horizon seed. The
        // per-kind transfer functions are monotone in the destination's
        // live mask, so union-accumulating live-in keeps the whole
        // solve monotone.
        loop {
            let mut changed = false;
            for i in (0..n).rev() {
                let succ_in = if i + 1 < n { live_in[i + 1] } else { exit_live };
                changed |= live_out[i].union_with(&succ_in);
                let mut scan = live_out[i];
                for uop in uops[blocks[i].0..blocks[i].1].iter().rev() {
                    step_backward(uop, &mut scan);
                }
                changed |= live_in[i].union_with(&scan);
            }
            let total: u64 = live_in
                .iter()
                .chain(live_out.iter())
                .map(MaskVec::total_bits)
                .sum();
            rounds.push(total);
            if !changed {
                break;
            }
        }
        BitLiveness {
            blocks,
            live_in,
            live_out,
            rounds,
        }
    }
}

/// The product of the analysis: for every uop, the mask of destination
/// bits that are architecturally dead (no downstream consumer demands
/// them before the value is overwritten, under the per-kind transfer
/// contract). Uops without a destination get an empty mask.
#[derive(Debug, Clone)]
pub struct BitRefinement {
    /// Per-uop dead destination-bit mask, indexed by stream position.
    pub dead_masks: Vec<u64>,
    /// The solver's convergence trace (see [`BitLiveness::rounds`]).
    pub rounds: Vec<u64>,
}

/// Analyzes a finite uop stream and computes every destination's
/// dead-bit mask. The horizon is conservative: every register is fully
/// live at the end of the slice, so values in flight at the boundary
/// have an empty dead mask.
#[must_use]
pub fn analyze_bits(uops: &[Uop]) -> BitRefinement {
    let solved = BitLiveness::solve(uops, MaskVec::full());
    let mut dead_masks = vec![0u64; uops.len()];
    for (b, &(start, end)) in solved.blocks.iter().enumerate() {
        // Re-scan each block from its solved live-out, recording the
        // destination's live mask at every definition point.
        let mut scan = solved.live_out[b];
        for i in (start..end).rev() {
            let dest_live = step_backward(&uops[i], &mut scan);
            if uops[i].dest().is_some() {
                dead_masks[i] = !dest_live;
            }
        }
    }
    BitRefinement {
        dead_masks,
        rounds: solved.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::ADDR_BITS;
    use crate::transfer::ADDR_MASK;
    use rar_isa::{ArchReg, BranchClass, BranchInfo, UopKind};

    fn alu(pc: u64, dest: u8) -> Uop {
        Uop::alu(pc, UopKind::IntAlu).with_dest(ArchReg::int(dest))
    }

    fn alu_rr(pc: u64, dest: u8, src: u8) -> Uop {
        alu(pc, dest).with_src(ArchReg::int(src))
    }

    fn branch_on(pc: u64, src: u8) -> Uop {
        Uop::branch(
            pc,
            BranchInfo {
                taken: false,
                target: pc + 4,
                class: BranchClass::Conditional,
            },
        )
        .with_src(ArchReg::int(src))
    }

    #[test]
    fn branch_condition_collapses_to_one_live_bit() {
        // r1 feeds only a branch condition, then is overwritten: every
        // bit but bit 0 is dead.
        let uops = vec![alu(0, 1), branch_on(4, 1), alu(8, 1)];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[0], !1u64);
    }

    #[test]
    fn address_source_keeps_low_bits_only() {
        let uops = vec![
            alu(0, 1),
            Uop::load(4, 0x2000, 8)
                .with_src(ArchReg::int(1))
                .with_dest(ArchReg::int(2)),
            Uop::store(8, 0x3000, 8).with_src(ArchReg::int(2)),
            alu(12, 1),
        ];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[0], !ADDR_MASK);
        assert_eq!(u64::from(r.dead_masks[0].count_ones()), 64 - ADDR_BITS);
        // The loaded value feeds a store: fully live.
        assert_eq!(r.dead_masks[1], 0);
    }

    #[test]
    fn carry_monotone_chain_narrows_to_the_live_prefix() {
        // r1 -> alu -> r2, and r2 feeds only a branch condition: the
        // alu demands bit 0 of r1 only (smear of a 1-bit live set).
        let uops = vec![
            alu(0, 1),
            alu_rr(4, 2, 1),
            branch_on(8, 2),
            alu(12, 1),
            alu(16, 2),
        ];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[1], !1u64, "branch demands bit 0 of r2");
        assert_eq!(r.dead_masks[0], !1u64, "alu smears bit 0 down to bit 0");
    }

    #[test]
    fn store_sources_are_fully_live() {
        let uops = vec![
            alu(0, 1),
            Uop::store(4, 0x1000, 8).with_src(ArchReg::int(1)),
            alu(8, 1),
        ];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[0], 0);
    }

    #[test]
    fn unread_overwritten_value_is_fully_dead() {
        let uops = vec![
            alu(0, 1),
            alu(4, 1),
            Uop::store(8, 0x10, 8).with_src(ArchReg::int(1)),
        ];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[0], u64::MAX);
        assert_eq!(r.dead_masks[1], 0);
    }

    #[test]
    fn horizon_is_conservative() {
        let uops = vec![alu(0, 1)];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[0], 0, "live-out full at the horizon");
    }

    #[test]
    fn all_to_all_kinds_demand_everything() {
        let uops = vec![
            alu(0, 1),
            Uop::alu(4, UopKind::IntDiv)
                .with_src(ArchReg::int(1))
                .with_dest(ArchReg::int(2)),
            branch_on(8, 2),
            alu(12, 1),
            alu(16, 2),
        ];
        let r = analyze_bits(&uops);
        assert_eq!(r.dead_masks[1], !1u64, "quotient feeds a 1-bit condition");
        assert_eq!(r.dead_masks[0], 0, "divide demands every source bit");
    }

    #[test]
    fn fixpoint_rounds_are_monotone_and_converge() {
        let uops: Vec<Uop> = (0..64u64)
            .map(|i| {
                if i % 7 == 3 {
                    branch_on(i * 4, (i % 5) as u8 + 1)
                } else {
                    alu_rr(i * 4, (i % 5) as u8 + 1, ((i + 2) % 5) as u8 + 1)
                }
            })
            .collect();
        let r = analyze_bits(&uops);
        assert!(r.rounds.windows(2).all(|w| w[0] <= w[1]), "{:?}", r.rounds);
        let n = r.rounds.len();
        assert!(n >= 2 && r.rounds[n - 1] == r.rounds[n - 2]);
    }

    #[test]
    fn mask_vec_algebra() {
        let mut v = MaskVec::empty();
        assert_eq!(v.total_bits(), 0);
        v.or(ArchReg::int(3), 0b1010);
        v.or(ArchReg::fp(3), 1);
        assert_eq!(v.get(ArchReg::int(3)), 0b1010);
        assert_eq!(v.total_bits(), 3);
        let mut w = MaskVec::empty();
        assert!(w.union_with(&v));
        assert!(!w.union_with(&v), "second union is a no-op");
        assert_eq!(w.get(ArchReg::fp(3)), 1);
        assert_eq!(MaskVec::full().total_bits(), 64 * 64);
    }
}
