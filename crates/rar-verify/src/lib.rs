//! Static analysis and runtime verification for the RAR workspace.
//!
//! Four cooperating layers, none of which perturbs the simulation:
//!
//! - [`blocks`]/[`liveness`] — a backward liveness/dead-value dataflow
//!   analysis over [`rar_isa`] uop streams that classifies first-level
//!   (FDD) and transitively (TDD) dynamically-dead destination values and
//!   dead destination bits. Mukherjee-style ACE accounting counts every
//!   committed instruction as ACE; BEC-style static analysis shows that a
//!   committed value nobody ever reads is architecturally un-ACE. The
//!   resulting per-uop [`AceClass`] lets the ACE counter report a
//!   *refined* AVF next to the paper's unrefined one.
//! - [`transfer`]/[`bitlive`] — per-`UopKind` bit-transfer functions and
//!   a backward bit-mask dataflow refining *which bits* of a live value
//!   are ACE (branch conditions collapse to one bit, addresses to their
//!   low 48, carry chains to their live prefix), yielding the
//!   bit-refined AVF. The same transfer table drives the core's forward
//!   per-bit poison propagation, so every static dead-bit claim is
//!   falsifiable by fault injection; a bit-exact reference interpreter
//!   ([`interp`]) backs the property tests.
//! - [`sanitize`] — cross-structure conservation invariants (uop, register
//!   and MSHR bookkeeping, ROB ordering, ACE stall-window balance) checked
//!   every cycle when the core is built with `--features sanitize`, with
//!   precise first-violation diagnostics.
//! - [`config`] — typed configuration errors ([`ConfigError`]) shared by
//!   the core, memory and simulation config validators so inconsistent
//!   Table II parameters are rejected before a simulation starts instead
//!   of surfacing as runtime panics inside a sweep.
//!
//! # Examples
//!
//! ```
//! use rar_isa::{ArchReg, Uop, UopKind};
//! use rar_verify::{analyze, AceClass};
//!
//! // r1 is written twice with no intervening read: the first write is
//! // first-level dynamically dead (FDD).
//! let uops = vec![
//!     Uop::alu(0x0, UopKind::IntAlu).with_dest(ArchReg::int(1)),
//!     Uop::alu(0x4, UopKind::IntAlu).with_dest(ArchReg::int(1)),
//!     Uop::alu(0x8, UopKind::IntAlu)
//!         .with_src(ArchReg::int(1))
//!         .with_dest(ArchReg::int(2)),
//! ];
//! let refinement = analyze(&uops);
//! assert_eq!(refinement.class(0), AceClass::Fdd);
//! assert_eq!(refinement.class(1), AceClass::Live);
//! ```

#![forbid(unsafe_code)]

pub mod bitlive;
pub mod blocks;
pub mod config;
pub mod interp;
pub mod liveness;
pub mod sanitize;
pub mod transfer;

pub use bitlive::{analyze_bits, BitLiveness, BitRefinement, MaskVec};
pub use blocks::{split_blocks, BasicBlock, BlockLiveness, LiveSet};
pub use config::ConfigError;
pub use interp::{interpret, Observation, ValueFlip};
pub use liveness::{
    analyze, analyze_stream, AceClass, AceRefinement, RefinementSummary, ADDR_BITS,
};
pub use sanitize::{Invariant, Sanitizer, Violation};
pub use transfer::{
    all_if_any, consumed_src_mask, dest_poison_mask, smear_down, smear_up, src_live_mask,
    ADDR_MASK, ALL_KINDS, MASK_BITS,
};
