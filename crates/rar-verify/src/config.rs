//! Typed configuration errors shared by the workspace's validators.
//!
//! Before this layer existed, an inconsistent Table II parameter (a
//! zero-way cache, a physical register file smaller than the architectural
//! state, an unknown workload name) surfaced as a panic somewhere inside
//! the simulation — and sweep drivers had to wrap every run in
//! `catch_unwind` to survive it. Validators in `rar-core`, `rar-mem` and
//! `rar-sim` now reject bad configurations up front with a [`ConfigError`]
//! that names the offending field, shrinking the `catch_unwind` net to
//! genuinely unexpected failures.

use std::error::Error;
use std::fmt;

/// A rejected configuration parameter, tagged by the subsystem whose
/// validator found it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A core (pipeline) parameter is inconsistent.
    Core {
        /// The offending field, e.g. `"int_regs"`.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A memory-hierarchy parameter is inconsistent.
    Mem {
        /// The offending field, e.g. `"l1d.assoc"`.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A simulation-level parameter is inconsistent.
    Sim {
        /// The offending field, e.g. `"workload"`.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl ConfigError {
    /// A core-configuration error.
    #[must_use]
    pub fn core(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError::Core {
            field,
            reason: reason.into(),
        }
    }

    /// A memory-configuration error.
    #[must_use]
    pub fn mem(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError::Mem {
            field,
            reason: reason.into(),
        }
    }

    /// A simulation-configuration error.
    #[must_use]
    pub fn sim(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError::Sim {
            field,
            reason: reason.into(),
        }
    }

    /// The offending field name.
    #[must_use]
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::Core { field, .. }
            | ConfigError::Mem { field, .. }
            | ConfigError::Sim { field, .. } => field,
        }
    }

    /// The human-readable rejection reason.
    #[must_use]
    pub fn reason(&self) -> &str {
        match self {
            ConfigError::Core { reason, .. }
            | ConfigError::Mem { reason, .. }
            | ConfigError::Sim { reason, .. } => reason,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (subsystem, field, reason) = match self {
            ConfigError::Core { field, reason } => ("core", field, reason),
            ConfigError::Mem { field, reason } => ("memory", field, reason),
            ConfigError::Sim { field, reason } => ("simulation", field, reason),
        };
        write!(f, "{subsystem} config: {field}: {reason}")
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_subsystem_and_field() {
        let e = ConfigError::core("width", "must be nonzero");
        assert_eq!(e.to_string(), "core config: width: must be nonzero");
        let e = ConfigError::mem("l1d.assoc", "must be nonzero");
        assert_eq!(e.to_string(), "memory config: l1d.assoc: must be nonzero");
    }

    #[test]
    fn accessors_expose_field_and_reason() {
        let e = ConfigError::sim("workload", "unknown workload 'quux'");
        assert_eq!(e.field(), "workload");
        assert_eq!(e.reason(), "unknown workload 'quux'");
        assert!(e.to_string().contains("unknown workload 'quux'"));
    }
}
