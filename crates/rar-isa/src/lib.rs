//! Micro-op ISA, register model, and instruction-stream abstractions.
//!
//! This crate defines the dynamic instruction representation shared by every
//! other crate in the RAR workspace: [`Uop`] (a decoded micro-operation with
//! its register operands, memory reference, and branch metadata), the
//! architectural register file model ([`ArchReg`], [`RegClass`]), and the
//! [`UopSource`]/[`TraceWindow`] machinery that lets a cycle-level simulator
//! re-fetch instructions after a pipeline flush without requiring workload
//! generators to support random access.
//!
//! # Examples
//!
//! ```
//! use rar_isa::{Uop, UopKind, ArchReg, TraceWindow, UopSource};
//!
//! // A trivial stream of independent integer adds.
//! let stream = (0u64..).map(|i| {
//!     Uop::alu(0x1000 + 4 * i, UopKind::IntAlu)
//!         .with_dest(ArchReg::int((i % 8) as u8))
//! });
//! let mut window = TraceWindow::new(stream);
//! let first = window.get(0).clone();
//! assert_eq!(first.pc(), 0x1000);
//! // Re-fetching after a flush yields the identical micro-op.
//! assert_eq!(window.get(0).pc(), first.pc());
//! ```

pub mod block;
pub mod reg;
pub mod stream;
pub mod uop;

pub use block::{cache_line, CACHE_LINE_BYTES};
pub use reg::{ArchReg, RegClass, NUM_ARCH_REGS_PER_CLASS};
pub use stream::{TraceWindow, UopSource};
pub use uop::{BranchClass, BranchInfo, MemInfo, Uop, UopKind};
