//! Instruction-stream abstraction with flush-and-refetch support.
//!
//! The simulator is trace-driven: workloads produce an infinite, *dynamic*
//! (correct-path) sequence of micro-ops. A cycle-level core, however, needs
//! to re-read parts of that sequence — after a branch-misprediction recovery,
//! a runahead-exit flush, or a FLUSH-style pipeline flush, fetch is
//! redirected to an instruction that was already delivered once. Rather than
//! forcing every workload generator to support random access, [`TraceWindow`]
//! buffers a sliding window of generated micro-ops and serves repeated reads
//! by *dynamic sequence number*.

use crate::uop::Uop;
use std::collections::VecDeque;

/// A source of micro-ops addressable by dynamic sequence number.
///
/// Sequence numbers start at zero and index the *correct-path* dynamic
/// instruction stream. Implementations must be deterministic: `get(n)` must
/// return the same micro-op every time it is called, and `release_before`
/// is a promise from the caller that sequence numbers below the given bound
/// will never be requested again.
pub trait UopSource {
    /// Returns the micro-op at dynamic sequence number `seq`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `seq` precedes a bound previously passed
    /// to [`UopSource::release_before`].
    fn get(&mut self, seq: u64) -> &Uop;

    /// Declares that all sequence numbers `< bound` are dead and their
    /// storage may be reclaimed.
    fn release_before(&mut self, bound: u64);
}

/// Adapts any infinite `Iterator<Item = Uop>` into a [`UopSource`] by
/// buffering a sliding window.
///
/// The window grows on demand (runahead mode can read hundreds of micro-ops
/// past the newest committed one) and is trimmed by
/// [`UopSource::release_before`], which the core calls at commit.
///
/// # Examples
///
/// ```
/// use rar_isa::{TraceWindow, Uop, UopKind, UopSource};
/// let mut w = TraceWindow::new((0u64..).map(|i| Uop::alu(i * 4, UopKind::IntAlu)));
/// assert_eq!(w.get(5).pc(), 20);
/// assert_eq!(w.get(2).pc(), 8); // re-read within the window
/// w.release_before(4);
/// assert_eq!(w.get(4).pc(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWindow<I> {
    inner: I,
    /// Sequence number of `buf[0]`.
    base: u64,
    buf: VecDeque<Uop>,
    generated: u64,
}

impl<I: Iterator<Item = Uop>> TraceWindow<I> {
    /// Wraps an infinite micro-op iterator.
    pub fn new(inner: I) -> Self {
        TraceWindow {
            inner,
            base: 0,
            buf: VecDeque::new(),
            generated: 0,
        }
    }

    /// Number of micro-ops currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Total micro-ops pulled from the underlying generator so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn fill_to(&mut self, seq: u64) {
        while self.base + self.buf.len() as u64 <= seq {
            let u = self
                .inner
                .next()
                .expect("workload generators must produce an infinite stream");
            self.buf.push_back(u);
            self.generated += 1;
        }
    }
}

impl<I: Iterator<Item = Uop>> UopSource for TraceWindow<I> {
    fn get(&mut self, seq: u64) -> &Uop {
        assert!(
            seq >= self.base,
            "sequence {seq} was released (window base {})",
            self.base
        );
        self.fill_to(seq);
        &self.buf[(seq - self.base) as usize]
    }

    fn release_before(&mut self, bound: u64) {
        while self.base < bound && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::UopKind;

    fn counting_stream() -> impl Iterator<Item = Uop> {
        (0u64..).map(|i| Uop::alu(i, UopKind::IntAlu))
    }

    #[test]
    fn serves_by_sequence_number() {
        let mut w = TraceWindow::new(counting_stream());
        assert_eq!(w.get(0).pc(), 0);
        assert_eq!(w.get(10).pc(), 10);
        assert_eq!(w.get(3).pc(), 3);
    }

    #[test]
    fn rereads_are_identical() {
        let mut w = TraceWindow::new(counting_stream());
        let a = w.get(7).clone();
        let b = w.get(7).clone();
        assert_eq!(a, b);
    }

    #[test]
    fn release_trims_window() {
        let mut w = TraceWindow::new(counting_stream());
        let _ = w.get(100);
        assert_eq!(w.buffered(), 101);
        w.release_before(50);
        assert_eq!(w.buffered(), 51);
        assert_eq!(w.get(50).pc(), 50);
    }

    #[test]
    fn release_beyond_buffer_is_safe() {
        let mut w = TraceWindow::new(counting_stream());
        let _ = w.get(5);
        w.release_before(1_000);
        // Window empties; next get resumes from wherever generation is.
        assert_eq!(w.buffered(), 0);
    }

    #[test]
    #[should_panic(expected = "was released")]
    fn reading_released_sequence_panics() {
        let mut w = TraceWindow::new(counting_stream());
        let _ = w.get(10);
        w.release_before(5);
        let _ = w.get(2);
    }

    #[test]
    fn generated_counts_pulls_not_reads() {
        let mut w = TraceWindow::new(counting_stream());
        let _ = w.get(9);
        let _ = w.get(9);
        assert_eq!(w.generated(), 10);
    }
}
