//! Cache-line/address helpers shared between the memory hierarchy and the
//! workload generators.

/// Cache line size in bytes. All levels of the simulated hierarchy use
/// 64-byte lines, matching the paper's DDR3 configuration (64-bit bus,
/// burst of 8).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Returns the cache-line-aligned address containing `addr`.
///
/// # Examples
///
/// ```
/// use rar_isa::cache_line;
/// assert_eq!(cache_line(0x1234), 0x1200);
/// assert_eq!(cache_line(0x1240), 0x1240);
/// ```
#[must_use]
pub const fn cache_line(addr: u64) -> u64 {
    addr & !(CACHE_LINE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_is_aligned() {
        for addr in [0u64, 1, 63, 64, 65, 0xdead_beef] {
            let line = cache_line(addr);
            assert_eq!(line % CACHE_LINE_BYTES, 0);
            assert!(line <= addr && addr < line + CACHE_LINE_BYTES);
        }
    }
}
