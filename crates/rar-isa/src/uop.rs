//! Decoded micro-operations.
//!
//! A [`Uop`] is the unit of work flowing through the simulated pipeline. It
//! carries everything the timing model needs: operation kind, up to two
//! source registers, an optional destination register, and — for memory and
//! control-flow operations — the *resolved* memory address or branch outcome.
//! Because the simulator is trace-driven, outcomes are known at decode time;
//! the timing model is responsible for not *using* them before the
//! appropriate pipeline stage (e.g. a branch outcome is only compared against
//! the predictor at execute).

use crate::reg::ArchReg;
use std::fmt;

/// The operation class of a micro-op.
///
/// The set mirrors the functional-unit pool of the baseline core (Table II):
/// three integer adders, one integer multiplier, one integer divider, and one
/// FP adder/multiplier/divider, plus loads, stores, branches, and NOPs.
///
/// ## Bit-level semantics contract
///
/// The simulator is trace-driven and carries no data values, so each kind
/// additionally fixes a *bit-dataflow contract* that the static bit-liveness
/// analysis and the per-bit fault-injection model both honor (the transfer
/// functions live in `rar-verify`):
///
/// - [`UopKind::IntAlu`] and [`UopKind::IntMul`] are **carry-monotone**:
///   destination bit `d` depends only on source bits `<= d` (wrapping
///   add/sub, bitwise logic, constant left shifts, multiply).
/// - [`UopKind::IntDiv`] and the FP kinds are **all-to-all**: any
///   destination bit may depend on any source bit.
/// - [`UopKind::Load`] sources form an **address**: only their low 48 bits
///   select the accessed line, and no source bit flows through memory into
///   the loaded destination bits.
/// - [`UopKind::Store`] sources are **architectural roots**: every address
///   and data bit reaches memory.
/// - [`UopKind::Branch`] tests **bit 0** of each condition source (the
///   canonical output bit of a preceding compare, RISC-style).
/// - [`UopKind::Nop`] touches nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// No-operation. NOPs are un-ACE by definition (Section IV-A).
    Nop,
}

impl UopKind {
    /// Every uop kind, in declaration order — the domain any per-kind
    /// table (bit-transfer functions, FU latency maps, …) must cover.
    pub const ALL: [UopKind; 10] = [
        UopKind::IntAlu,
        UopKind::IntMul,
        UopKind::IntDiv,
        UopKind::FpAdd,
        UopKind::FpMul,
        UopKind::FpDiv,
        UopKind::Load,
        UopKind::Store,
        UopKind::Branch,
        UopKind::Nop,
    ];

    /// True for loads and stores.
    #[must_use]
    pub const fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }

    /// True for any floating-point operation.
    #[must_use]
    pub const fn is_fp(self) -> bool {
        matches!(self, UopKind::FpAdd | UopKind::FpMul | UopKind::FpDiv)
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::IntAlu => "int_alu",
            UopKind::IntMul => "int_mul",
            UopKind::IntDiv => "int_div",
            UopKind::FpAdd => "fp_add",
            UopKind::FpMul => "fp_mul",
            UopKind::FpDiv => "fp_div",
            UopKind::Load => "load",
            UopKind::Store => "store",
            UopKind::Branch => "branch",
            UopKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Resolved memory reference of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemInfo {
    /// Virtual address accessed.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

/// Static classification of a branch site, used by workload generators to
/// produce realistic outcome streams and by the branch predictor tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Backward loop branch; almost always taken, exits predictably.
    Loop,
    /// Data-dependent conditional; outcome entropy controlled by workload.
    Conditional,
    /// Unconditional direct jump/call.
    Unconditional,
}

/// Resolved outcome of a branch micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Branch target (valid when taken).
    pub target: u64,
    /// Static classification of the branch site.
    pub class: BranchClass,
}

/// A decoded micro-operation with resolved operands.
///
/// Construct with the kind-specific constructors ([`Uop::alu`],
/// [`Uop::load`], [`Uop::store`], [`Uop::branch`], [`Uop::nop`]) and refine
/// with the builder-style `with_*` methods.
///
/// # Examples
///
/// ```
/// use rar_isa::{ArchReg, Uop, UopKind};
/// let u = Uop::load(0x400, 0x8000, 8)
///     .with_dest(ArchReg::int(1))
///     .with_src(ArchReg::int(2));
/// assert!(u.kind().is_mem());
/// assert_eq!(u.mem().unwrap().addr, 0x8000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Uop {
    pc: u64,
    kind: UopKind,
    srcs: [Option<ArchReg>; 2],
    dest: Option<ArchReg>,
    mem: Option<MemInfo>,
    branch: Option<BranchInfo>,
}

impl Uop {
    /// Creates a computational micro-op (any non-memory, non-branch kind).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a memory or branch kind; use the dedicated
    /// constructors for those.
    #[must_use]
    pub fn alu(pc: u64, kind: UopKind) -> Self {
        assert!(
            !kind.is_mem() && kind != UopKind::Branch,
            "use Uop::load/store/branch for {kind}"
        );
        Uop {
            pc,
            kind,
            srcs: [None, None],
            dest: None,
            mem: None,
            branch: None,
        }
    }

    /// Creates a load micro-op reading `size` bytes at `addr`.
    #[must_use]
    pub fn load(pc: u64, addr: u64, size: u8) -> Self {
        Uop {
            pc,
            kind: UopKind::Load,
            srcs: [None, None],
            dest: None,
            mem: Some(MemInfo { addr, size }),
            branch: None,
        }
    }

    /// Creates a store micro-op writing `size` bytes at `addr`.
    #[must_use]
    pub fn store(pc: u64, addr: u64, size: u8) -> Self {
        Uop {
            pc,
            kind: UopKind::Store,
            srcs: [None, None],
            dest: None,
            mem: Some(MemInfo { addr, size }),
            branch: None,
        }
    }

    /// Creates a branch micro-op with a resolved outcome.
    #[must_use]
    pub fn branch(pc: u64, info: BranchInfo) -> Self {
        Uop {
            pc,
            kind: UopKind::Branch,
            srcs: [None, None],
            dest: None,
            mem: None,
            branch: Some(info),
        }
    }

    /// Creates a NOP at `pc`.
    #[must_use]
    pub fn nop(pc: u64) -> Self {
        Uop {
            pc,
            kind: UopKind::Nop,
            srcs: [None, None],
            dest: None,
            mem: None,
            branch: None,
        }
    }

    /// Adds a source register (up to two); extra sources are ignored, which
    /// models an ISA with at most two register sources per micro-op.
    #[must_use]
    pub fn with_src(mut self, reg: ArchReg) -> Self {
        if self.srcs[0].is_none() {
            self.srcs[0] = Some(reg);
        } else if self.srcs[1].is_none() {
            self.srcs[1] = Some(reg);
        }
        self
    }

    /// Sets the destination register.
    #[must_use]
    pub fn with_dest(mut self, reg: ArchReg) -> Self {
        self.dest = Some(reg);
        self
    }

    /// Program counter of the parent instruction.
    #[must_use]
    pub const fn pc(&self) -> u64 {
        self.pc
    }

    /// Operation kind.
    #[must_use]
    pub const fn kind(&self) -> UopKind {
        self.kind
    }

    /// Source registers in use.
    pub fn srcs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Destination register, if any.
    #[must_use]
    pub const fn dest(&self) -> Option<ArchReg> {
        self.dest
    }

    /// Memory reference for loads/stores.
    #[must_use]
    pub const fn mem(&self) -> Option<MemInfo> {
        self.mem
    }

    /// Branch outcome for branches.
    #[must_use]
    pub const fn branch_info(&self) -> Option<BranchInfo> {
        self.branch
    }

    /// Whether this micro-op allocates a load-queue entry.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.kind == UopKind::Load
    }

    /// Whether this micro-op allocates a store-queue entry.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.kind == UopKind::Store
    }

    /// Whether this micro-op is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.kind == UopKind::Branch
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.kind)?;
        if let Some(d) = self.dest {
            write!(f, " -> {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    #[test]
    fn constructors_set_kind_and_payload() {
        let l = Uop::load(0x10, 0x100, 8);
        assert_eq!(l.kind(), UopKind::Load);
        assert_eq!(
            l.mem(),
            Some(MemInfo {
                addr: 0x100,
                size: 8
            })
        );

        let s = Uop::store(0x14, 0x108, 8);
        assert!(s.is_store());

        let b = Uop::branch(
            0x18,
            BranchInfo {
                taken: true,
                target: 0x10,
                class: BranchClass::Loop,
            },
        );
        assert!(b.is_branch());
        assert!(b.branch_info().unwrap().taken);

        let n = Uop::nop(0x1c);
        assert_eq!(n.kind(), UopKind::Nop);
    }

    #[test]
    fn sources_cap_at_two() {
        let u = Uop::alu(0, UopKind::IntAlu)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2))
            .with_src(ArchReg::int(3));
        let srcs: Vec<_> = u.srcs().collect();
        assert_eq!(srcs, vec![ArchReg::int(1), ArchReg::int(2)]);
    }

    #[test]
    #[should_panic(expected = "use Uop::load")]
    fn alu_constructor_rejects_mem_kinds() {
        let _ = Uop::alu(0, UopKind::Load);
    }

    #[test]
    fn all_lists_every_kind_once() {
        for (i, a) in UopKind::ALL.iter().enumerate() {
            for b in &UopKind::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate kind in ALL");
            }
        }
        // Display names are unique too, so journals can round-trip kinds.
        let names: Vec<String> = UopKind::ALL.iter().map(ToString::to_string).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn kind_predicates() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::Branch.is_mem());
        assert!(UopKind::FpMul.is_fp());
        assert!(!UopKind::IntMul.is_fp());
    }

    #[test]
    fn display_is_nonempty() {
        let u = Uop::alu(0x42, UopKind::IntAlu).with_dest(ArchReg::int(0));
        assert!(u.to_string().contains("int_alu"));
    }
}
