//! Architectural register model.
//!
//! The simulated ISA exposes two register classes — integer and
//! floating-point — with [`NUM_ARCH_REGS_PER_CLASS`] registers each, mirroring
//! a RISC-style 32+32 register architecture. Physical registers live in
//! `rar-core`; this module only names the *architectural* registers that
//! micro-ops reference.

use std::fmt;

/// Number of architectural registers in each register class.
pub const NUM_ARCH_REGS_PER_CLASS: u8 = 32;

/// Register class: integer (64-bit) or floating-point (128-bit).
///
/// The bit widths follow Table II of the paper and matter for ACE-bit
/// accounting: an integer physical register exposes 64 vulnerable bits, a
/// floating-point register 128.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit integer register.
    Int,
    /// 128-bit floating-point/SIMD register.
    Fp,
}

impl RegClass {
    /// Width in bits of a register of this class (Table II).
    ///
    /// # Examples
    ///
    /// ```
    /// use rar_isa::RegClass;
    /// assert_eq!(RegClass::Int.bits(), 64);
    /// assert_eq!(RegClass::Fp.bits(), 128);
    /// ```
    #[must_use]
    pub const fn bits(self) -> u64 {
        match self {
            RegClass::Int => 64,
            RegClass::Fp => 128,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a class plus an index below
/// [`NUM_ARCH_REGS_PER_CLASS`].
///
/// # Examples
///
/// ```
/// use rar_isa::{ArchReg, RegClass};
/// let r = ArchReg::int(3);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.flat_index(), 3);
/// assert_eq!(ArchReg::fp(0).flat_index(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS_PER_CLASS`.
    #[must_use]
    pub fn int(index: u8) -> Self {
        assert!(
            index < NUM_ARCH_REGS_PER_CLASS,
            "int register index out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS_PER_CLASS`.
    #[must_use]
    pub fn fp(index: u8) -> Self {
        assert!(
            index < NUM_ARCH_REGS_PER_CLASS,
            "fp register index out of range"
        );
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// The register class.
    #[must_use]
    pub const fn class(self) -> RegClass {
        self.class
    }

    /// The index within the class.
    #[must_use]
    pub const fn index(self) -> u8 {
        self.index
    }

    /// A dense index over both classes: integer registers map to
    /// `0..32`, floating-point registers to `32..64`. Useful for flat
    /// rename-table arrays.
    #[must_use]
    pub const fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_ARCH_REGS_PER_CLASS as usize + self.index as usize,
        }
    }

    /// Total number of architectural registers across both classes.
    #[must_use]
    pub const fn total_count() -> usize {
        2 * NUM_ARCH_REGS_PER_CLASS as usize
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = vec![false; ArchReg::total_count()];
        for i in 0..NUM_ARCH_REGS_PER_CLASS {
            for r in [ArchReg::int(i), ArchReg::fp(i)] {
                let idx = r.flat_index();
                assert!(!seen[idx], "duplicate flat index {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::int(5).to_string(), "r5");
        assert_eq!(ArchReg::fp(7).to_string(), "f7");
    }

    #[test]
    fn class_bits_match_table2() {
        assert_eq!(RegClass::Int.bits(), 64);
        assert_eq!(RegClass::Fp.bits(), 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = ArchReg::int(NUM_ARCH_REGS_PER_CLASS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_index_out_of_range_panics() {
        let _ = ArchReg::fp(NUM_ARCH_REGS_PER_CLASS);
    }
}
