// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for the instruction-stream machinery.

use proptest::prelude::*;
use rar_isa::{TraceWindow, Uop, UopKind, UopSource};

fn stream() -> impl Iterator<Item = Uop> + Clone {
    (0u64..).map(|i| Uop::alu(i.wrapping_mul(0x9e37) ^ 0x1000, UopKind::IntAlu))
}

proptest! {
    /// Random monotone-window access patterns return exactly what the
    /// underlying iterator would have produced at that index.
    #[test]
    fn window_matches_direct_indexing(accesses in prop::collection::vec(0u64..500, 1..64)) {
        let mut w = TraceWindow::new(stream());
        let direct: Vec<Uop> = stream().take(512).collect();
        for &seq in &accesses {
            prop_assert_eq!(w.get(seq).clone(), direct[seq as usize].clone());
        }
    }

    /// Releasing below the smallest future access never breaks reads, and
    /// buffered size never exceeds the span of live sequences.
    #[test]
    fn release_keeps_live_range_readable(
        reads in prop::collection::vec(0u64..400, 2..40),
    ) {
        let mut sorted = reads.clone();
        sorted.sort_unstable();
        let mut w = TraceWindow::new(stream());
        for (i, &seq) in sorted.iter().enumerate() {
            let _ = w.get(seq);
            // Release everything before the current sequence: later reads
            // are all >= seq because the list is sorted.
            w.release_before(seq);
            let _ = w.get(seq); // still readable (== window base)
            prop_assert!(w.buffered() as u64 <= sorted[sorted.len()-1] + 1);
            let _ = i;
        }
    }

    /// The generated counter only moves forward and never exceeds the
    /// highest requested sequence + 1.
    #[test]
    fn generated_is_monotone_and_tight(a in 0u64..300, b in 0u64..300) {
        let mut w = TraceWindow::new(stream());
        let _ = w.get(a);
        let after_a = w.generated();
        prop_assert_eq!(after_a, a + 1);
        let _ = w.get(b);
        prop_assert_eq!(w.generated(), a.max(b) + 1);
    }
}

proptest! {
    /// Builder-constructed uops preserve their payload.
    #[test]
    fn uop_payload_roundtrip(pc in 0u64..u64::MAX / 2, addr in 0u64..u64::MAX / 2, size in 1u8..16) {
        let u = Uop::load(pc, addr, size);
        prop_assert_eq!(u.pc(), pc);
        let m = u.mem().unwrap();
        prop_assert_eq!(m.addr, addr);
        prop_assert_eq!(m.size, size);
        prop_assert!(u.is_load());
        prop_assert!(!u.is_store());
    }

    /// Cache-line math: alignment and containment hold for all addresses.
    #[test]
    fn cache_line_alignment(addr: u64) {
        let line = rar_isa::cache_line(addr);
        prop_assert_eq!(line % rar_isa::CACHE_LINE_BYTES, 0);
        prop_assert!(line <= addr);
        prop_assert!(addr - line < rar_isa::CACHE_LINE_BYTES);
    }
}
