//! Miss-status holding registers (MSHRs).
//!
//! The baseline models 20 MSHRs at the L1-D level (Table II): at most 20
//! distinct cache lines may be in flight to the memory system at once.
//! A demand access to a line that is already in flight *merges* into the
//! existing MSHR and completes when the original fetch does. When all
//! MSHRs are busy, further misses must stall at issue — this is what caps
//! the memory-level parallelism an out-of-order core (or a runahead
//! interval) can expose.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// An MSHR file tracking in-flight line fetches by completion time.
///
/// # Examples
///
/// ```
/// use rar_mem::MshrFile;
/// let mut m = MshrFile::new(2);
/// assert!(m.allocate(0x40, 100, 0));
/// assert!(m.allocate(0x80, 120, 0));
/// assert!(!m.allocate(0xc0, 150, 0), "file is full");
/// assert_eq!(m.lookup(0x40, 0), Some(100), "merge hits the in-flight line");
/// assert!(m.allocate(0xc0, 150, 110), "entry for 0x40 freed at cycle 100");
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// line address -> completion cycle
    inflight: HashMap<u64, u64>,
    peak: usize,
    allocations: u64,
    released: u64,
    merges: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            inflight: HashMap::with_capacity(capacity),
            peak: 0,
            allocations: 0,
            released: 0,
            merges: 0,
        }
    }

    /// Drops entries whose fetch completed at or before `now`.
    pub fn expire(&mut self, now: u64) {
        let before = self.inflight.len();
        self.inflight.retain(|_, &mut done| done > now);
        self.released += (before - self.inflight.len()) as u64;
    }

    /// If `line` is in flight at `now`, returns its completion cycle and
    /// counts a merge.
    pub fn lookup(&mut self, line: u64, now: u64) -> Option<u64> {
        self.expire(now);
        let done = self.inflight.get(&line).copied();
        if done.is_some() {
            self.merges += 1;
        }
        done
    }

    /// Tries to allocate an entry for `line` completing at `complete_at`.
    /// Returns `false` when the file is full (the access must stall).
    pub fn allocate(&mut self, line: u64, complete_at: u64, now: u64) -> bool {
        self.expire(now);
        if self.inflight.len() >= self.capacity {
            return false;
        }
        self.inflight.insert(line, complete_at);
        self.allocations += 1;
        self.peak = self.peak.max(self.inflight.len());
        true
    }

    /// Number of entries in flight at `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.expire(now);
        self.inflight.len()
    }

    /// Whether a new miss can allocate at `now`.
    pub fn has_free(&mut self, now: u64) -> bool {
        self.expire(now);
        self.inflight.len() < self.capacity
    }

    /// Capacity of the file.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of simultaneous in-flight misses.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total allocations (distinct line fetches started).
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total merges (accesses that piggybacked on an in-flight fetch).
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Fault injection: corrupts the `idx`-th in-flight entry, selected by
    /// sorted line address so the choice is deterministic (the backing map
    /// iterates in arbitrary order). Low `bit` values flip a line-address
    /// bit — future accesses to the original line re-miss and allocate
    /// afresh — higher values flip a completion-time bit, so later merges
    /// latch a perturbed (possibly far-future) completion. Returns `false`
    /// when the slot is vacant.
    pub fn corrupt_nth(&mut self, idx: usize, bit: u64) -> bool {
        let mut lines: Vec<u64> = self.inflight.keys().copied().collect();
        lines.sort_unstable();
        let Some(&line) = lines.get(idx) else {
            return false;
        };
        if bit < 32 {
            let done = self.inflight.remove(&line).expect("selected from keys");
            let flipped = line ^ (1 << (6 + bit % 26));
            match self.inflight.entry(flipped) {
                Entry::Occupied(_) => {
                    // The flipped address collides with another in-flight
                    // line: the entry is effectively lost. Account it as
                    // released so allocation bookkeeping stays balanced.
                    self.released += 1;
                }
                Entry::Vacant(slot) => {
                    slot.insert(done);
                }
            }
        } else if let Some(done) = self.inflight.get_mut(&line) {
            *done ^= 1 << (4 + bit % 20);
        }
        true
    }

    /// Total entries released by [`MshrFile::expire`]. Together with
    /// [`MshrFile::resident`], balances [`MshrFile::allocations`]:
    /// `allocations == released + resident`, always.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Entries currently resident in the file, *without* expiring
    /// completed ones — a read-only view for invariant checkers that must
    /// not perturb the file's (timing-visible) expiry schedule.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(3);
        for i in 0..3 {
            assert!(m.allocate(i * 64, 1_000, 0));
        }
        assert!(!m.allocate(999 * 64, 1_000, 0));
        assert_eq!(m.outstanding(0), 3);
        assert_eq!(m.peak(), 3);
    }

    #[test]
    fn expiry_frees_entries() {
        let mut m = MshrFile::new(1);
        assert!(m.allocate(0, 50, 0));
        assert!(!m.has_free(49));
        assert!(m.has_free(50));
        assert!(m.allocate(64, 80, 50));
    }

    #[test]
    fn merge_returns_completion() {
        let mut m = MshrFile::new(2);
        m.allocate(0x40, 77, 0);
        assert_eq!(m.lookup(0x40, 10), Some(77));
        assert_eq!(m.merges(), 1);
        assert_eq!(m.lookup(0x80, 10), None);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn lookup_after_completion_misses() {
        let mut m = MshrFile::new(2);
        m.allocate(0x40, 77, 0);
        assert_eq!(m.lookup(0x40, 77), None, "expired at completion cycle");
    }

    #[test]
    fn allocation_count() {
        let mut m = MshrFile::new(8);
        for i in 0..5 {
            m.allocate(i * 64, 100 + i, 0);
        }
        assert_eq!(m.allocations(), 5);
    }

    #[test]
    fn allocations_balance_releases_plus_resident() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 10, 0);
        m.allocate(0x80, 20, 0);
        m.allocate(0xc0, 30, 0);
        assert_eq!(m.allocations(), m.released() + m.resident() as u64);
        m.expire(15);
        assert_eq!(m.released(), 1);
        assert_eq!(m.resident(), 2);
        assert_eq!(m.allocations(), m.released() + m.resident() as u64);
        m.expire(100);
        assert_eq!(m.released(), 3);
        assert_eq!(m.resident(), 0);
    }

    #[test]
    fn resident_does_not_expire() {
        let mut m = MshrFile::new(2);
        m.allocate(0x40, 10, 0);
        // The entry is past its completion time, but the read-only view
        // must not release it.
        assert_eq!(m.resident(), 1);
        assert_eq!(m.released(), 0);
        assert!(m.has_free(50));
        assert_eq!(m.resident(), 0);
        assert_eq!(m.released(), 1);
    }
}
